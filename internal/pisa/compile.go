package pisa

import "fmt"

// Usage is the resource consumption of a compiled program, in absolute
// units of the Profile's capacities.
type Usage struct {
	PHVBits    int
	SRAMBlocks int
	TCAMBlocks int
	HashBits   int
	HashCalls  int
	Stages     int
	// EgressStages is the stage count of the egress pipeline (0 if the
	// program has no egress control).
	EgressStages int
	Passes       int
}

// UsagePercent is Usage normalized against a profile's capacities, as the
// Tofino compiler reports it (Table II).
type UsagePercent struct {
	PHV, SRAM, TCAM, Hash float64
}

// Percent normalizes the usage against the profile.
func (u Usage) Percent(p Profile) UsagePercent {
	pct := func(used, cap int) float64 {
		if cap <= 0 {
			return 0
		}
		return 100 * float64(used) / float64(cap)
	}
	return UsagePercent{
		PHV:  pct(u.PHVBits, p.PHVBits),
		SRAM: pct(u.SRAMBlocks, p.SRAMBlocks),
		TCAM: pct(u.TCAMBlocks, p.TCAMBlocks),
		Hash: pct(u.HashBits, p.HashBits),
	}
}

// Compiled is a program resolved and placed against a target profile.
type Compiled struct {
	Program *Program
	Profile Profile
	Usage   Usage

	slots       map[FieldRef]int
	slotWidth   []int
	headerIndex map[string]int
	headerSlots [][]int // header index -> slots in field order
	metaSlots   []int
	tableIndex  map[string]int
	actionIndex map[string]int
	regIndex    map[string]int
	parserIndex map[string]int
}

// nominal hash-input contribution of including the payload in a digest.
const payloadHashBits = 128

// exact-match entry overhead bits (pointers, version bits).
const exactEntryOverheadBits = 16

// Compile validates a program against a profile, allocates stages, and
// accounts resources. It is the analogue of running the target's P4
// compiler and reading its resource summary.
func Compile(prog *Program, profile Profile) (*Compiled, error) {
	if err := prog.validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		Program:     prog,
		Profile:     profile,
		slots:       make(map[FieldRef]int),
		headerIndex: make(map[string]int),
		tableIndex:  make(map[string]int),
		actionIndex: make(map[string]int),
		regIndex:    make(map[string]int),
		parserIndex: make(map[string]int),
	}
	c.resolveSlots()
	for i, t := range prog.Tables {
		c.tableIndex[t.Name] = i
	}
	for i, a := range prog.Actions {
		c.actionIndex[a.Name] = i
	}
	for i, r := range prog.Registers {
		c.regIndex[r.Name] = i
	}
	for i, s := range prog.Parser {
		c.parserIndex[s.Name] = i
	}

	if err := c.checkRefs(); err != nil {
		return nil, err
	}
	if err := c.checkOps(); err != nil {
		return nil, err
	}
	if err := c.account(); err != nil {
		return nil, err
	}
	return c, nil
}

func containerBits(width int) int {
	switch {
	case width <= 8:
		return 8
	case width <= 16:
		return 16
	case width <= 32:
		return 32
	default:
		return 64
	}
}

func (c *Compiled) resolveSlots() {
	add := func(ref FieldRef, width int) int {
		slot := len(c.slotWidth)
		c.slots[ref] = slot
		c.slotWidth = append(c.slotWidth, width)
		return slot
	}
	for hi, h := range c.Program.Headers {
		c.headerIndex[h.Name] = hi
		slots := make([]int, len(h.Fields))
		for fi, f := range h.Fields {
			slots[fi] = add(F(h.Name, f.Name), f.Width)
		}
		c.headerSlots = append(c.headerSlots, slots)
	}
	for _, f := range intrinsicMetadata() {
		c.metaSlots = append(c.metaSlots, add(F(MetaHeader, f.Name), f.Width))
	}
	for _, f := range c.Program.Metadata {
		c.metaSlots = append(c.metaSlots, add(F(MetaHeader, f.Name), f.Width))
	}
}

// lookupRef resolves a field reference in the context of an action's
// parameter frame (act may be nil). Returns (slot, paramIndex, width):
// slot >= 0 for PHV fields, paramIndex >= 0 for action parameters.
func (c *Compiled) lookupRef(ref FieldRef, act *Action) (slot, paramIdx, width int, err error) {
	hdr, fld, err := ref.split()
	if err != nil {
		return -1, -1, 0, err
	}
	if hdr == ParamHeader {
		if act == nil {
			return -1, -1, 0, fmt.Errorf("pisa: %s referenced outside an action", ref)
		}
		for i, p := range act.Params {
			if p.Name == fld {
				return -1, i, p.Width, nil
			}
		}
		return -1, -1, 0, fmt.Errorf("pisa: action %s has no parameter %q", act.Name, fld)
	}
	s, ok := c.slots[ref]
	if !ok {
		return -1, -1, 0, fmt.Errorf("pisa: unknown field %s", ref)
	}
	return s, -1, c.slotWidth[s], nil
}

func (c *Compiled) checkOperand(o Operand, act *Action) error {
	if o.IsConst {
		return nil
	}
	_, _, _, err := c.lookupRef(o.Ref, act)
	return err
}

func (c *Compiled) checkRefs() error {
	for _, t := range c.Program.Tables {
		for _, k := range t.Keys {
			if _, _, _, err := c.lookupRef(k.Field, nil); err != nil {
				return fmt.Errorf("table %s: %w", t.Name, err)
			}
		}
	}
	for _, s := range c.Program.Parser {
		if s.Select != "" {
			if _, _, _, err := c.lookupRef(s.Select, nil); err != nil {
				return fmt.Errorf("parser state %s: %w", s.Name, err)
			}
		}
	}
	return nil
}

func (c *Compiled) checkOps() error {
	if err := c.checkOpList(c.Program.Control, nil, 0); err != nil {
		return err
	}
	if err := c.checkOpList(c.Program.EgressControl, nil, 0); err != nil {
		return fmt.Errorf("egress: %w", err)
	}
	for _, a := range c.Program.Actions {
		if err := c.checkOpList(a.Body, a, 0); err != nil {
			return fmt.Errorf("action %s: %w", a.Name, err)
		}
	}
	return nil
}

const maxNesting = 16

func (c *Compiled) checkOpList(ops []Op, act *Action, depth int) error {
	if depth > maxNesting {
		return fmt.Errorf("pisa: control flow nested deeper than %d", maxNesting)
	}
	for i := range ops {
		op := &ops[i]
		if err := c.checkOp(op, act, depth); err != nil {
			return fmt.Errorf("op %d (%s): %w", i, op.Kind, err)
		}
	}
	return nil
}

func (c *Compiled) checkOp(op *Op, act *Action, depth int) error {
	checkDst := func() error {
		slot, _, w, err := c.lookupRef(op.Dst, act)
		if err != nil {
			return err
		}
		if slot < 0 {
			return fmt.Errorf("pisa: cannot write to action parameter %s", op.Dst)
		}
		if op.Kind == OpRotl && w > c.Profile.ALUWidth {
			return fmt.Errorf("pisa: rotate on %d-bit field exceeds %d-bit ALU", w, c.Profile.ALUWidth)
		}
		return nil
	}
	switch op.Kind {
	case OpSet, OpRandom:
		if err := checkDst(); err != nil {
			return err
		}
		if op.Kind == OpSet {
			return c.checkOperand(op.A, act)
		}
		return nil
	case OpAdd, OpSub, OpXor, OpAnd, OpOr, OpShl, OpShr, OpRotl:
		if err := checkDst(); err != nil {
			return err
		}
		if err := c.checkOperand(op.A, act); err != nil {
			return err
		}
		return c.checkOperand(op.B, act)
	case OpHash:
		if err := checkDst(); err != nil {
			return err
		}
		if op.Alg == HashHalfSipHash && !c.Profile.AllowExterns {
			return fmt.Errorf("pisa: extern hash %s not available on target %s", op.Alg, c.Profile.Name)
		}
		if op.Alg < HashCRC32 || op.Alg > HashHalfSipHash {
			return fmt.Errorf("pisa: unknown hash algorithm %d", int(op.Alg))
		}
		if op.Key != nil {
			if err := c.checkOperand(*op.Key, act); err != nil {
				return err
			}
		}
		if len(op.Inputs) == 0 && !op.IncludePayload {
			return fmt.Errorf("pisa: hash with no inputs")
		}
		for _, in := range op.Inputs {
			if err := c.checkOperand(in, act); err != nil {
				return err
			}
		}
		return nil
	case OpRegRead:
		if err := checkDst(); err != nil {
			return err
		}
		if _, ok := c.regIndex[op.Reg]; !ok {
			return fmt.Errorf("pisa: unknown register %q", op.Reg)
		}
		return c.checkOperand(op.Index, act)
	case OpRegRMW:
		if err := checkDst(); err != nil {
			return err
		}
		if _, ok := c.regIndex[op.Reg]; !ok {
			return fmt.Errorf("pisa: unknown register %q", op.Reg)
		}
		if op.RMW < RMWAdd || op.RMW > RMWXor {
			return fmt.Errorf("pisa: unknown RMW kind %d", int(op.RMW))
		}
		if err := c.checkOperand(op.Index, act); err != nil {
			return err
		}
		return c.checkOperand(op.A, act)
	case OpRegWrite:
		if _, ok := c.regIndex[op.Reg]; !ok {
			return fmt.Errorf("pisa: unknown register %q", op.Reg)
		}
		if err := c.checkOperand(op.Index, act); err != nil {
			return err
		}
		return c.checkOperand(op.A, act)
	case OpSetValid, OpSetInvalid:
		if _, ok := c.headerIndex[op.Header]; !ok {
			return fmt.Errorf("pisa: unknown header %q", op.Header)
		}
		return nil
	case OpApply:
		if act != nil {
			return fmt.Errorf("pisa: table apply inside an action")
		}
		if _, ok := c.tableIndex[op.Table]; !ok {
			return fmt.Errorf("pisa: unknown table %q", op.Table)
		}
		return nil
	case OpIf:
		if err := c.checkCond(op.Cond, act); err != nil {
			return err
		}
		if err := c.checkOpList(op.Then, act, depth+1); err != nil {
			return err
		}
		return c.checkOpList(op.Else, act, depth+1)
	default:
		return fmt.Errorf("pisa: unknown op kind %d", int(op.Kind))
	}
}

func (c *Compiled) checkCond(cond Cond, act *Action) error {
	if cond.ValidHeader != "" {
		if _, ok := c.headerIndex[cond.ValidHeader]; !ok {
			return fmt.Errorf("pisa: condition on unknown header %q", cond.ValidHeader)
		}
		return nil
	}
	if cond.Cmp < CmpEq || cond.Cmp > CmpGe {
		return fmt.Errorf("pisa: condition with invalid comparison %d", int(cond.Cmp))
	}
	if err := c.checkOperand(cond.L, act); err != nil {
		return err
	}
	return c.checkOperand(cond.R, act)
}

// --- stage allocation and resource accounting ---

// stagePacker greedily packs ops into stages respecting ALU, hash, and
// write-read dependency constraints.
type stagePacker struct {
	profile Profile

	stages    int
	aluUsed   int
	hashCalls int
	hashBits  int
	written   map[int]bool // slots written in the current stage
}

func newStagePacker(p Profile) *stagePacker {
	return &stagePacker{profile: p, stages: 1, written: make(map[int]bool)}
}

func (sp *stagePacker) nextStage() {
	sp.stages++
	sp.aluUsed = 0
	sp.hashCalls = 0
	sp.hashBits = 0
	sp.written = make(map[int]bool)
}

func (sp *stagePacker) readsWritten(slots ...int) bool {
	for _, s := range slots {
		if s >= 0 && sp.written[s] {
			return true
		}
	}
	return false
}

func (c *Compiled) operandSlot(o Operand, act *Action) int {
	if o.IsConst {
		return -1
	}
	slot, _, _, _ := c.lookupRef(o.Ref, act)
	return slot
}

func (c *Compiled) operandBits(o Operand, act *Action) int {
	if o.IsConst {
		return 64
	}
	_, _, w, _ := c.lookupRef(o.Ref, act)
	return w
}

// regAccess tracks per-pass register touches for the hardware constraint.
type regAccess map[string]int

func (ra regAccess) merge(other regAccess) {
	for r, n := range other {
		if n > ra[r] {
			ra[r] = n
		}
	}
}

// placeOps packs a list of ops and returns an error if a hardware
// constraint is violated. regs accumulates register access counts.
func (c *Compiled) placeOps(sp *stagePacker, ops []Op, act *Action, regs regAccess) error {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpSet, OpRandom, OpAdd, OpSub, OpXor, OpAnd, OpOr, OpShl, OpShr, OpRotl:
			dst, _, dw, _ := c.lookupRef(op.Dst, act)
			cost := 1
			if dw > c.Profile.ALUWidth {
				cost = 2
			}
			srcs := []int{c.operandSlot(op.A, act), c.operandSlot(op.B, act)}
			if sp.readsWritten(srcs...) || sp.aluUsed+cost > sp.profile.ALUOpsPerStage {
				sp.nextStage()
			}
			sp.aluUsed += cost
			sp.written[dst] = true
		case OpHash:
			bits := 0
			srcSlots := make([]int, 0, len(op.Inputs)+1)
			if op.Key != nil {
				bits += 64
				srcSlots = append(srcSlots, c.operandSlot(*op.Key, act))
			}
			for _, in := range op.Inputs {
				bits += c.operandBits(in, act)
				srcSlots = append(srcSlots, c.operandSlot(in, act))
			}
			if op.IncludePayload {
				bits += payloadHashBits
			}
			if sp.readsWritten(srcSlots...) ||
				sp.hashCalls+1 > sp.profile.HashCallsPerStage ||
				sp.hashBits+bits > sp.profile.HashBitsPerStage {
				sp.nextStage()
			}
			sp.hashCalls++
			sp.hashBits += bits
			c.Usage.HashCalls++
			c.Usage.HashBits += bits
			dst, _, _, _ := c.lookupRef(op.Dst, act)
			sp.written[dst] = true
		case OpRegRead, OpRegWrite, OpRegRMW:
			regs[op.Reg]++
			srcs := []int{c.operandSlot(op.Index, act)}
			if op.Kind != OpRegRead {
				srcs = append(srcs, c.operandSlot(op.A, act))
			}
			if sp.readsWritten(srcs...) || sp.aluUsed+1 > sp.profile.ALUOpsPerStage {
				sp.nextStage()
			}
			sp.aluUsed++
			if op.Kind != OpRegWrite {
				dst, _, _, _ := c.lookupRef(op.Dst, act)
				sp.written[dst] = true
			}
		case OpSetValid, OpSetInvalid:
			if sp.aluUsed+1 > sp.profile.ALUOpsPerStage {
				sp.nextStage()
			}
			sp.aluUsed++
		case OpApply:
			tbl := c.Program.Table(op.Table)
			// A table occupies a fresh stage: its match happens at stage
			// entry, its action ops execute within (and possibly beyond).
			sp.nextStage()
			// Exact tables hash their key.
			keyBits := 0
			exact := true
			for _, k := range tbl.Keys {
				_, _, w, _ := c.lookupRef(k.Field, nil)
				keyBits += w
				if k.Match != MatchExact {
					exact = false
				}
			}
			if exact {
				sp.hashCalls++
				sp.hashBits += keyBits
				c.Usage.HashBits += keyBits
			}
			// Deepest action bound: all permitted actions must fit.
			deepest := 0
			var deepestRegs regAccess
			for _, an := range append([]string{}, tbl.Actions...) {
				a := c.Program.Action(an)
				inner := newStagePacker(c.Profile)
				innerRegs := make(regAccess)
				if err := c.placeOps(inner, a.Body, a, innerRegs); err != nil {
					return fmt.Errorf("table %s action %s: %w", tbl.Name, an, err)
				}
				if inner.stages-1 > deepest {
					deepest = inner.stages - 1
				}
				if deepestRegs == nil {
					deepestRegs = innerRegs
				} else {
					deepestRegs.merge(innerRegs)
				}
			}
			if tbl.Default != "" {
				a := c.Program.Action(tbl.Default)
				inner := newStagePacker(c.Profile)
				innerRegs := make(regAccess)
				if err := c.placeOps(inner, a.Body, a, innerRegs); err != nil {
					return fmt.Errorf("table %s default action: %w", tbl.Name, err)
				}
				if inner.stages-1 > deepest {
					deepest = inner.stages - 1
				}
				if deepestRegs == nil {
					deepestRegs = innerRegs
				} else {
					deepestRegs.merge(innerRegs)
				}
			}
			for j := 0; j < deepest; j++ {
				sp.nextStage()
			}
			regs.merge(deepestRegs)
		case OpIf:
			// Both branches execute in the same stage window; the deeper
			// branch determines progress. Register accesses merge as max.
			thenSP := newStagePacker(c.Profile)
			thenRegs := make(regAccess)
			if err := c.placeOps(thenSP, op.Then, act, thenRegs); err != nil {
				return err
			}
			elseSP := newStagePacker(c.Profile)
			elseRegs := make(regAccess)
			if err := c.placeOps(elseSP, op.Else, act, elseRegs); err != nil {
				return err
			}
			deeper := thenSP.stages
			if elseSP.stages > deeper {
				deeper = elseSP.stages
			}
			for j := 0; j < deeper; j++ {
				sp.nextStage()
			}
			thenRegs.merge(elseRegs)
			regs.merge(thenRegs)
		}
	}
	return nil
}

func (c *Compiled) account() error {
	// PHV.
	for _, h := range c.Program.Headers {
		for _, f := range h.Fields {
			c.Usage.PHVBits += containerBits(f.Width)
		}
	}
	for _, f := range intrinsicMetadata() {
		c.Usage.PHVBits += containerBits(f.Width)
	}
	for _, f := range c.Program.Metadata {
		c.Usage.PHVBits += containerBits(f.Width)
	}
	if c.Usage.PHVBits > c.Profile.PHVBits {
		return fmt.Errorf("pisa: program needs %d PHV bits, target %s has %d", c.Usage.PHVBits, c.Profile.Name, c.Profile.PHVBits)
	}

	// Tables: SRAM or TCAM.
	for _, t := range c.Program.Tables {
		keyBits, exact := 0, true
		for _, k := range t.Keys {
			_, _, w, _ := c.lookupRef(k.Field, nil)
			keyBits += w
			if k.Match != MatchExact {
				exact = false
			}
		}
		actionDataBits := 0
		for _, an := range t.Actions {
			a := c.Program.Action(an)
			bits := 0
			for _, p := range a.Params {
				bits += p.Width
			}
			if bits > actionDataBits {
				actionDataBits = bits
			}
		}
		if exact {
			entryBits := keyBits + actionDataBits + exactEntryOverheadBits
			blocks := (t.Size*entryBits + SRAMBlockBits - 1) / SRAMBlockBits
			if blocks < 1 {
				blocks = 1
			}
			c.Usage.SRAMBlocks += blocks
		} else {
			blocks := ((t.Size + TCAMBlockEntries - 1) / TCAMBlockEntries) *
				((keyBits + TCAMBlockKeyBits - 1) / TCAMBlockKeyBits)
			if blocks < 1 {
				blocks = 1
			}
			c.Usage.TCAMBlocks += blocks
			// Action data for TCAM tables still lives in SRAM.
			if actionDataBits > 0 {
				blocks := (t.Size*actionDataBits + SRAMBlockBits - 1) / SRAMBlockBits
				if blocks < 1 {
					blocks = 1
				}
				c.Usage.SRAMBlocks += blocks
			}
		}
	}

	// Registers.
	for _, r := range c.Program.Registers {
		w := 32
		if r.Width > 32 {
			w = 64
		}
		blocks := (r.Entries*w + SRAMBlockBits - 1) / SRAMBlockBits
		if blocks < 1 {
			blocks = 1
		}
		c.Usage.SRAMBlocks += blocks
	}
	if c.Usage.SRAMBlocks > c.Profile.SRAMBlocks {
		return fmt.Errorf("pisa: program needs %d SRAM blocks, target %s has %d", c.Usage.SRAMBlocks, c.Profile.Name, c.Profile.SRAMBlocks)
	}
	if c.Usage.TCAMBlocks > c.Profile.TCAMBlocks {
		return fmt.Errorf("pisa: program needs %d TCAM blocks, target %s has %d", c.Usage.TCAMBlocks, c.Profile.Name, c.Profile.TCAMBlocks)
	}

	// Stages (hash usage accumulates inside placeOps).
	sp := newStagePacker(c.Profile)
	regs := make(regAccess)
	if err := c.placeOps(sp, c.Program.Control, nil, regs); err != nil {
		return err
	}
	egSP := newStagePacker(c.Profile)
	egRegs := make(regAccess)
	if len(c.Program.EgressControl) > 0 {
		if err := c.placeOps(egSP, c.Program.EgressControl, nil, egRegs); err != nil {
			return fmt.Errorf("egress: %w", err)
		}
		if egSP.stages > c.Profile.Stages {
			return fmt.Errorf("pisa: egress pipeline needs %d stages, target %s has %d (no egress recirculation)",
				egSP.stages, c.Profile.Name, c.Profile.Stages)
		}
		c.Usage.EgressStages = egSP.stages
	}
	if c.Profile.StrictRegisterAccess {
		for r, n := range regs {
			if n > 1 {
				return fmt.Errorf("pisa: register %q accessed %d times per pass; target %s allows one", r, n, c.Profile.Name)
			}
		}
		for r, n := range egRegs {
			if n > 1 {
				return fmt.Errorf("pisa: register %q accessed %d times per egress pass; target %s allows one", r, n, c.Profile.Name)
			}
			// Ingress and egress MAUs do not share register memory.
			if regs[r] > 0 {
				return fmt.Errorf("pisa: register %q used in both ingress and egress pipelines on target %s", r, c.Profile.Name)
			}
		}
	}
	if c.Usage.HashBits > c.Profile.HashBits {
		return fmt.Errorf("pisa: program needs %d hash bits, target %s has %d", c.Usage.HashBits, c.Profile.Name, c.Profile.HashBits)
	}

	c.Usage.Stages = sp.stages
	c.Usage.Passes = (sp.stages + c.Profile.Stages - 1) / c.Profile.Stages
	if c.Usage.Passes > c.Profile.MaxPasses {
		return fmt.Errorf("pisa: program needs %d stages = %d passes; target %s allows %d passes",
			sp.stages, c.Usage.Passes, c.Profile.Name, c.Profile.MaxPasses)
	}
	return nil
}

// StagesPerPass returns how many stages one pass of the compiled program
// occupies (capped at the profile's stage count).
func (c *Compiled) StagesPerPass() int {
	if c.Usage.Stages > c.Profile.Stages {
		return c.Profile.Stages
	}
	return c.Usage.Stages
}
