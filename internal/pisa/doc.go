// Package pisa models a PISA (Protocol-Independent Switch Architecture)
// programmable data plane of the kind P4Auth targets: a fixed-depth
// pipeline of match-action stages operating on a packet header vector
// (PHV), with exact/ternary/LPM tables, stateful registers, hash
// distribution units, and packet recirculation.
//
// The model enforces the constraints that shaped P4Auth's design (§V-§VII
// of the paper):
//
//   - per-packet operations are limited to 32-bit-ALU-friendly primitives
//     (add, xor, and, or, shifts); there is no multiply, divide, modulo, or
//     exponentiation op, and no loops — programs are straight-line per pass
//     and multi-pass computation requires recirculation;
//   - hashing is only available through a bounded pool of hash distribution
//     units (CRC32 on the Tofino profile), and a per-stage unit budget;
//   - each register may be accessed at most once per pipeline pass;
//   - PHV bits, SRAM blocks, and TCAM blocks are finite and accounted, so
//     compiling a program produces the Table II-style resource report.
//
// Programs are described with a small builder IR (Program, Table, Action,
// Op), compiled against a target Profile (Tofino or BMv2) into a
// Compiled program, and executed per packet by a Switch. Packets are real
// byte strings: the pipeline parses them into the PHV with a programmable
// parser state machine and deparses the PHV back to bytes on emission, so
// a man-in-the-middle in the network sees — and can rewrite — exactly the
// bits a hardware switch would put on the wire.
package pisa
