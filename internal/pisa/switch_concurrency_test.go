package pisa

import (
	"sync"
	"testing"
)

// TestSwitchConcurrentProcess drives concurrent Process calls (with a
// stateful RMWAdd register and a match table) against concurrent driver
// mutations, then checks no increments were lost — per-register locking
// must keep the stateful ALU atomic even with overlapping packets.
func TestSwitchConcurrentProcess(t *testing.T) {
	prog := &Program{
		Name:         "conc",
		Headers: []*HeaderDef{{Name: "h", Fields: []FieldDef{
			{Name: "idx", Width: 8},
			{Name: "old", Width: 8},
		}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Registers:    []*RegisterDef{{Name: "hits", Width: 64, Entries: 4}},
		Actions: []*Action{
			{Name: "fwd", Params: []FieldDef{{Name: "port", Width: 16}}, Body: []Op{
				Forward(R(F(ParamHeader, "port"))),
			}},
		},
		Tables: []*Table{{
			Name:    "route",
			Keys:    []TableKey{{Field: F("h", "idx"), Match: MatchExact}},
			Size:    8,
			Actions: []string{"fwd"},
			Default: "fwd", DefaultParams: []uint64{9},
		}},
		Control: []Op{
			RegRMW(F("h", "old"), "hits", R(F("h", "idx")), RMWAdd, C(1)),
			Apply("route"),
		},
	}
	sw, err := NewSwitch(prog, BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var res Result
			for i := 0; i < perWorker; i++ {
				if err := sw.ProcessInto(Packet{Data: []byte{byte(i % 4), 0}, Port: 1}, &res); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(res.Emissions) != 1 {
					t.Errorf("worker %d: %d emissions", w, len(res.Emissions))
					return
				}
			}
		}(w)
	}
	// Concurrent driver-path mutations: table churn, register reads,
	// counters, clock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := sw.InsertEntry("route", Entry{
				Key: []KeyMatch{EKey(uint64(i % 4))}, Action: "fwd", Params: []uint64{uint64(2 + i%3)},
			}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			sw.SetNow(uint64(i))
			_, _ = sw.RegisterRead("hits", i%4)
			_ = sw.Counter("dropped")
			if err := sw.DeleteEntry("route", []KeyMatch{EKey(uint64(i % 4))}); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	var total uint64
	for i := 0; i < 4; i++ {
		v, err := sw.RegisterRead("hits", i)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if want := uint64(workers * perWorker); total != want {
		t.Errorf("lost register increments: total=%d want %d", total, want)
	}
}
