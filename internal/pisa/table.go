package pisa

import "fmt"

// MatchKind is a table match type.
type MatchKind int

// Match kinds. Exact tables consume SRAM; ternary tables consume TCAM; LPM
// is implemented in TCAM on the modeled targets.
const (
	MatchExact MatchKind = iota + 1
	MatchTernary
	MatchLPM
)

func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	default:
		return fmt.Sprintf("MatchKind(%d)", int(m))
	}
}

// TableKey is one component of a table's match key.
type TableKey struct {
	Field FieldRef
	Match MatchKind
}

// Action is a named parameterized action. Parameter values from the
// matching entry are visible to Body ops as fields of the reserved header
// "param" (e.g. F("param", "port")).
type Action struct {
	Name   string
	Params []FieldDef
	Body   []Op
}

// ParamHeader is the reserved pseudo-header exposing action parameters.
const ParamHeader = "param"

// Table declares a match-action table.
type Table struct {
	Name    string
	Keys    []TableKey
	Size    int      // maximum entries; drives SRAM/TCAM accounting
	Actions []string // permitted action names
	// Default is the action run on a miss (empty = no-op). DefaultParams
	// supplies its parameters.
	Default       string
	DefaultParams []uint64
}

// KeyMatch is one key component of a table entry.
type KeyMatch struct {
	Value uint64
	// Mask applies to ternary keys (0 mask = wildcard everything).
	Mask uint64
	// PrefixLen applies to LPM keys.
	PrefixLen int
}

// EKey builds an exact-match key component.
func EKey(v uint64) KeyMatch { return KeyMatch{Value: v, Mask: ^uint64(0)} }

// TKey builds a ternary key component.
func TKey(v, mask uint64) KeyMatch { return KeyMatch{Value: v, Mask: mask} }

// PKey builds an LPM key component.
func PKey(v uint64, prefixLen int) KeyMatch { return KeyMatch{Value: v, PrefixLen: prefixLen} }

// Entry is a runtime table entry, installed through the driver interface.
type Entry struct {
	Key      []KeyMatch
	Priority int // higher wins among ternary matches
	Action   string
	Params   []uint64
}

// tableState is the runtime content of one table.
type tableState struct {
	def *Table
	// exact index: concatenated key values -> entry
	exact map[string]*Entry
	// ordered entries for ternary/lpm scan
	scan []*Entry
}

func newTableState(def *Table) *tableState {
	return &tableState{def: def, exact: make(map[string]*Entry)}
}

func (ts *tableState) isExactOnly() bool {
	for _, k := range ts.def.Keys {
		if k.Match != MatchExact {
			return false
		}
	}
	return true
}

// appendExactKey appends the big-endian concatenation of vals to b — the
// exact-match map key bytes.
func appendExactKey(b []byte, vals []uint64) []byte {
	for _, v := range vals {
		b = append(b,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return b
}

func exactKeyString(vals []uint64) string {
	return string(appendExactKey(make([]byte, 0, len(vals)*8), vals))
}

func (ts *tableState) insert(e Entry) error {
	if len(e.Key) != len(ts.def.Keys) {
		return fmt.Errorf("pisa: table %s: entry has %d key parts, want %d", ts.def.Name, len(e.Key), len(ts.def.Keys))
	}
	permitted := false
	for _, a := range ts.def.Actions {
		if a == e.Action {
			permitted = true
			break
		}
	}
	if !permitted {
		return fmt.Errorf("pisa: table %s: action %q not permitted", ts.def.Name, e.Action)
	}
	if ts.entryCount() >= ts.def.Size {
		return fmt.Errorf("pisa: table %s: full (%d entries)", ts.def.Name, ts.def.Size)
	}
	ec := e
	ec.Key = append([]KeyMatch(nil), e.Key...)
	ec.Params = append([]uint64(nil), e.Params...)
	if ts.isExactOnly() {
		vals := make([]uint64, len(ec.Key))
		for i, k := range ec.Key {
			vals[i] = k.Value
		}
		ts.exact[exactKeyString(vals)] = &ec
		return nil
	}
	ts.scan = append(ts.scan, &ec)
	return nil
}

func (ts *tableState) entryCount() int {
	if ts.isExactOnly() {
		return len(ts.exact)
	}
	return len(ts.scan)
}

// lookup finds the matching entry for the key values, or nil on miss.
// keyBuf is caller-owned scratch for the exact-match key bytes; the
// (possibly grown) buffer is returned so the caller can keep it.
func (ts *tableState) lookup(vals []uint64, widths []int, keyBuf []byte) (*Entry, []byte) {
	if ts.isExactOnly() {
		keyBuf = appendExactKey(keyBuf[:0], vals)
		// string(keyBuf) in the index expression does not allocate.
		return ts.exact[string(keyBuf)], keyBuf
	}
	var best *Entry
	bestPrio, bestPrefix := -1, -1
	for _, e := range ts.scan {
		if !ts.entryMatches(e, vals, widths) {
			continue
		}
		prefix := 0
		for i, k := range ts.def.Keys {
			if k.Match == MatchLPM {
				prefix += e.Key[i].PrefixLen
			}
		}
		if prefix > bestPrefix || (prefix == bestPrefix && e.Priority > bestPrio) {
			best, bestPrio, bestPrefix = e, e.Priority, prefix
		}
	}
	return best, keyBuf
}

func (ts *tableState) entryMatches(e *Entry, vals []uint64, widths []int) bool {
	for i, k := range ts.def.Keys {
		km := e.Key[i]
		switch k.Match {
		case MatchExact:
			if vals[i] != km.Value {
				return false
			}
		case MatchTernary:
			if vals[i]&km.Mask != km.Value&km.Mask {
				return false
			}
		case MatchLPM:
			w := widths[i]
			if km.PrefixLen > w {
				return false
			}
			m := mask(w) &^ mask(w-km.PrefixLen)
			if vals[i]&m != km.Value&m {
				return false
			}
		}
	}
	return true
}

func (ts *tableState) clear() {
	ts.exact = make(map[string]*Entry)
	ts.scan = nil
}

// keysEqual reports whether two entry keys are identical component-wise.
func keysEqual(a, b []KeyMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ts *tableState) remove(key []KeyMatch) error {
	if len(key) != len(ts.def.Keys) {
		return fmt.Errorf("pisa: table %s: delete key has %d parts, want %d", ts.def.Name, len(key), len(ts.def.Keys))
	}
	if ts.isExactOnly() {
		vals := make([]uint64, len(key))
		for i, k := range key {
			vals[i] = k.Value
		}
		ks := exactKeyString(vals)
		if _, ok := ts.exact[ks]; !ok {
			return fmt.Errorf("pisa: table %s: no entry for key", ts.def.Name)
		}
		delete(ts.exact, ks)
		return nil
	}
	for i, e := range ts.scan {
		if keysEqual(e.Key, key) {
			ts.scan = append(ts.scan[:i], ts.scan[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("pisa: table %s: no entry for key", ts.def.Name)
}
