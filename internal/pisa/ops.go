package pisa

import "fmt"

// Operand is a field reference or an immediate constant.
type Operand struct {
	Ref     FieldRef
	Const   uint64
	IsConst bool
}

// C returns a constant operand.
func C(v uint64) Operand { return Operand{Const: v, IsConst: true} }

// R returns a field-reference operand.
func R(ref FieldRef) Operand { return Operand{Ref: ref} }

func (o Operand) String() string {
	if o.IsConst {
		return fmt.Sprintf("%#x", o.Const)
	}
	return string(o.Ref)
}

// CmpKind is a comparison operator usable in gateway conditions.
type CmpKind int

// Comparison operators.
const (
	CmpEq CmpKind = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Cond is a gateway condition: either a comparison of two operands or a
// header-validity test (exactly one form must be set).
type Cond struct {
	L, R        Operand
	Cmp         CmpKind
	ValidHeader string // non-empty: test header validity instead
	Negate      bool
}

// Eq builds an equality condition.
func Eq(l, r Operand) Cond { return Cond{L: l, R: r, Cmp: CmpEq} }

// Ne builds an inequality condition.
func Ne(l, r Operand) Cond { return Cond{L: l, R: r, Cmp: CmpNe} }

// Lt builds a less-than condition.
func Lt(l, r Operand) Cond { return Cond{L: l, R: r, Cmp: CmpLt} }

// Gt builds a greater-than condition.
func Gt(l, r Operand) Cond { return Cond{L: l, R: r, Cmp: CmpGt} }

// Valid tests whether a header instance is valid (was parsed or set valid).
func Valid(header string) Cond { return Cond{ValidHeader: header} }

// NotValid tests that a header instance is absent.
func NotValid(header string) Cond { return Cond{ValidHeader: header, Negate: true} }

// OpKind enumerates the primitive operations a PISA action may perform.
// Note the absence of multiply/divide/modulo — the restriction that forces
// P4Auth's modified DH and CRC/SipHash-style primitives.
type OpKind int

// Primitive op kinds.
const (
	OpSet OpKind = iota + 1
	OpAdd
	OpSub
	OpXor
	OpAnd
	OpOr
	OpShl
	OpShr
	OpRotl // 32-bit rotate, the SipHash building block
	OpHash
	OpRegRead
	OpRegWrite
	OpRegRMW
	OpRandom
	OpSetValid
	OpSetInvalid
	OpApply
	OpIf
)

var opKindNames = map[OpKind]string{
	OpSet: "set", OpAdd: "add", OpSub: "sub", OpXor: "xor", OpAnd: "and",
	OpOr: "or", OpShl: "shl", OpShr: "shr", OpRotl: "rotl", OpHash: "hash",
	OpRegRead: "reg_read", OpRegWrite: "reg_write", OpRegRMW: "reg_rmw",
	OpRandom:   "random",
	OpSetValid: "set_valid", OpSetInvalid: "set_invalid", OpApply: "apply",
	OpIf: "if",
}

func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// HashAlg selects the algorithm of a hash distribution unit.
type HashAlg int

// Hash algorithms. CRC32 variants are native on both targets; HalfSipHash
// is an extern available only where the profile allows externs (BMv2).
const (
	HashCRC32 HashAlg = iota + 1
	HashCRC32C
	HashIdentity
	HashHalfSipHash
)

func (a HashAlg) String() string {
	switch a {
	case HashCRC32:
		return "crc32"
	case HashCRC32C:
		return "crc32c"
	case HashIdentity:
		return "identity"
	case HashHalfSipHash:
		return "halfsiphash"
	default:
		return fmt.Sprintf("HashAlg(%d)", int(a))
	}
}

// Op is one primitive operation. Which fields are meaningful depends on
// Kind; the builder helpers below construct well-formed ops.
type Op struct {
	Kind OpKind

	Dst  FieldRef // Set/Add/../Hash/RegRead/Random destination
	A, B Operand  // ALU sources

	// Hash op.
	Alg            HashAlg
	Key            *Operand  // optional 64-bit key (keyed digest)
	Inputs         []Operand // serialized MSB-first at field width (consts: 64 bits)
	IncludePayload bool      // append the packet payload to the hash input

	// Register ops.
	Reg   string
	Index Operand
	RMW   RMWKind

	// SetValid / SetInvalid.
	Header string

	// Apply.
	Table string

	// If.
	Cond       Cond
	Then, Else []Op
}

// Set returns dst = a.
func Set(dst FieldRef, a Operand) Op { return Op{Kind: OpSet, Dst: dst, A: a} }

// Add returns dst = a + b (wrapping at the destination width).
func Add(dst FieldRef, a, b Operand) Op { return Op{Kind: OpAdd, Dst: dst, A: a, B: b} }

// Sub returns dst = a - b (wrapping).
func Sub(dst FieldRef, a, b Operand) Op { return Op{Kind: OpSub, Dst: dst, A: a, B: b} }

// Xor returns dst = a ^ b.
func Xor(dst FieldRef, a, b Operand) Op { return Op{Kind: OpXor, Dst: dst, A: a, B: b} }

// And returns dst = a & b.
func And(dst FieldRef, a, b Operand) Op { return Op{Kind: OpAnd, Dst: dst, A: a, B: b} }

// Or returns dst = a | b.
func Or(dst FieldRef, a, b Operand) Op { return Op{Kind: OpOr, Dst: dst, A: a, B: b} }

// Shl returns dst = a << b.
func Shl(dst FieldRef, a, b Operand) Op { return Op{Kind: OpShl, Dst: dst, A: a, B: b} }

// Shr returns dst = a >> b.
func Shr(dst FieldRef, a, b Operand) Op { return Op{Kind: OpShr, Dst: dst, A: a, B: b} }

// Rotl returns dst = rotate-left(a, b) at the destination width (32-bit on
// hardware; the compiler rejects wider destinations).
func Rotl(dst FieldRef, a, b Operand) Op { return Op{Kind: OpRotl, Dst: dst, A: a, B: b} }

// Hash returns dst = alg(inputs...) on a hash distribution unit.
func Hash(dst FieldRef, alg HashAlg, inputs ...Operand) Op {
	return Op{Kind: OpHash, Dst: dst, Alg: alg, Inputs: inputs}
}

// KeyedHash returns dst = alg(key, inputs...), the digest primitive.
func KeyedHash(dst FieldRef, alg HashAlg, key Operand, inputs ...Operand) Op {
	return Op{Kind: OpHash, Dst: dst, Alg: alg, Key: &key, Inputs: inputs}
}

// RegRead returns dst = reg[index].
func RegRead(dst FieldRef, reg string, index Operand) Op {
	return Op{Kind: OpRegRead, Dst: dst, Reg: reg, Index: index}
}

// RegWrite returns reg[index] = a.
func RegWrite(reg string, index, a Operand) Op {
	return Op{Kind: OpRegWrite, Reg: reg, Index: index, A: a}
}

// RMWKind selects the stateful-ALU update of a read-modify-write register
// access (Tofino RegisterAction).
type RMWKind int

// RMW update kinds: the register entry becomes old+a, a, max(old, a), or
// old XOR a (the XOR-fold FlowRadar-style encoded flowsets rely on).
const (
	RMWAdd RMWKind = iota + 1
	RMWWrite
	RMWMax
	RMWXor
)

// RegRMW performs a single-access read-modify-write: dst receives the old
// entry value, and the entry is updated per kind with operand a. This is
// the one way to both read and update a register in the same pipeline
// pass on hardware targets.
func RegRMW(dst FieldRef, reg string, index Operand, kind RMWKind, a Operand) Op {
	return Op{Kind: OpRegRMW, Dst: dst, Reg: reg, Index: index, RMW: kind, A: a}
}

// Random returns dst = random() (the P4 random extern).
func Random(dst FieldRef) Op { return Op{Kind: OpRandom, Dst: dst} }

// SetValid makes a header instance valid (it will be deparsed).
func SetValid(header string) Op { return Op{Kind: OpSetValid, Header: header} }

// SetInvalid removes a header instance.
func SetInvalid(header string) Op { return Op{Kind: OpSetInvalid, Header: header} }

// Apply applies a match-action table.
func Apply(table string) Op { return Op{Kind: OpApply, Table: table} }

// If returns a gateway-guarded block.
func If(cond Cond, then []Op, els ...[]Op) Op {
	op := Op{Kind: OpIf, Cond: cond, Then: then}
	if len(els) > 0 {
		op.Else = els[0]
	}
	return op
}

// Convenience emissions: these write the intrinsic metadata fields.

// Forward sets the egress port.
func Forward(port Operand) Op { return Set(F(MetaHeader, MetaEgressPort), port) }

// Drop marks the packet for dropping.
func Drop() Op { return Set(F(MetaHeader, MetaDrop), C(1)) }

// ToCPU marks the packet for emission on the CPU port (PacketIn).
func ToCPU() Op { return Set(F(MetaHeader, MetaToCPU), C(1)) }

// Recirculate requests another pipeline pass.
func Recirculate() Op { return Set(F(MetaHeader, MetaRecirc), C(1)) }

// Multicast replicates the packet to the ports of a multicast group.
func Multicast(group Operand) Op { return Set(F(MetaHeader, MetaMcastGroup), group) }
