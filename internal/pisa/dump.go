package pisa

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders a program as pseudo-P4 for inspection (cmd/p4auth-inspect
// -dump). The output is deterministic.
func Dump(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n\n", p.Name)

	for _, h := range p.Headers {
		fmt.Fprintf(&b, "header %s { ", h.Name)
		for i, f := range h.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s:%d", f.Name, f.Width)
		}
		fmt.Fprintf(&b, " }  // %d bytes\n", h.Bytes())
	}
	if len(p.Metadata) > 0 {
		b.WriteString("metadata { ")
		for i, f := range p.Metadata {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s:%d", f.Name, f.Width)
		}
		b.WriteString(" }\n")
	}
	b.WriteByte('\n')

	if len(p.Parser) > 0 {
		b.WriteString("parser {\n")
		for _, s := range p.Parser {
			fmt.Fprintf(&b, "  state %s", s.Name)
			if s.Extract != "" {
				fmt.Fprintf(&b, " extract(%s)", s.Extract)
			}
			if s.Select != "" {
				fmt.Fprintf(&b, " select(%s)", s.Select)
				keys := make([]uint64, 0, len(s.Transitions))
				for v := range s.Transitions {
					keys = append(keys, v)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, v := range keys {
					fmt.Fprintf(&b, " %#x->%s", v, s.Transitions[v])
				}
			}
			if s.Default != "" {
				fmt.Fprintf(&b, " default->%s", s.Default)
			}
			b.WriteByte('\n')
		}
		b.WriteString("}\n\n")
	}

	for _, r := range p.Registers {
		fmt.Fprintf(&b, "register %s: %d x %d bits\n", r.Name, r.Entries, r.Width)
	}
	if len(p.Registers) > 0 {
		b.WriteByte('\n')
	}

	for _, a := range p.Actions {
		fmt.Fprintf(&b, "action %s(", a.Name)
		for i, prm := range a.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%d", prm.Name, prm.Width)
		}
		b.WriteString(") {\n")
		dumpOps(&b, a.Body, 1)
		b.WriteString("}\n")
	}
	if len(p.Actions) > 0 {
		b.WriteByte('\n')
	}

	for _, t := range p.Tables {
		fmt.Fprintf(&b, "table %s {\n  key = {", t.Name)
		for i, k := range t.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, " %s:%s", k.Field, k.Match)
		}
		fmt.Fprintf(&b, " }\n  actions = { %s }\n  size = %d\n", strings.Join(t.Actions, ", "), t.Size)
		if t.Default != "" {
			fmt.Fprintf(&b, "  default = %s\n", t.Default)
		}
		b.WriteString("}\n")
	}
	if len(p.Tables) > 0 {
		b.WriteByte('\n')
	}

	b.WriteString("control ingress {\n")
	dumpOps(&b, p.Control, 1)
	b.WriteString("}\n")
	if len(p.EgressControl) > 0 {
		b.WriteString("control egress {\n")
		dumpOps(&b, p.EgressControl, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func dumpOps(b *strings.Builder, ops []Op, depth int) {
	ind := strings.Repeat("  ", depth)
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpIf:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, condString(op.Cond))
			dumpOps(b, op.Then, depth+1)
			if len(op.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				dumpOps(b, op.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case OpApply:
			fmt.Fprintf(b, "%sapply(%s)\n", ind, op.Table)
		case OpHash:
			var ins []string
			if op.Key != nil {
				ins = append(ins, "key="+op.Key.String())
			}
			for _, in := range op.Inputs {
				ins = append(ins, in.String())
			}
			if op.IncludePayload {
				ins = append(ins, "payload")
			}
			fmt.Fprintf(b, "%s%s = %s(%s)\n", ind, op.Dst, op.Alg, strings.Join(ins, ", "))
		case OpRegRead:
			fmt.Fprintf(b, "%s%s = %s[%s]\n", ind, op.Dst, op.Reg, op.Index)
		case OpRegWrite:
			fmt.Fprintf(b, "%s%s[%s] = %s\n", ind, op.Reg, op.Index, op.A)
		case OpRegRMW:
			verb := map[RMWKind]string{RMWAdd: "+=", RMWWrite: ":=", RMWMax: "max="}[op.RMW]
			fmt.Fprintf(b, "%s%s = rmw %s[%s] %s %s\n", ind, op.Dst, op.Reg, op.Index, verb, op.A)
		case OpRandom:
			fmt.Fprintf(b, "%s%s = random()\n", ind, op.Dst)
		case OpSetValid:
			fmt.Fprintf(b, "%s%s.setValid()\n", ind, op.Header)
		case OpSetInvalid:
			fmt.Fprintf(b, "%s%s.setInvalid()\n", ind, op.Header)
		case OpSet:
			fmt.Fprintf(b, "%s%s = %s\n", ind, op.Dst, op.A)
		default:
			sym := map[OpKind]string{
				OpAdd: "+", OpSub: "-", OpXor: "^", OpAnd: "&", OpOr: "|",
				OpShl: "<<", OpShr: ">>", OpRotl: "<<<",
			}[op.Kind]
			if sym == "" {
				fmt.Fprintf(b, "%s%s ???\n", ind, op.Kind)
				continue
			}
			fmt.Fprintf(b, "%s%s = %s %s %s\n", ind, op.Dst, op.A, sym, op.B)
		}
	}
}

func condString(c Cond) string {
	if c.ValidHeader != "" {
		if c.Negate {
			return "!" + c.ValidHeader + ".isValid()"
		}
		return c.ValidHeader + ".isValid()"
	}
	sym := map[CmpKind]string{
		CmpEq: "==", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
	}[c.Cmp]
	s := fmt.Sprintf("%s %s %s", c.L, sym, c.R)
	if c.Negate {
		return "!(" + s + ")"
	}
	return s
}
