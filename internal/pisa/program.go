package pisa

import "fmt"

// RegisterDef declares a stateful register array. Widths above the target
// ALU width are realized as paired entries and charged accordingly.
type RegisterDef struct {
	Name    string
	Width   int // bits per entry, 1..64
	Entries int
}

// ParserState is one state of the programmable parser. The start state is
// named "start". A state optionally extracts a header, then either accepts
// (empty Select and Default) or branches on a field value.
type ParserState struct {
	Name string
	// Extract is the header to extract in this state ("" = none).
	Extract string
	// Select is the field whose value chooses the next state ("" = always
	// take Default).
	Select FieldRef
	// Transitions maps select values to next-state names.
	Transitions map[uint64]string
	// Default is the fallthrough state name; "" accepts the packet.
	Default string
}

// ParserStart is the entry state name.
const ParserStart = "start"

// Program is the P4-level description of a data plane: headers, parser,
// tables, actions, registers, and the control flow applied to every packet.
type Program struct {
	Name string

	Headers  []*HeaderDef
	Metadata []FieldDef // user metadata, in addition to the intrinsics

	Parser []ParserState

	// DeparseOrder lists header names in wire order for emission. Valid
	// headers are emitted in this order followed by the payload.
	DeparseOrder []string

	Actions   []*Action
	Tables    []*Table
	Registers []*RegisterDef

	// Control is the per-pass ingress control flow.
	Control []Op

	// EgressControl runs once per emitted replica (unicast, each multicast
	// copy, and copy-to-CPU), after replication, with MetaEgressPort set
	// to the replica's port. As on hardware, the egress pipeline may not
	// recirculate and may not touch registers the ingress pipeline uses.
	EgressControl []Op
}

// Header returns the header definition by name, or nil.
func (p *Program) Header(name string) *HeaderDef {
	for _, h := range p.Headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Table returns the table definition by name, or nil.
func (p *Program) Table(name string) *Table {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Action returns the action definition by name, or nil.
func (p *Program) Action(name string) *Action {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Register returns the register definition by name, or nil.
func (p *Program) Register(name string) *RegisterDef {
	for _, r := range p.Registers {
		if r.Name == name {
			return r
		}
	}
	return nil
}

func (p *Program) validate() error {
	if p.Name == "" {
		return fmt.Errorf("pisa: program needs a name")
	}
	seenH := map[string]bool{MetaHeader: true, ParamHeader: true}
	for _, h := range p.Headers {
		if err := h.validate(); err != nil {
			return err
		}
		if seenH[h.Name] {
			return fmt.Errorf("pisa: duplicate or reserved header name %q", h.Name)
		}
		seenH[h.Name] = true
	}
	seenM := make(map[string]bool)
	for _, m := range intrinsicMetadata() {
		seenM[m.Name] = true
	}
	for _, m := range p.Metadata {
		if m.Width < 1 || m.Width > 64 {
			return fmt.Errorf("pisa: metadata %s: width %d out of range", m.Name, m.Width)
		}
		if seenM[m.Name] {
			return fmt.Errorf("pisa: duplicate or reserved metadata field %q", m.Name)
		}
		seenM[m.Name] = true
	}
	seenA := make(map[string]bool)
	for _, a := range p.Actions {
		if seenA[a.Name] {
			return fmt.Errorf("pisa: duplicate action %q", a.Name)
		}
		seenA[a.Name] = true
	}
	seenT := make(map[string]bool)
	for _, t := range p.Tables {
		if seenT[t.Name] {
			return fmt.Errorf("pisa: duplicate table %q", t.Name)
		}
		seenT[t.Name] = true
		if t.Size < 1 {
			return fmt.Errorf("pisa: table %s: size must be positive", t.Name)
		}
		if len(t.Keys) == 0 {
			return fmt.Errorf("pisa: table %s: needs at least one key", t.Name)
		}
		for _, an := range t.Actions {
			if p.Action(an) == nil {
				return fmt.Errorf("pisa: table %s: unknown action %q", t.Name, an)
			}
		}
		if t.Default != "" && p.Action(t.Default) == nil {
			return fmt.Errorf("pisa: table %s: unknown default action %q", t.Name, t.Default)
		}
	}
	seenR := make(map[string]bool)
	for _, r := range p.Registers {
		if seenR[r.Name] {
			return fmt.Errorf("pisa: duplicate register %q", r.Name)
		}
		seenR[r.Name] = true
		if r.Width < 1 || r.Width > 64 {
			return fmt.Errorf("pisa: register %s: width %d out of range", r.Name, r.Width)
		}
		if r.Entries < 1 {
			return fmt.Errorf("pisa: register %s: needs at least one entry", r.Name)
		}
	}
	if err := p.validateParser(); err != nil {
		return err
	}
	for _, name := range p.DeparseOrder {
		if p.Header(name) == nil {
			return fmt.Errorf("pisa: deparse order names unknown header %q", name)
		}
	}
	return nil
}

func (p *Program) validateParser() error {
	if len(p.Parser) == 0 {
		return nil // header-less programs are legal (pure metadata pipelines)
	}
	names := make(map[string]bool, len(p.Parser))
	for _, s := range p.Parser {
		if names[s.Name] {
			return fmt.Errorf("pisa: duplicate parser state %q", s.Name)
		}
		names[s.Name] = true
		if s.Extract != "" && p.Header(s.Extract) == nil {
			return fmt.Errorf("pisa: parser state %s extracts unknown header %q", s.Name, s.Extract)
		}
	}
	if !names[ParserStart] {
		return fmt.Errorf("pisa: parser has no %q state", ParserStart)
	}
	for _, s := range p.Parser {
		for v, next := range s.Transitions {
			if next != "" && !names[next] {
				return fmt.Errorf("pisa: parser state %s: transition on %#x to unknown state %q", s.Name, v, next)
			}
		}
		if s.Default != "" && !names[s.Default] {
			return fmt.Errorf("pisa: parser state %s: unknown default state %q", s.Name, s.Default)
		}
	}
	return nil
}
