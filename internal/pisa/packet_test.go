package pisa

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundtrip(t *testing.T) {
	def := &HeaderDef{Name: "h", Fields: []FieldDef{
		{Name: "a", Width: 4},
		{Name: "b", Width: 12},
		{Name: "c", Width: 32},
		{Name: "d", Width: 64},
		{Name: "e", Width: 16},
	}}
	if err := def.validate(); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d, e uint64) bool {
		in := []uint64{a & mask(4), b & mask(12), c & mask(32), d, e & mask(16)}
		packed, err := PackHeader(def, in)
		if err != nil {
			return false
		}
		out, err := UnpackHeader(def, packed)
		if err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackHeaderMasksOversizedValues(t *testing.T) {
	def := &HeaderDef{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}
	packed, err := PackHeader(def, []uint64{0x1ff})
	if err != nil {
		t.Fatal(err)
	}
	if packed[0] != 0xff {
		t.Errorf("got %#x, want masked 0xff", packed[0])
	}
}

func TestPackHeaderWireOrderMSBFirst(t *testing.T) {
	def := &HeaderDef{Name: "h", Fields: []FieldDef{
		{Name: "hi", Width: 8},
		{Name: "lo", Width: 8},
		{Name: "word", Width: 16},
	}}
	packed, err := PackHeader(def, []uint64{0xAB, 0xCD, 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0xAB, 0xCD, 0x12, 0x34}
	if !bytes.Equal(packed, want) {
		t.Errorf("got % x, want % x", packed, want)
	}
}

func TestUnpackHeaderShortPacket(t *testing.T) {
	def := &HeaderDef{Name: "h", Fields: []FieldDef{{Name: "x", Width: 32}}}
	if _, err := UnpackHeader(def, []byte{1, 2}); err == nil {
		t.Fatal("expected error for short packet")
	}
}

func TestHeaderValidation(t *testing.T) {
	tests := []struct {
		name string
		def  HeaderDef
		ok   bool
	}{
		{"valid", HeaderDef{Name: "h", Fields: []FieldDef{{Name: "a", Width: 8}}}, true},
		{"unaligned", HeaderDef{Name: "h", Fields: []FieldDef{{Name: "a", Width: 7}}}, false},
		{"zero width", HeaderDef{Name: "h", Fields: []FieldDef{{Name: "a", Width: 0}}}, false},
		{"too wide", HeaderDef{Name: "h", Fields: []FieldDef{{Name: "a", Width: 65}}}, false},
		{"dup field", HeaderDef{Name: "h", Fields: []FieldDef{{Name: "a", Width: 8}, {Name: "a", Width: 8}}}, false},
		{"empty name", HeaderDef{Fields: []FieldDef{{Name: "a", Width: 8}}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.def.validate()
			if tt.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestPacketClone(t *testing.T) {
	p := Packet{Data: []byte{1, 2, 3}, Port: 4}
	c := p.Clone()
	c.Data[0] = 9
	if p.Data[0] != 1 {
		t.Error("clone shares backing array")
	}
}
