//go:build !race

package pisa

// raceEnabled reports whether the race detector is active. Alloc-count
// guards are skipped under -race: instrumentation changes allocation
// counts.
const raceEnabled = false
