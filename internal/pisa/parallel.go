package pisa

import (
	"sync"
	"time"

	"p4auth/internal/crypto"
)

// Per-port ingress workers and the batch processing entry.
//
// Parallelism model: packets are assigned to lanes by ingress port
// (lane = port mod workers), so every packet stream that shares a port —
// and therefore shares a port key, a replay-floor slot, and a sequence
// number order — is processed by exactly one lane, in submission order.
// That is what keeps the replay defence correct under parallelism: the
// RMWMax floor on a slot only ever observes the ascending sequence
// numbers its sender produced, never a reordering introduced by the
// switch. Cross-lane state (tables, registers, counters) keeps its
// existing synchronization (stateMu read side, per-bank regMu, sharded
// atomic counter cells), so lanes never race.
//
// Determinism: with workers <= 1 ProcessBatch is a plain loop over
// ProcessInto on the caller's goroutine — bit-identical to the serial
// data plane, including the random() draw order, which is why the chaos
// harnesses keep their golden traces. With workers > 1, each lane draws
// from a deterministic fork of the switch seed (crypto.Forkable), so a
// run's outputs depend only on (seed, workers, batch contents), not on
// goroutine scheduling.

// BatchResult holds the outcome of one ProcessBatch call.
//
// Unlike a reused single Result — whose emission buffers recycle on every
// ProcessInto — each packet of a batch writes into its own Result, so all
// emission buffers stay valid until the next ProcessBatch (or reuse of
// the individual Results). That stability is what lets the switchos batch
// path hand emission bytes upward without an intermediate copy.
type BatchResult struct {
	// Results holds one Result per input packet, in input order. A packet
	// that failed (see the error return of ProcessBatch) leaves its
	// Result undefined.
	Results []Result
	// Cost is the modeled data-plane latency of the whole batch: the
	// maximum over lanes of each lane's summed per-packet cost. With one
	// lane (or workers <= 1) that is the plain serial sum.
	Cost time.Duration
}

// prep sizes Results for n packets, retaining each Result's recycled
// buffers across calls.
func (br *BatchResult) prep(n int) {
	for cap(br.Results) < n {
		br.Results = append(br.Results[:cap(br.Results)], Result{})
	}
	br.Results = br.Results[:n]
}

// lane is one ingress worker: a persistent goroutine, its deterministic
// random fork, and its per-batch work list and accumulators.
type lane struct {
	s     *Switch
	shard uint32
	rng   crypto.RandomSource

	idx  []int // indices into the current batch, in input order
	cost time.Duration
	err  error
	errAt int

	wake chan struct{}
}

// workerPool owns the persistent lane goroutines. The current batch's
// inputs/outputs are published in pkts/results before the wake sends and
// read back after done.Wait(); the channel and WaitGroup provide the
// happens-before edges.
type workerPool struct {
	lanes   []*lane
	pkts    []Packet
	results []Result
	done    sync.WaitGroup

	closeOnce sync.Once
}

// newWorkerPool spawns s.workers persistent ingress workers. Lane RNGs
// fork deterministically from the switch's base source when it supports
// forking; otherwise the (concurrency-safe) base source is shared, which
// stays correct but makes the cross-lane draw order scheduling-dependent.
func newWorkerPool(s *Switch) *workerPool {
	p := &workerPool{lanes: make([]*lane, s.workers)}
	for i := range p.lanes {
		rng := s.rng
		if f, ok := s.rng.(crypto.Forkable); ok {
			rng = f.Fork(uint64(i))
		}
		ln := &lane{
			s:     s,
			shard: uint32(i) % counterShardCount,
			rng:   rng,
			wake:  make(chan struct{}),
		}
		p.lanes[i] = ln
		go ln.run(p)
	}
	return p
}

func (ln *lane) run(p *workerPool) {
	for range ln.wake {
		ln.cost, ln.err, ln.errAt = 0, nil, -1
		for _, i := range ln.idx {
			if err := ln.s.processInto(p.pkts[i], &p.results[i], ln.rng, ln.shard); err != nil {
				if ln.err == nil {
					ln.err, ln.errAt = err, i
				}
				continue
			}
			ln.cost += p.results[i].Cost
		}
		p.done.Done()
	}
}

// Workers reports the configured ingress worker count (1 for a serial
// switch).
func (s *Switch) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// Close stops the ingress workers (if any). It is idempotent and safe on
// a serial switch; ProcessBatch must not be called after Close.
func (s *Switch) Close() {
	if s.pool == nil {
		return
	}
	s.pool.closeOnce.Do(func() {
		for _, ln := range s.pool.lanes {
			close(ln.wake)
		}
	})
}

// ProcessBatch runs a batch of packets through the pipeline, one Result
// per packet (see BatchResult's buffer-stability contract). Packets
// sharing an ingress port are processed in input order; distinct ports
// may proceed concurrently on a worker-backed switch. A per-packet
// failure does not stop the rest of the batch: the first error (lowest
// input index) is returned, the failed packet's Result is undefined, and
// every other packet completes normally.
func (s *Switch) ProcessBatch(pkts []Packet, br *BatchResult) error {
	br.prep(len(pkts))
	br.Cost = 0
	if s.pool == nil || len(pkts) <= 1 {
		// Serial: identical to a caller's own ProcessInto loop, including
		// random() draw order from the base source.
		var firstErr error
		for i := range pkts {
			if err := s.ProcessInto(pkts[i], &br.Results[i]); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			br.Cost += br.Results[i].Cost
		}
		return firstErr
	}

	p := s.pool
	for _, ln := range p.lanes {
		ln.idx = ln.idx[:0]
	}
	for i := range pkts {
		ln := p.lanes[uint(pkts[i].Port)%uint(len(p.lanes))]
		ln.idx = append(ln.idx, i)
	}
	p.pkts, p.results = pkts, br.Results
	p.done.Add(len(p.lanes))
	for _, ln := range p.lanes {
		ln.wake <- struct{}{}
	}
	p.done.Wait()
	p.pkts, p.results = nil, nil

	var firstErr error
	errAt := -1
	for _, ln := range p.lanes {
		if ln.cost > br.Cost {
			br.Cost = ln.cost
		}
		if ln.err != nil && (errAt < 0 || ln.errAt < errAt) {
			firstErr, errAt = ln.err, ln.errAt
		}
	}
	return firstErr
}
