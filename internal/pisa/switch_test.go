package pisa

import (
	"testing"

	"p4auth/internal/crypto"
)

// testL3Program is a toy destination-based forwarder: an "eth"-like header
// selecting an "ip" header, an LPM route table, an exact port table, and a
// packet counter register.
func testL3Program() *Program {
	return &Program{
		Name: "test_l3",
		Headers: []*HeaderDef{
			{Name: "eth", Fields: []FieldDef{
				{Name: "dst", Width: 16},
				{Name: "src", Width: 16},
				{Name: "etype", Width: 16},
			}},
			{Name: "ip", Fields: []FieldDef{
				{Name: "dst", Width: 32},
				{Name: "ttl", Width: 8},
				{Name: "proto", Width: 8},
			}},
		},
		Metadata: []FieldDef{
			{Name: "nhop", Width: 16},
		},
		Parser: []ParserState{
			{Name: ParserStart, Extract: "eth", Select: F("eth", "etype"),
				Transitions: map[uint64]string{0x0800: "ip"}},
			{Name: "ip", Extract: "ip"},
		},
		DeparseOrder: []string{"eth", "ip"},
		Actions: []*Action{
			{Name: "set_nhop", Params: []FieldDef{{Name: "nhop", Width: 16}}, Body: []Op{
				Set(F(MetaHeader, "nhop"), R(F(ParamHeader, "nhop"))),
				Sub(F("ip", "ttl"), R(F("ip", "ttl")), C(1)),
			}},
			{Name: "to_port", Params: []FieldDef{{Name: "port", Width: 16}}, Body: []Op{
				Forward(R(F(ParamHeader, "port"))),
			}},
			{Name: "drop_pkt", Body: []Op{Drop()}},
		},
		Tables: []*Table{
			{Name: "routes", Keys: []TableKey{{Field: F("ip", "dst"), Match: MatchLPM}},
				Size: 1024, Actions: []string{"set_nhop", "drop_pkt"}, Default: "drop_pkt"},
			{Name: "ports", Keys: []TableKey{{Field: F(MetaHeader, "nhop"), Match: MatchExact}},
				Size: 64, Actions: []string{"to_port", "drop_pkt"}, Default: "drop_pkt"},
		},
		Registers: []*RegisterDef{
			{Name: "pkt_count", Width: 32, Entries: 8},
		},
		Control: []Op{
			If(Valid("ip"), []Op{
				Apply("routes"),
				Apply("ports"),
				RegRead(F(MetaHeader, "nhop"), "pkt_count", C(0)), // scratch reuse after ports
			}, []Op{Drop()}),
		},
	}
}

func ethIPPacket(dst uint64, ttl uint64) []byte {
	eth := &HeaderDef{Name: "eth", Fields: []FieldDef{
		{Name: "dst", Width: 16}, {Name: "src", Width: 16}, {Name: "etype", Width: 16}}}
	ip := &HeaderDef{Name: "ip", Fields: []FieldDef{
		{Name: "dst", Width: 32}, {Name: "ttl", Width: 8}, {Name: "proto", Width: 8}}}
	e, _ := PackHeader(eth, []uint64{0xAAAA, 0xBBBB, 0x0800})
	i, _ := PackHeader(ip, []uint64{dst, ttl, 6})
	return append(append(e, i...), []byte("payload!")...)
}

func newTestSwitch(t *testing.T, profile Profile) *Switch {
	t.Helper()
	sw, err := NewSwitch(testL3Program(), profile)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("routes", Entry{
		Key: []KeyMatch{PKey(0x0A000000, 8)}, Action: "set_nhop", Params: []uint64{7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("routes", Entry{
		Key: []KeyMatch{PKey(0x0A0A0000, 16)}, Action: "set_nhop", Params: []uint64{9},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("ports", Entry{
		Key: []KeyMatch{EKey(7)}, Action: "to_port", Params: []uint64{3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("ports", Entry{
		Key: []KeyMatch{EKey(9)}, Action: "to_port", Params: []uint64{5},
	}); err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSwitchForwardsViaLPMAndExact(t *testing.T) {
	for _, profile := range []Profile{TofinoProfile(), BMv2Profile()} {
		t.Run(profile.Name, func(t *testing.T) {
			sw := newTestSwitch(t, profile)
			res, err := sw.Process(Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Emissions) != 1 || res.Emissions[0].Port != 3 {
				t.Fatalf("emissions = %+v, want one on port 3", res.Emissions)
			}
			// Longest prefix wins.
			res, err = sw.Process(Packet{Data: ethIPPacket(0x0A0A0001, 64), Port: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Emissions) != 1 || res.Emissions[0].Port != 5 {
				t.Fatalf("emissions = %+v, want one on port 5 (longest prefix)", res.Emissions)
			}
		})
	}
}

func TestSwitchTTLDecrementOnWire(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	res, err := sw.Process(Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Emissions[0].Data
	// eth is 6 bytes; ip dst is 4 bytes; ttl follows.
	if ttl := out[6+4]; ttl != 63 {
		t.Errorf("ttl on wire = %d, want 63", ttl)
	}
	// Payload preserved.
	if string(out[len(out)-8:]) != "payload!" {
		t.Errorf("payload corrupted: %q", out[len(out)-8:])
	}
}

func TestSwitchDefaultActionDrops(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	res, err := sw.Process(Packet{Data: ethIPPacket(0x0B000001, 64), Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 0 {
		t.Fatalf("unrouted packet emitted: %+v", res.Emissions)
	}
	if sw.Counter("dropped") != 1 {
		t.Errorf("dropped counter = %d, want 1", sw.Counter("dropped"))
	}
}

func TestSwitchNonIPDropped(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	eth := &HeaderDef{Name: "eth", Fields: []FieldDef{
		{Name: "dst", Width: 16}, {Name: "src", Width: 16}, {Name: "etype", Width: 16}}}
	e, _ := PackHeader(eth, []uint64{1, 2, 0x0806})
	res, err := sw.Process(Packet{Data: e, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 0 {
		t.Fatalf("non-IP packet emitted: %+v", res.Emissions)
	}
}

func TestSwitchParseErrorShortPacket(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	if _, err := sw.Process(Packet{Data: []byte{1, 2}, Port: 1}); err == nil {
		t.Fatal("expected parse error")
	}
	if sw.Counter("parse_error") != 1 {
		t.Error("parse_error counter not bumped")
	}
}

func TestSwitchDriverRegisterAccess(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	if err := sw.RegisterWrite("pkt_count", 3, 0x1_0000_0001); err != nil {
		t.Fatal(err)
	}
	v, err := sw.RegisterRead("pkt_count", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 { // 32-bit register masks the write
		t.Errorf("got %#x, want width-masked 1", v)
	}
	if _, err := sw.RegisterRead("pkt_count", 99); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := sw.RegisterRead("nope", 0); err == nil {
		t.Error("expected unknown-register error")
	}
}

func TestSwitchTableRuntimeErrors(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	if err := sw.InsertEntry("nope", Entry{}); err == nil {
		t.Error("expected unknown-table error")
	}
	if err := sw.InsertEntry("ports", Entry{Key: []KeyMatch{EKey(1)}, Action: "set_nhop", Params: []uint64{1}}); err == nil {
		t.Error("expected not-permitted action error")
	}
	if err := sw.InsertEntry("ports", Entry{Key: []KeyMatch{EKey(1), EKey(2)}, Action: "to_port", Params: []uint64{1}}); err == nil {
		t.Error("expected key-arity error")
	}
}

func TestSwitchTableCapacity(t *testing.T) {
	prog := testL3Program()
	prog.Tables[1].Size = 2
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := sw.InsertEntry("ports", Entry{Key: []KeyMatch{EKey(uint64(i))}, Action: "to_port", Params: []uint64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.InsertEntry("ports", Entry{Key: []KeyMatch{EKey(5)}, Action: "to_port", Params: []uint64{1}}); err == nil {
		t.Error("expected table-full error")
	}
}

func TestSwitchClearTable(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	if err := sw.ClearTable("routes"); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 0 {
		t.Error("cleared table still matched")
	}
}

func TestSwitchMulticast(t *testing.T) {
	prog := &Program{
		Name: "mcast",
		Headers: []*HeaderDef{
			{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}},
		},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control:      []Op{Multicast(C(7))},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	sw.SetMulticastGroup(7, []int{2, 3, 4})
	res, err := sw.Process(Packet{Data: []byte{0x55}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 3 {
		t.Fatalf("got %d emissions, want 3", len(res.Emissions))
	}
	ports := map[int]bool{}
	for _, e := range res.Emissions {
		ports[e.Port] = true
		if e.Data[0] != 0x55 {
			t.Errorf("replica data corrupted: %#x", e.Data[0])
		}
	}
	if !ports[2] || !ports[3] || !ports[4] {
		t.Errorf("replica ports = %v", ports)
	}
	// Replicas must not share backing arrays.
	res.Emissions[0].Data[0] = 0xFF
	if res.Emissions[1].Data[0] == 0xFF {
		t.Error("multicast replicas share a backing array")
	}
}

func TestSwitchToCPU(t *testing.T) {
	prog := &Program{
		Name:         "tocpu",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control:      []Op{ToCPU()},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: []byte{9}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 1 || res.Emissions[0].Port != CPUPort {
		t.Fatalf("emissions = %+v, want one on CPUPort", res.Emissions)
	}
}

func TestSwitchRecirculation(t *testing.T) {
	// Count passes in a register: recirculate until pass counter hits 2.
	prog := &Program{
		Name:         "recirc",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Registers:    []*RegisterDef{{Name: "passes", Width: 32, Entries: 1}},
		Control: []Op{
			RegWrite("passes", C(0), R(F(MetaHeader, MetaPass))),
			If(Lt(R(F(MetaHeader, MetaPass)), C(2)), []Op{Recirculate()}, []Op{Forward(C(2))}),
		},
	}
	sw, err := NewSwitch(prog, BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: []byte{1}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 3 {
		t.Errorf("passes = %d, want 3", res.Passes)
	}
	if v, _ := sw.RegisterRead("passes", 0); v != 2 {
		t.Errorf("last recorded pass = %d, want 2", v)
	}
	if len(res.Emissions) != 1 || res.Emissions[0].Port != 2 {
		t.Errorf("emissions = %+v", res.Emissions)
	}
}

func TestSwitchRecirculationOverflowDrops(t *testing.T) {
	prog := &Program{
		Name:         "recirc_forever",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control:      []Op{Recirculate(), Forward(C(2))},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: []byte{1}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 0 {
		t.Error("runaway recirculation should drop")
	}
	if sw.Counter("recirc_overflow") != 1 {
		t.Error("recirc_overflow not counted")
	}
}

func TestSwitchTernaryPriority(t *testing.T) {
	prog := &Program{
		Name:         "ternary",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 16}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Actions: []*Action{
			{Name: "out", Params: []FieldDef{{Name: "p", Width: 16}}, Body: []Op{Forward(R(F(ParamHeader, "p")))}},
		},
		Tables: []*Table{
			{Name: "acl", Keys: []TableKey{{Field: F("h", "x"), Match: MatchTernary}},
				Size: 16, Actions: []string{"out"}},
		},
		Control: []Op{Apply("acl")},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Broad low-priority rule and narrow high-priority rule.
	if err := sw.InsertEntry("acl", Entry{Key: []KeyMatch{TKey(0x0000, 0xFF00)}, Priority: 1, Action: "out", Params: []uint64{2}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.InsertEntry("acl", Entry{Key: []KeyMatch{TKey(0x0042, 0xFFFF)}, Priority: 10, Action: "out", Params: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: []byte{0x00, 0x42}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emissions[0].Port != 3 {
		t.Errorf("port = %d, want high-priority 3", res.Emissions[0].Port)
	}
	res, err = sw.Process(Packet{Data: []byte{0x00, 0x41}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emissions[0].Port != 2 {
		t.Errorf("port = %d, want broad-rule 2", res.Emissions[0].Port)
	}
}

func TestSwitchKeyedHashMatchesCryptoPackage(t *testing.T) {
	// The controller computes digests with internal/crypto; the data plane
	// computes them with hash units. They must agree on the same bytes.
	prog := &Program{
		Name: "hashcheck",
		Headers: []*HeaderDef{{Name: "h", Fields: []FieldDef{
			{Name: "a", Width: 32}, {Name: "b", Width: 16}, {Name: "pad", Width: 16},
		}}},
		Metadata:     []FieldDef{{Name: "digest", Width: 32}, {Name: "key", Width: 64}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control: []Op{
			Set(F(MetaHeader, "key"), C(0x1122334455667788)),
			KeyedHash(F(MetaHeader, "digest"), HashCRC32, R(F(MetaHeader, "key")),
				R(F("h", "a")), R(F("h", "b"))),
			RegWrite("out", C(0), R(F(MetaHeader, "digest"))),
		},
		Registers: []*RegisterDef{{Name: "out", Width: 32, Entries: 1}},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x00, 0x00}
	if _, err := sw.Process(Packet{Data: data, Port: 1}); err != nil {
		t.Fatal(err)
	}
	got, _ := sw.RegisterRead("out", 0)

	// Reference: same field bytes (a=0xDEADBEEF:32, b=0x0102:16 packed
	// MSB-first) through crypto.KeyedCRC32.
	want := crypto.NewKeyedCRC32().Sum32(0x1122334455667788, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
	if uint32(got) != want {
		t.Errorf("pipeline digest %#x != crypto package %#x", got, want)
	}
}

func TestSwitchHalfSipHashExternMatchesCryptoPackage(t *testing.T) {
	prog := &Program{
		Name:         "externcheck",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "a", Width: 32}}}},
		Metadata:     []FieldDef{{Name: "digest", Width: 32}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control: []Op{
			KeyedHash(F(MetaHeader, "digest"), HashHalfSipHash, C(0xCAFED00D), R(F("h", "a"))),
			RegWrite("out", C(0), R(F(MetaHeader, "digest"))),
		},
		Registers: []*RegisterDef{{Name: "out", Width: 32, Entries: 1}},
	}
	sw, err := NewSwitch(prog, BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Process(Packet{Data: []byte{0x01, 0x02, 0x03, 0x04}, Port: 1}); err != nil {
		t.Fatal(err)
	}
	got, _ := sw.RegisterRead("out", 0)
	want := crypto.NewHalfSipHash24().Sum32(0xCAFED00D, []byte{0x01, 0x02, 0x03, 0x04})
	if uint32(got) != want {
		t.Errorf("extern digest %#x != crypto package %#x", got, want)
	}
}

func TestSwitchRandomExternDeterministicWithSeed(t *testing.T) {
	mk := func() *Switch {
		prog := &Program{
			Name:         "rnd",
			Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}},
			Metadata:     []FieldDef{{Name: "r", Width: 64}},
			Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
			DeparseOrder: []string{"h"},
			Control: []Op{
				Random(F(MetaHeader, "r")),
				RegWrite("out", C(0), R(F(MetaHeader, "r"))),
			},
			Registers: []*RegisterDef{{Name: "out", Width: 64, Entries: 1}},
		}
		sw, err := NewSwitch(prog, BMv2Profile(), WithRandom(crypto.NewSeededRand(42)))
		if err != nil {
			panic(err)
		}
		return sw
	}
	a, b := mk(), mk()
	if _, err := a.Process(Packet{Data: []byte{1}, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Process(Packet{Data: []byte{1}, Port: 1}); err != nil {
		t.Fatal(err)
	}
	va, _ := a.RegisterRead("out", 0)
	vb, _ := b.RegisterRead("out", 0)
	if va != vb {
		t.Error("same seed produced different random() streams")
	}
	if va == 0 {
		t.Error("random() returned zero (suspicious)")
	}
}

func TestSwitchRegRMW(t *testing.T) {
	prog := &Program{
		Name:         "rmw",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "kind", Width: 8}}}},
		Metadata:     []FieldDef{{Name: "old", Width: 32}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Registers: []*RegisterDef{
			{Name: "cnt", Width: 32, Entries: 2},
			{Name: "seen", Width: 32, Entries: 2},
			{Name: "hwm", Width: 32, Entries: 2},
		},
		Control: []Op{
			If(Eq(R(F("h", "kind")), C(0)),
				[]Op{RegRMW(F(MetaHeader, "old"), "cnt", C(0), RMWAdd, C(1))},
				[]Op{
					RegRMW(F(MetaHeader, "old"), "seen", C(0), RMWWrite, R(F("h", "kind"))),
					RegRMW(F(MetaHeader, "old"), "hwm", C(0), RMWMax, R(F("h", "kind"))),
				}),
			RegWrite("out", C(0), R(F(MetaHeader, "old"))),
			Forward(C(2)),
		},
	}
	prog.Registers = append(prog.Registers, &RegisterDef{Name: "out", Width: 32, Entries: 1})
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Two counter bumps.
	for i := 0; i < 2; i++ {
		if _, err := sw.Process(Packet{Data: []byte{0}, Port: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := sw.RegisterRead("cnt", 0); v != 2 {
		t.Errorf("cnt = %d, want 2", v)
	}
	if v, _ := sw.RegisterRead("out", 0); v != 1 {
		t.Errorf("old value after second bump = %d, want 1", v)
	}
	// Write-swap and max.
	if _, err := sw.Process(Packet{Data: []byte{7}, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Process(Packet{Data: []byte{3}, Port: 1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead("seen", 0); v != 3 {
		t.Errorf("seen = %d, want last-written 3", v)
	}
	if v, _ := sw.RegisterRead("hwm", 0); v != 7 {
		t.Errorf("hwm = %d, want max 7", v)
	}
}

func TestCompileRMWSingleAccessLegalOnTofino(t *testing.T) {
	prog := &Program{
		Name:      "rmwok",
		Metadata:  []FieldDef{{Name: "old", Width: 32}},
		Registers: []*RegisterDef{{Name: "seq", Width: 32, Entries: 1}},
		Control: []Op{
			RegRMW(F(MetaHeader, "old"), "seq", C(0), RMWAdd, C(1)),
		},
	}
	if _, err := Compile(prog, TofinoProfile()); err != nil {
		t.Fatalf("single RMW must be legal: %v", err)
	}
	// RMW plus another access to the same register is two accesses.
	prog.Control = append(prog.Control, RegWrite("seq", C(0), C(9)))
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("RMW + write to same register must violate once-per-pass")
	}
}

func TestEgressPipelinePerReplica(t *testing.T) {
	// Each multicast replica stamps its own egress port into the header —
	// the mechanism P4Auth uses to sign each probe copy with its own port
	// key.
	prog := &Program{
		Name:         "egress",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "port", Width: 16}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control:      []Op{Multicast(C(5))},
		EgressControl: []Op{
			Set(F("h", "port"), R(F(MetaHeader, MetaEgressPort))),
		},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	sw.SetMulticastGroup(5, []int{2, 3})
	res, err := sw.Process(Packet{Data: []byte{0, 0}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 2 {
		t.Fatalf("emissions = %+v", res.Emissions)
	}
	for _, e := range res.Emissions {
		got := uint64(e.Data[0])<<8 | uint64(e.Data[1])
		if got != uint64(e.Port) {
			t.Errorf("replica on port %d carries %d", e.Port, got)
		}
	}
}

func TestEgressDropSelective(t *testing.T) {
	prog := &Program{
		Name:         "egdrop",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "x", Width: 8}}}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Control:      []Op{Multicast(C(1))},
		EgressControl: []Op{
			If(Eq(R(F(MetaHeader, MetaEgressPort)), C(3)), []Op{Drop()}),
		},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	sw.SetMulticastGroup(1, []int{2, 3, 4})
	res, err := sw.Process(Packet{Data: []byte{1}, Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 2 {
		t.Fatalf("want port 3 replica dropped, got %+v", res.Emissions)
	}
	for _, e := range res.Emissions {
		if e.Port == 3 {
			t.Error("port 3 replica survived an egress drop")
		}
	}
	if sw.Counter("egress_dropped") != 1 {
		t.Error("egress_dropped counter not bumped")
	}
}

func TestCompileRejectsSharedIngressEgressRegister(t *testing.T) {
	prog := &Program{
		Name:      "shared",
		Metadata:  []FieldDef{{Name: "a", Width: 32}},
		Registers: []*RegisterDef{{Name: "st", Width: 32, Entries: 1}},
		Control:   []Op{RegRead(F(MetaHeader, "a"), "st", C(0))},
		EgressControl: []Op{
			RegWrite("st", C(0), C(1)),
		},
	}
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("register shared across ingress/egress must be rejected on hardware")
	}
	if _, err := Compile(prog, BMv2Profile()); err != nil {
		t.Fatalf("software target should allow it: %v", err)
	}
}

func TestCompileEgressStagesAccounted(t *testing.T) {
	prog := &Program{
		Name:     "eg",
		Metadata: []FieldDef{{Name: "a", Width: 32}},
		EgressControl: []Op{
			Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
			Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
		},
	}
	c, err := Compile(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	if c.Usage.EgressStages < 2 {
		t.Errorf("egress stages = %d, want >= 2", c.Usage.EgressStages)
	}
}

func TestSwitchDeleteEntry(t *testing.T) {
	sw := newTestSwitch(t, TofinoProfile())
	// Exact-table delete.
	if err := sw.DeleteEntry("ports", []KeyMatch{EKey(7)}); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Process(Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emissions) != 0 {
		t.Error("deleted exact entry still matched")
	}
	if err := sw.DeleteEntry("ports", []KeyMatch{EKey(7)}); err == nil {
		t.Error("double delete should error")
	}
	// LPM delete.
	if err := sw.DeleteEntry("routes", []KeyMatch{PKey(0x0A0A0000, 16)}); err != nil {
		t.Fatal(err)
	}
	res, err = sw.Process(Packet{Data: ethIPPacket(0x0A0A0001, 64), Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Falls back to the /8 route -> nhop 7, whose port entry is deleted.
	if len(res.Emissions) != 0 {
		t.Errorf("emissions = %+v", res.Emissions)
	}
	if err := sw.DeleteEntry("nosuch", nil); err == nil {
		t.Error("unknown table should error")
	}
	if err := sw.DeleteEntry("ports", []KeyMatch{EKey(1), EKey(2)}); err == nil {
		t.Error("key arity should error")
	}
}

func BenchmarkPipelineL3Forward(b *testing.B) {
	prog := testL3Program()
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.InsertEntry("routes", Entry{Key: []KeyMatch{PKey(0x0A000000, 8)}, Action: "set_nhop", Params: []uint64{7}}); err != nil {
		b.Fatal(err)
	}
	if err := sw.InsertEntry("ports", Entry{Key: []KeyMatch{EKey(7)}, Action: "to_port", Params: []uint64{3}}); err != nil {
		b.Fatal(err)
	}
	pkt := Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1}
	b.SetBytes(int64(len(pkt.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSwitchRegRMWXor(t *testing.T) {
	prog := &Program{
		Name:         "rmwxor",
		Headers:      []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "v", Width: 32}}}},
		Metadata:     []FieldDef{{Name: "old", Width: 32}},
		Parser:       []ParserState{{Name: ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Registers:    []*RegisterDef{{Name: "acc", Width: 32, Entries: 1}},
		Control: []Op{
			RegRMW(F(MetaHeader, "old"), "acc", C(0), RMWXor, R(F("h", "v"))),
			Forward(C(2)),
		},
	}
	sw, err := NewSwitch(prog, TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	send := func(v uint32) {
		t.Helper()
		def := &HeaderDef{Name: "h", Fields: []FieldDef{{Name: "v", Width: 32}}}
		d, _ := PackHeader(def, []uint64{uint64(v)})
		if _, err := sw.Process(Packet{Data: d, Port: 1}); err != nil {
			t.Fatal(err)
		}
	}
	send(0xAAAA)
	send(0x5555)
	if v, _ := sw.RegisterRead("acc", 0); v != 0xFFFF {
		t.Fatalf("acc = %#x, want 0xFFFF", v)
	}
	send(0xAAAA) // XOR-fold removes it again
	if v, _ := sw.RegisterRead("acc", 0); v != 0x5555 {
		t.Fatalf("acc = %#x, want 0x5555", v)
	}
}
