package pisa

import (
	"fmt"
	"strings"
)

// FieldDef declares one field of a header or metadata block. Widths up to
// 64 bits are supported; the compiler charges fields wider than the
// target's ALU width as multiple ALU/PHV containers.
type FieldDef struct {
	Name  string
	Width int // bits, 1..64
}

// HeaderDef declares a packet header: an ordered list of fields packed
// MSB-first on the wire. The total width must be a whole number of bytes.
type HeaderDef struct {
	Name   string
	Fields []FieldDef
}

// Bits returns the total header width in bits.
func (h *HeaderDef) Bits() int {
	total := 0
	for _, f := range h.Fields {
		total += f.Width
	}
	return total
}

// Bytes returns the header length in bytes.
func (h *HeaderDef) Bytes() int { return h.Bits() / 8 }

func (h *HeaderDef) validate() error {
	if h.Name == "" {
		return fmt.Errorf("pisa: header with empty name")
	}
	seen := make(map[string]bool, len(h.Fields))
	for _, f := range h.Fields {
		if f.Width < 1 || f.Width > 64 {
			return fmt.Errorf("pisa: header %s field %s: width %d out of range [1,64]", h.Name, f.Name, f.Width)
		}
		if seen[f.Name] {
			return fmt.Errorf("pisa: header %s: duplicate field %s", h.Name, f.Name)
		}
		seen[f.Name] = true
	}
	if h.Bits()%8 != 0 {
		return fmt.Errorf("pisa: header %s: total width %d bits is not byte-aligned", h.Name, h.Bits())
	}
	return nil
}

// FieldRef names a field as "header.field" ("meta.field" for metadata).
// References are resolved to dense slots at compile time.
type FieldRef string

// F builds a FieldRef from a header and field name.
func F(header, field string) FieldRef {
	return FieldRef(header + "." + field)
}

func (r FieldRef) split() (header, field string, err error) {
	i := strings.IndexByte(string(r), '.')
	if i <= 0 || i == len(r)-1 {
		return "", "", fmt.Errorf("pisa: malformed field reference %q (want header.field)", string(r))
	}
	return string(r[:i]), string(r[i+1:]), nil
}

// MetaHeader is the reserved name of the per-packet metadata block. The
// standard intrinsic fields below always exist.
const MetaHeader = "meta"

// Intrinsic metadata fields present in every program.
const (
	MetaIngressPort = "ingress_port" // port the packet arrived on
	MetaEgressPort  = "egress_port"  // chosen output port
	MetaDrop        = "drop"         // 1 = drop at deparse
	MetaToCPU       = "to_cpu"       // 1 = emit on the CPU port (PacketIn)
	MetaRecirc      = "recirc"       // 1 = recirculate for another pass
	MetaMcastGroup  = "mcast_group"  // nonzero = replicate to group ports
	MetaPass        = "pass"         // recirculation pass counter (read-only)
	MetaTimestamp   = "timestamp"    // ingress timestamp (ns), from SetNow
	MetaPktLen      = "pkt_len"      // packet length in bytes
)

func intrinsicMetadata() []FieldDef {
	return []FieldDef{
		{Name: MetaIngressPort, Width: 16},
		{Name: MetaEgressPort, Width: 16},
		{Name: MetaDrop, Width: 1},
		{Name: MetaToCPU, Width: 1},
		{Name: MetaRecirc, Width: 1},
		{Name: MetaMcastGroup, Width: 16},
		{Name: MetaPass, Width: 8},
		{Name: MetaTimestamp, Width: 48},
		{Name: MetaPktLen, Width: 16},
	}
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}
