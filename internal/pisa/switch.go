package pisa

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"p4auth/internal/crypto"
)

// CPUPort is the reserved port number for controller PacketIn/PacketOut
// traffic.
const CPUPort = 0xFFFD

// Emission is one packet leaving the switch.
type Emission struct {
	Port int
	Data []byte
}

// Result summarizes processing of one packet.
type Result struct {
	Emissions []Emission
	Passes    int
	// Cost is the modeled data-plane latency for this packet.
	Cost time.Duration
}

// Switch is a running data plane: a compiled program plus runtime state
// (table entries, register values, multicast groups). All methods are safe
// for concurrent use; packets are processed one at a time, as on a single
// pipe.
type Switch struct {
	mu       sync.Mutex
	compiled *Compiled
	rng      crypto.RandomSource

	tables   []*tableState
	regs     [][]uint64
	mcast    map[uint64][]int
	counters map[string]uint64

	crcIEEE   *crc32.Table
	crcCast   *crc32.Table
	keyedIEEE crypto.KeyedCRC32
	keyedCast crypto.KeyedCRC32
	halfsip   crypto.HalfSipHash
	scratch   []byte
	now       uint64
}

// SetNow sets the ingress timestamp (nanoseconds) stamped into
// MetaTimestamp for subsequent packets. Simulation adapters call this with
// the virtual clock before each Process.
func (s *Switch) SetNow(ns uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = ns
}

// Option configures a Switch.
type Option func(*Switch)

// WithRandom sets the random source backing the P4 random() extern.
func WithRandom(r crypto.RandomSource) Option {
	return func(s *Switch) { s.rng = r }
}

// NewSwitch compiles the program for the profile and instantiates runtime
// state.
func NewSwitch(prog *Program, profile Profile, opts ...Option) (*Switch, error) {
	compiled, err := Compile(prog, profile)
	if err != nil {
		return nil, fmt.Errorf("pisa: compile %s for %s: %w", prog.Name, profile.Name, err)
	}
	return NewSwitchFromCompiled(compiled, opts...), nil
}

// NewSwitchFromCompiled instantiates runtime state for an already-compiled
// program (several switches can share one compilation).
func NewSwitchFromCompiled(compiled *Compiled, opts ...Option) *Switch {
	s := &Switch{
		compiled:  compiled,
		rng:       crypto.NewSeededRand(0x9a4aadd),
		mcast:     make(map[uint64][]int),
		counters:  make(map[string]uint64),
		crcIEEE:   crc32.MakeTable(crc32.IEEE),
		crcCast:   crc32.MakeTable(crc32.Castagnoli),
		keyedIEEE: crypto.NewKeyedCRC32(),
		keyedCast: crypto.NewKeyedCRC32Castagnoli(),
		halfsip:   crypto.NewHalfSipHash24(),
	}
	for _, t := range compiled.Program.Tables {
		s.tables = append(s.tables, newTableState(t))
	}
	for _, r := range compiled.Program.Registers {
		s.regs = append(s.regs, make([]uint64, r.Entries))
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Compiled exposes the compilation (resource report, profile).
func (s *Switch) Compiled() *Compiled { return s.compiled }

// --- driver-level runtime API (the attackable switch-software surface) ---

// InsertEntry installs a table entry.
func (s *Switch) InsertEntry(table string, e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	return s.tables[ti].insert(e)
}

// DeleteEntry removes the entry with the exact key from a table.
func (s *Switch) DeleteEntry(table string, key []KeyMatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	return s.tables[ti].remove(key)
}

// ClearTable removes all entries from a table.
func (s *Switch) ClearTable(table string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	s.tables[ti].clear()
	return nil
}

// RegisterRead reads a register entry directly (the driver path).
func (s *Switch) RegisterRead(name string, index int) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ri, ok := s.compiled.regIndex[name]
	if !ok {
		return 0, fmt.Errorf("pisa: unknown register %q", name)
	}
	if index < 0 || index >= len(s.regs[ri]) {
		return 0, fmt.Errorf("pisa: register %s index %d out of range [0,%d)", name, index, len(s.regs[ri]))
	}
	return s.regs[ri][index], nil
}

// RegisterWrite writes a register entry directly (the driver path).
func (s *Switch) RegisterWrite(name string, index int, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ri, ok := s.compiled.regIndex[name]
	if !ok {
		return fmt.Errorf("pisa: unknown register %q", name)
	}
	if index < 0 || index >= len(s.regs[ri]) {
		return fmt.Errorf("pisa: register %s index %d out of range [0,%d)", name, index, len(s.regs[ri]))
	}
	def := s.compiled.Program.Registers[ri]
	s.regs[ri][index] = v & mask(def.Width)
	return nil
}

// SetMulticastGroup configures the ports of a multicast group.
func (s *Switch) SetMulticastGroup(group uint64, ports []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mcast[group] = append([]int(nil), ports...)
}

// Counter returns a named diagnostic counter.
func (s *Switch) Counter(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

func (s *Switch) bump(name string) { s.counters[name]++ }

// --- packet processing ---

type execState struct {
	phv     []uint64
	valid   []bool
	payload []byte
	passes  int
}

// Process runs one packet through the pipeline and returns its emissions
// and modeled cost.
func (s *Switch) Process(pkt Packet) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	st := &execState{
		phv:   make([]uint64, len(s.compiled.slotWidth)),
		valid: make([]bool, len(s.compiled.Program.Headers)),
	}
	if err := s.parse(st, pkt.Data); err != nil {
		s.bump("parse_error")
		return Result{}, err
	}
	s.setMeta(st, MetaIngressPort, uint64(pkt.Port))
	s.setMeta(st, MetaTimestamp, s.now)
	s.setMeta(st, MetaPktLen, uint64(len(pkt.Data)))

	maxPasses := s.compiled.Profile.MaxPasses
	for pass := 0; ; pass++ {
		st.passes = pass + 1
		s.setMeta(st, MetaPass, uint64(pass))
		s.setMeta(st, MetaRecirc, 0)
		if err := s.runOps(st, s.compiled.Program.Control, nil); err != nil {
			return Result{}, err
		}
		if s.getMeta(st, MetaRecirc) == 0 {
			break
		}
		if pass+1 >= maxPasses {
			s.bump("recirc_overflow")
			s.setMeta(st, MetaDrop, 1)
			break
		}
	}

	stages := s.compiled.StagesPerPass() + s.compiled.Usage.EgressStages
	res := Result{
		Passes: st.passes,
		Cost:   s.compiled.Profile.PacketCost(stages, st.passes, len(st.payload)),
	}
	if s.getMeta(st, MetaDrop) != 0 {
		s.bump("dropped")
		return res, nil
	}

	// Replication: copy-to-CPU plus multicast group or unicast port.
	var dests []int
	if s.getMeta(st, MetaToCPU) != 0 {
		dests = append(dests, CPUPort)
	}
	switch {
	case s.getMeta(st, MetaMcastGroup) != 0:
		dests = append(dests, s.mcast[s.getMeta(st, MetaMcastGroup)]...)
	case s.getMeta(st, MetaEgressPort) != 0:
		// Ports are 1-based; 0 means "no unicast decision".
		dests = append(dests, int(s.getMeta(st, MetaEgressPort)))
	default:
		if len(dests) == 0 {
			s.bump("no_egress")
		}
	}

	// Egress pipeline per replica.
	for _, port := range dests {
		est := st
		if len(dests) > 1 || len(s.compiled.Program.EgressControl) > 0 {
			cp := &execState{
				phv:     append([]uint64(nil), st.phv...),
				valid:   append([]bool(nil), st.valid...),
				payload: st.payload,
			}
			est = cp
		}
		s.setMeta(est, MetaEgressPort, uint64(port)&mask(16))
		if len(s.compiled.Program.EgressControl) > 0 {
			if err := s.runOps(est, s.compiled.Program.EgressControl, nil); err != nil {
				return Result{}, fmt.Errorf("egress: %w", err)
			}
			if s.getMeta(est, MetaDrop) != 0 {
				s.bump("egress_dropped")
				continue
			}
		}
		res.Emissions = append(res.Emissions, Emission{Port: port, Data: s.deparse(est)})
	}
	return res, nil
}

func (s *Switch) metaSlot(name string) int {
	return s.compiled.slots[F(MetaHeader, name)]
}

func (s *Switch) setMeta(st *execState, name string, v uint64) {
	slot := s.metaSlot(name)
	st.phv[slot] = v & mask(s.compiled.slotWidth[slot])
}

func (s *Switch) getMeta(st *execState, name string) uint64 {
	return st.phv[s.metaSlot(name)]
}

func (s *Switch) parse(st *execState, data []byte) error {
	prog := s.compiled.Program
	if len(prog.Parser) == 0 {
		st.payload = append([]byte(nil), data...)
		return nil
	}
	rest := data
	stateName := ParserStart
	for steps := 0; ; steps++ {
		if steps > 64 {
			return fmt.Errorf("pisa: parser exceeded 64 states (loop?)")
		}
		si, ok := s.compiled.parserIndex[stateName]
		if !ok {
			return fmt.Errorf("pisa: parser transitioned to unknown state %q", stateName)
		}
		state := prog.Parser[si]
		if state.Extract != "" {
			hi := s.compiled.headerIndex[state.Extract]
			def := prog.Headers[hi]
			vals, err := UnpackHeader(def, rest)
			if err != nil {
				return err
			}
			for fi, slot := range s.compiled.headerSlots[hi] {
				st.phv[slot] = vals[fi]
			}
			st.valid[hi] = true
			rest = rest[def.Bytes():]
		}
		next := state.Default
		if state.Select != "" {
			slot := s.compiled.slots[state.Select]
			if n, ok := state.Transitions[st.phv[slot]]; ok {
				next = n
			}
		}
		if next == "" {
			break
		}
		stateName = next
	}
	st.payload = append([]byte(nil), rest...)
	return nil
}

func (s *Switch) deparse(st *execState) []byte {
	prog := s.compiled.Program
	var out []byte
	for _, name := range prog.DeparseOrder {
		hi := s.compiled.headerIndex[name]
		if !st.valid[hi] {
			continue
		}
		def := prog.Headers[hi]
		vals := make([]uint64, len(def.Fields))
		for fi, slot := range s.compiled.headerSlots[hi] {
			vals[fi] = st.phv[slot]
		}
		b, err := PackHeader(def, vals)
		if err != nil {
			// Unreachable: values are width-masked and defs validated.
			panic(fmt.Sprintf("pisa: deparse %s: %v", name, err))
		}
		out = append(out, b...)
	}
	return append(out, st.payload...)
}

type execFrame struct {
	params []uint64
}

// evalOperandIn resolves operands that may reference action parameters.
func (s *Switch) evalOperandIn(st *execState, o Operand, act *Action, frame *execFrame) (uint64, error) {
	if o.IsConst {
		return o.Const, nil
	}
	slot, pidx, _, err := s.compiled.lookupRef(o.Ref, act)
	if err != nil {
		return 0, err
	}
	if pidx >= 0 {
		if frame == nil || pidx >= len(frame.params) {
			return 0, fmt.Errorf("pisa: parameter %s unbound", o.Ref)
		}
		return frame.params[pidx], nil
	}
	return st.phv[slot], nil
}

func rotl(v uint64, n uint64, width int) uint64 {
	n %= uint64(width)
	m := mask(width)
	v &= m
	return ((v << n) | (v >> (uint64(width) - n))) & m
}

func (s *Switch) runOps(st *execState, ops []Op, actFrame *opContext) error {
	var act *Action
	var frame *execFrame
	if actFrame != nil {
		act, frame = actFrame.act, actFrame.frame
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpSet, OpAdd, OpSub, OpXor, OpAnd, OpOr, OpShl, OpShr, OpRotl:
			a, err := s.evalOperandIn(st, op.A, act, frame)
			if err != nil {
				return err
			}
			var b uint64
			if op.Kind != OpSet {
				if b, err = s.evalOperandIn(st, op.B, act, frame); err != nil {
					return err
				}
			}
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			var v uint64
			switch op.Kind {
			case OpSet:
				v = a
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpXor:
				v = a ^ b
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpShl:
				if b >= 64 {
					v = 0
				} else {
					v = a << b
				}
			case OpShr:
				if b >= 64 {
					v = 0
				} else {
					v = a >> b
				}
			case OpRotl:
				v = rotl(a, b, w)
			}
			st.phv[slot] = v & mask(w)
		case OpHash:
			v, err := s.execHash(st, op, act, frame)
			if err != nil {
				return err
			}
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			st.phv[slot] = uint64(v) & mask(w)
		case OpRegRead, OpRegWrite, OpRegRMW:
			ri := s.compiled.regIndex[op.Reg]
			def := s.compiled.Program.Registers[ri]
			idx, err := s.evalOperandIn(st, op.Index, act, frame)
			if err != nil {
				return err
			}
			if idx >= uint64(def.Entries) {
				s.bump("reg_index_wrap")
				idx %= uint64(def.Entries)
			}
			switch op.Kind {
			case OpRegRead:
				slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
				if err != nil {
					return err
				}
				st.phv[slot] = s.regs[ri][idx] & mask(w)
			case OpRegWrite:
				v, err := s.evalOperandIn(st, op.A, act, frame)
				if err != nil {
					return err
				}
				s.regs[ri][idx] = v & mask(def.Width)
			case OpRegRMW:
				a, err := s.evalOperandIn(st, op.A, act, frame)
				if err != nil {
					return err
				}
				old := s.regs[ri][idx]
				var next uint64
				switch op.RMW {
				case RMWAdd:
					next = old + a
				case RMWWrite:
					next = a
				case RMWMax:
					next = old
					if a > old {
						next = a
					}
				case RMWXor:
					next = old ^ a
				}
				s.regs[ri][idx] = next & mask(def.Width)
				slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
				if err != nil {
					return err
				}
				st.phv[slot] = old & mask(w)
			}
		case OpRandom:
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			st.phv[slot] = s.rng.Uint64() & mask(w)
		case OpSetValid:
			hi := s.compiled.headerIndex[op.Header]
			if !st.valid[hi] {
				st.valid[hi] = true
				for _, slot := range s.compiled.headerSlots[hi] {
					st.phv[slot] = 0
				}
			}
		case OpSetInvalid:
			st.valid[s.compiled.headerIndex[op.Header]] = false
		case OpApply:
			if err := s.applyTable(st, op.Table); err != nil {
				return err
			}
		case OpIf:
			take, err := s.evalCond(st, op.Cond, act, frame)
			if err != nil {
				return err
			}
			branch := op.Then
			if !take {
				branch = op.Else
			}
			if err := s.runOps(st, branch, actFrame); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pisa: runtime: unknown op kind %d", int(op.Kind))
		}
	}
	return nil
}

type opContext struct {
	act   *Action
	frame *execFrame
}

func (s *Switch) evalCond(st *execState, cond Cond, act *Action, frame *execFrame) (bool, error) {
	if cond.ValidHeader != "" {
		v := st.valid[s.compiled.headerIndex[cond.ValidHeader]]
		if cond.Negate {
			v = !v
		}
		return v, nil
	}
	l, err := s.evalOperandIn(st, cond.L, act, frame)
	if err != nil {
		return false, err
	}
	r, err := s.evalOperandIn(st, cond.R, act, frame)
	if err != nil {
		return false, err
	}
	var res bool
	switch cond.Cmp {
	case CmpEq:
		res = l == r
	case CmpNe:
		res = l != r
	case CmpLt:
		res = l < r
	case CmpLe:
		res = l <= r
	case CmpGt:
		res = l > r
	case CmpGe:
		res = l >= r
	}
	if cond.Negate {
		res = !res
	}
	return res, nil
}

func (s *Switch) execHash(st *execState, op *Op, act *Action, frame *execFrame) (uint32, error) {
	// Serialize inputs MSB-first at declared widths, then payload.
	totalBits := 0
	vals := make([]uint64, len(op.Inputs))
	widths := make([]int, len(op.Inputs))
	for i, in := range op.Inputs {
		v, err := s.evalOperandIn(st, in, act, frame)
		if err != nil {
			return 0, err
		}
		w := 64
		if !in.IsConst {
			_, _, fw, _ := s.compiled.lookupRef(in.Ref, act)
			w = fw
		}
		vals[i], widths[i] = v, w
		totalBits += w
	}
	nbytes := (totalBits + 7) / 8
	if cap(s.scratch) < nbytes {
		s.scratch = make([]byte, nbytes)
	}
	buf := s.scratch[:nbytes]
	for i := range buf {
		buf[i] = 0
	}
	off := 0
	for i := range vals {
		off = packBits(buf, off, vals[i]&mask(widths[i]), widths[i])
	}
	data := buf
	if op.IncludePayload {
		data = append(append([]byte{}, buf...), st.payload...)
	}

	var key uint64
	if op.Key != nil {
		k, err := s.evalOperandIn(st, *op.Key, act, frame)
		if err != nil {
			return 0, err
		}
		key = k
	}

	switch op.Alg {
	case HashCRC32:
		if op.Key != nil {
			return s.keyedIEEE.Sum32(key, data), nil
		}
		return crc32.Checksum(data, s.crcIEEE), nil
	case HashCRC32C:
		if op.Key != nil {
			return s.keyedCast.Sum32(key, data), nil
		}
		return crc32.Checksum(data, s.crcCast), nil
	case HashIdentity:
		var v uint32
		for _, b := range data {
			v = v<<8 | uint32(b)
		}
		return v, nil
	case HashHalfSipHash:
		return s.halfsip.Sum32(key, data), nil
	default:
		return 0, fmt.Errorf("pisa: runtime: unknown hash alg %d", int(op.Alg))
	}
}

func (s *Switch) applyTable(st *execState, name string) error {
	ti := s.compiled.tableIndex[name]
	ts := s.tables[ti]
	def := ts.def
	vals := make([]uint64, len(def.Keys))
	widths := make([]int, len(def.Keys))
	for i, k := range def.Keys {
		slot, _, w, err := s.compiled.lookupRef(k.Field, nil)
		if err != nil {
			return err
		}
		vals[i], widths[i] = st.phv[slot], w
	}
	entry := ts.lookup(vals, widths)
	actionName := def.Default
	var params []uint64
	if entry != nil {
		actionName, params = entry.Action, entry.Params
	} else if actionName != "" {
		params = def.DefaultParams
	}
	if actionName == "" {
		return nil // miss with no default: no-op
	}
	a := s.compiled.Program.Action(actionName)
	if a == nil {
		return fmt.Errorf("pisa: table %s: entry references unknown action %q", name, actionName)
	}
	if len(params) != len(a.Params) {
		return fmt.Errorf("pisa: table %s action %s: %d params bound, want %d", name, actionName, len(params), len(a.Params))
	}
	return s.runOps(st, a.Body, &opContext{act: a, frame: &execFrame{params: params}})
}
