package pisa

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p4auth/internal/crypto"
	"p4auth/internal/obs"
)

// CPUPort is the reserved port number for controller PacketIn/PacketOut
// traffic.
const CPUPort = 0xFFFD

// Emission is one packet leaving the switch.
type Emission struct {
	Port int
	Data []byte
}

// Result summarizes processing of one packet.
//
// A Result passed to ProcessInto is reusable: emission buffers are
// recycled across calls, so Emission.Data is valid only until the next
// ProcessInto on the same Result. Results returned by Process own their
// buffers.
type Result struct {
	Emissions []Emission
	Passes    int
	// Cost is the modeled data-plane latency for this packet.
	Cost time.Duration

	// bufs is the per-emission buffer arena recycled across ProcessInto
	// calls on the same Result.
	bufs [][]byte
}

// Switch is a running data plane: a compiled program plus runtime state
// (table entries, register values, multicast groups). All methods are safe
// for concurrent use. State is sharded so concurrent Process calls
// overlap: table/multicast mutations take a write lock that packet
// processing reads, register banks have per-register locks (register
// read-modify-writes — the replay-floor RMWMax — stay atomic), diagnostic
// counters are lock-free sharded atomics, and each in-flight packet draws
// randomness from its own execution state's source.
type Switch struct {
	compiled *Compiled

	// stateMu guards tables and mcast: Process holds the read side, the
	// driver mutation API the write side.
	stateMu sync.RWMutex
	tables  []*tableState
	mcast   map[uint64][]int

	// regMu[i] guards regs[i]; RMW sequences hold the lock across
	// read-modify-write so data-plane atomics keep their semantics.
	regMu []sync.Mutex
	regs  [][]uint64

	// shards are the diagnostic-counter cells: each ingress lane bumps its
	// own cache-line-padded shard, reads aggregate across all of them.
	shards [counterShardCount]counterShard
	// mirror, when set, shadows the diagnostic counters into an obs
	// registry, indexed by counter ID (see MirrorCounters).
	mirror atomic.Pointer[[numDPCounters]*obs.Counter]

	// rng is the base random source backing the P4 random() extern. The
	// serial path draws from it directly (in packet order); worker lanes
	// draw from deterministic per-lane forks (see parallel.go).
	rng crypto.RandomSource

	crcIEEE   *crc32.Table
	crcCast   *crc32.Table
	keyedIEEE crypto.KeyedCRC32
	keyedCast crypto.KeyedCRC32
	halfsip   crypto.HalfSipHash

	now atomic.Uint64

	// execPool recycles per-packet execution state (PHV, header validity,
	// hash/table scratch) so steady-state Process does not allocate.
	execPool sync.Pool

	// workers/pool: the per-port ingress worker pool behind ProcessBatch
	// (parallel.go). workers <= 1 means the strictly serial data plane.
	workers int
	pool    *workerPool
}

// SetNow sets the ingress timestamp (nanoseconds) stamped into
// MetaTimestamp for subsequent packets. Simulation adapters call this with
// the virtual clock before each Process.
func (s *Switch) SetNow(ns uint64) { s.now.Store(ns) }

// Option configures a Switch.
type Option func(*Switch)

// WithRandom sets the random source backing the P4 random() extern.
func WithRandom(r crypto.RandomSource) Option {
	return func(s *Switch) { s.rng = r }
}

// WithWorkers sets the ingress worker count used by ProcessBatch. n <= 1
// (the default) keeps the switch strictly serial: every packet runs on
// the caller's goroutine in submission order, bit-identical to the
// pre-parallel data plane. n > 1 spawns n persistent ingress workers;
// ProcessBatch assigns packets to lanes by ingress port (port-affinity),
// so per-port replay floors still observe strictly ascending sequence
// numbers. Call Close when done with a worker-backed switch.
func WithWorkers(n int) Option {
	return func(s *Switch) { s.workers = n }
}

// NewSwitch compiles the program for the profile and instantiates runtime
// state.
func NewSwitch(prog *Program, profile Profile, opts ...Option) (*Switch, error) {
	compiled, err := Compile(prog, profile)
	if err != nil {
		return nil, fmt.Errorf("pisa: compile %s for %s: %w", prog.Name, profile.Name, err)
	}
	return NewSwitchFromCompiled(compiled, opts...), nil
}

// NewSwitchFromCompiled instantiates runtime state for an already-compiled
// program (several switches can share one compilation).
func NewSwitchFromCompiled(compiled *Compiled, opts ...Option) *Switch {
	s := &Switch{
		compiled:  compiled,
		rng:       crypto.NewSeededRand(0x9a4aadd),
		mcast:     make(map[uint64][]int),
		crcIEEE:   crypto.IEEETable(),
		crcCast:   crypto.CastagnoliTable(),
		keyedIEEE: crypto.NewKeyedCRC32(),
		keyedCast: crypto.NewKeyedCRC32Castagnoli(),
		halfsip:   crypto.NewHalfSipHash24(),
	}
	for _, t := range compiled.Program.Tables {
		s.tables = append(s.tables, newTableState(t))
	}
	for _, r := range compiled.Program.Registers {
		s.regs = append(s.regs, make([]uint64, r.Entries))
	}
	s.regMu = make([]sync.Mutex, len(s.regs))
	s.execPool.New = func() any {
		return &execState{
			phv:   make([]uint64, len(compiled.slotWidth)),
			valid: make([]bool, len(compiled.Program.Headers)),
		}
	}
	for _, o := range opts {
		o(s)
	}
	if s.workers > 1 {
		s.pool = newWorkerPool(s)
	}
	return s
}

// Compiled exposes the compilation (resource report, profile).
func (s *Switch) Compiled() *Compiled { return s.compiled }

// --- driver-level runtime API (the attackable switch-software surface) ---

// InsertEntry installs a table entry.
func (s *Switch) InsertEntry(table string, e Entry) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	return s.tables[ti].insert(e)
}

// DeleteEntry removes the entry with the exact key from a table.
func (s *Switch) DeleteEntry(table string, key []KeyMatch) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	return s.tables[ti].remove(key)
}

// ClearTable removes all entries from a table.
func (s *Switch) ClearTable(table string) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	ti, ok := s.compiled.tableIndex[table]
	if !ok {
		return fmt.Errorf("pisa: unknown table %q", table)
	}
	s.tables[ti].clear()
	return nil
}

// RegisterRead reads a register entry directly (the driver path).
func (s *Switch) RegisterRead(name string, index int) (uint64, error) {
	ri, ok := s.compiled.regIndex[name]
	if !ok {
		return 0, fmt.Errorf("pisa: unknown register %q", name)
	}
	if index < 0 || index >= len(s.regs[ri]) {
		return 0, fmt.Errorf("pisa: register %s index %d out of range [0,%d)", name, index, len(s.regs[ri]))
	}
	s.regMu[ri].Lock()
	v := s.regs[ri][index]
	s.regMu[ri].Unlock()
	return v, nil
}

// RegisterWrite writes a register entry directly (the driver path).
func (s *Switch) RegisterWrite(name string, index int, v uint64) error {
	ri, ok := s.compiled.regIndex[name]
	if !ok {
		return fmt.Errorf("pisa: unknown register %q", name)
	}
	if index < 0 || index >= len(s.regs[ri]) {
		return fmt.Errorf("pisa: register %s index %d out of range [0,%d)", name, index, len(s.regs[ri]))
	}
	def := s.compiled.Program.Registers[ri]
	s.regMu[ri].Lock()
	s.regs[ri][index] = v & mask(def.Width)
	s.regMu[ri].Unlock()
	return nil
}

// SetMulticastGroup configures the ports of a multicast group.
func (s *Switch) SetMulticastGroup(group uint64, ports []int) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.mcast[group] = append([]int(nil), ports...)
}

// Diagnostic counter IDs. The set is closed (the interpreter is the only
// writer), which is what lets the hot path drop the name map and lock for
// a fixed array of atomic cells.
const (
	cntParseError = iota
	cntRecircOverflow
	cntDropped
	cntNoEgress
	cntEgressDropped
	cntRegIndexWrap
	numDPCounters
)

// dpCounterNames maps counter IDs to their stable external names.
var dpCounterNames = [numDPCounters]string{
	cntParseError:     "parse_error",
	cntRecircOverflow: "recirc_overflow",
	cntDropped:        "dropped",
	cntNoEgress:       "no_egress",
	cntEgressDropped:  "egress_dropped",
	cntRegIndexWrap:   "reg_index_wrap",
}

// counterShardCount is the number of independent counter shards; ingress
// lane L bumps shard L % counterShardCount. Power of two, sized past any
// realistic worker count.
const counterShardCount = 8

// counterShard is one lane's counter cells, padded so shards bumped by
// different workers never share a cache line.
type counterShard struct {
	cells [numDPCounters]atomic.Uint64
	_     [128 - (numDPCounters*8)%128]byte
}

// counterByID sums one counter across all shards.
func (s *Switch) counterByID(id int) uint64 {
	var total uint64
	for i := range s.shards {
		total += s.shards[i].cells[id].Load()
	}
	return total
}

// Counter returns a named diagnostic counter (0 for unknown names),
// aggregated across all ingress lanes.
func (s *Switch) Counter(name string) uint64 {
	for id, n := range dpCounterNames {
		if n == name {
			return s.counterByID(id)
		}
	}
	return 0
}

// CounterValue is one named diagnostic counter reading.
type CounterValue struct {
	Name  string
	Value uint64
}

// counterSnapshotOrder lists counter IDs in lexicographic name order, so
// snapshots are deterministic without sorting per call.
var counterSnapshotOrder = func() [numDPCounters]int {
	var order [numDPCounters]int
	for i := range order {
		order[i] = i
	}
	sort.Slice(order[:], func(a, b int) bool {
		return dpCounterNames[order[a]] < dpCounterNames[order[b]]
	})
	return order
}()

// CounterSnapshot returns every diagnostic counter, aggregated across
// shards, in deterministic (lexicographic name) order. Each counter is
// read atomically; the snapshot as a whole is not a single atomic cut
// under concurrent traffic.
func (s *Switch) CounterSnapshot() []CounterValue {
	out := make([]CounterValue, 0, numDPCounters)
	for _, id := range counterSnapshotOrder {
		out = append(out, CounterValue{Name: dpCounterNames[id], Value: s.counterByID(id)})
	}
	return out
}

// MirrorCounters mirrors the switch's diagnostic counters into an obs
// registry under the given prefix (e.g. "dp.s1."). The mirror reads
// through the same sharded cells as Counter: counts accumulated before
// the mirror was installed are folded in here, so the obs view equals the
// switch's own from the moment of installation, and bump's hot path pays
// one atomic pointer load plus an indexed increment.
func (s *Switch) MirrorCounters(reg *obs.Registry, prefix string) {
	var arr [numDPCounters]*obs.Counter
	for id, name := range dpCounterNames {
		c := reg.Counter(prefix + name)
		if cur := s.counterByID(id); cur > c.Load() {
			c.Add(cur - c.Load())
		}
		arr[id] = c
	}
	s.mirror.Store(&arr)
}

func (s *Switch) bump(st *execState, id int) {
	s.shards[st.shard%counterShardCount].cells[id].Add(1)
	if mp := s.mirror.Load(); mp != nil {
		mp[id].Inc()
	}
}

// --- packet processing ---

type execState struct {
	phv     []uint64
	valid   []bool
	payload []byte
	passes  int

	// rng is the random source the random() extern draws from for this
	// packet: the switch's base source on the serial path (preserving the
	// exact pre-parallel draw order), a per-lane fork under workers.
	rng crypto.RandomSource
	// shard selects the counter shard this packet's bumps land in.
	shard uint32

	// Reusable scratch, pooled with the state.
	hashVals   []uint64
	hashWidths []int
	hashBuf    []byte
	hashData   []byte
	keyVals    []uint64
	keyWidths  []int
	keyBuf     []byte
	dests      []int
}

func (s *Switch) getExec() *execState {
	st := s.execPool.Get().(*execState)
	for i := range st.phv {
		st.phv[i] = 0
	}
	for i := range st.valid {
		st.valid[i] = false
	}
	st.payload = st.payload[:0]
	st.passes = 0
	st.dests = st.dests[:0]
	return st
}

func (s *Switch) putExec(st *execState) { s.execPool.Put(st) }

// Process runs one packet through the pipeline and returns its emissions
// and modeled cost. The returned Result owns its buffers.
func (s *Switch) Process(pkt Packet) (Result, error) {
	var res Result
	err := s.ProcessInto(pkt, &res)
	return res, err
}

// ProcessInto runs one packet through the pipeline, writing emissions and
// cost into res. Emission buffers in res are recycled: they are valid only
// until the next ProcessInto on the same Result. On error the contents of
// res are undefined.
func (s *Switch) ProcessInto(pkt Packet, res *Result) error {
	return s.processInto(pkt, res, s.rng, 0)
}

// processInto is ProcessInto with the packet's random source and counter
// shard chosen by the caller: the serial path passes the switch's base
// source and shard 0, worker lanes pass their deterministic fork and lane
// shard.
func (s *Switch) processInto(pkt Packet, res *Result, rng crypto.RandomSource, shard uint32) error {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()

	st := s.getExec()
	defer s.putExec(st)
	st.rng, st.shard = rng, shard

	res.Emissions = res.Emissions[:0]
	res.Passes = 0
	res.Cost = 0

	if err := s.parse(st, pkt.Data); err != nil {
		s.bump(st, cntParseError)
		return err
	}
	s.setMeta(st, MetaIngressPort, uint64(pkt.Port))
	s.setMeta(st, MetaTimestamp, s.now.Load())
	s.setMeta(st, MetaPktLen, uint64(len(pkt.Data)))

	maxPasses := s.compiled.Profile.MaxPasses
	for pass := 0; ; pass++ {
		st.passes = pass + 1
		s.setMeta(st, MetaPass, uint64(pass))
		s.setMeta(st, MetaRecirc, 0)
		if err := s.runOps(st, s.compiled.Program.Control, nil); err != nil {
			return err
		}
		if s.getMeta(st, MetaRecirc) == 0 {
			break
		}
		if pass+1 >= maxPasses {
			s.bump(st, cntRecircOverflow)
			s.setMeta(st, MetaDrop, 1)
			break
		}
	}

	stages := s.compiled.StagesPerPass() + s.compiled.Usage.EgressStages
	res.Passes = st.passes
	res.Cost = s.compiled.Profile.PacketCost(stages, st.passes, len(st.payload))
	if s.getMeta(st, MetaDrop) != 0 {
		s.bump(st, cntDropped)
		return nil
	}

	// Replication: copy-to-CPU plus multicast group or unicast port.
	dests := st.dests
	if s.getMeta(st, MetaToCPU) != 0 {
		dests = append(dests, CPUPort)
	}
	switch {
	case s.getMeta(st, MetaMcastGroup) != 0:
		dests = append(dests, s.mcast[s.getMeta(st, MetaMcastGroup)]...)
	case s.getMeta(st, MetaEgressPort) != 0:
		// Ports are 1-based; 0 means "no unicast decision".
		dests = append(dests, int(s.getMeta(st, MetaEgressPort)))
	default:
		if len(dests) == 0 {
			s.bump(st, cntNoEgress)
		}
	}
	st.dests = dests

	// Egress pipeline per replica.
	for _, port := range dests {
		est := st
		if len(dests) > 1 || len(s.compiled.Program.EgressControl) > 0 {
			cp := s.getExec()
			copy(cp.phv, st.phv)
			copy(cp.valid, st.valid)
			cp.payload = append(cp.payload[:0], st.payload...)
			cp.rng, cp.shard = st.rng, st.shard
			est = cp
		}
		s.setMeta(est, MetaEgressPort, uint64(port)&mask(16))
		if len(s.compiled.Program.EgressControl) > 0 {
			if err := s.runOps(est, s.compiled.Program.EgressControl, nil); err != nil {
				if est != st {
					s.putExec(est)
				}
				return fmt.Errorf("egress: %w", err)
			}
			if s.getMeta(est, MetaDrop) != 0 {
				s.bump(st, cntEgressDropped)
				if est != st {
					s.putExec(est)
				}
				continue
			}
		}
		idx := len(res.Emissions)
		var buf []byte
		if idx < len(res.bufs) {
			buf = res.bufs[idx][:0]
		}
		buf = s.deparseInto(est, buf)
		if idx < len(res.bufs) {
			res.bufs[idx] = buf
		} else {
			res.bufs = append(res.bufs, buf)
		}
		res.Emissions = append(res.Emissions, Emission{Port: port, Data: buf})
		if est != st {
			s.putExec(est)
		}
	}
	return nil
}

func (s *Switch) metaSlot(name string) int {
	return s.compiled.slots[F(MetaHeader, name)]
}

func (s *Switch) setMeta(st *execState, name string, v uint64) {
	slot := s.metaSlot(name)
	st.phv[slot] = v & mask(s.compiled.slotWidth[slot])
}

func (s *Switch) getMeta(st *execState, name string) uint64 {
	return st.phv[s.metaSlot(name)]
}

func (s *Switch) parse(st *execState, data []byte) error {
	prog := s.compiled.Program
	if len(prog.Parser) == 0 {
		st.payload = append(st.payload[:0], data...)
		return nil
	}
	rest := data
	stateName := ParserStart
	for steps := 0; ; steps++ {
		if steps > 64 {
			return fmt.Errorf("pisa: parser exceeded 64 states (loop?)")
		}
		si, ok := s.compiled.parserIndex[stateName]
		if !ok {
			return fmt.Errorf("pisa: parser transitioned to unknown state %q", stateName)
		}
		state := prog.Parser[si]
		if state.Extract != "" {
			hi := s.compiled.headerIndex[state.Extract]
			def := prog.Headers[hi]
			if len(rest) < def.Bytes() {
				return fmt.Errorf("pisa: header %s needs %d bytes, packet has %d", def.Name, def.Bytes(), len(rest))
			}
			off := 0
			for fi, slot := range s.compiled.headerSlots[hi] {
				st.phv[slot], off = unpackBits(rest, off, def.Fields[fi].Width)
			}
			st.valid[hi] = true
			rest = rest[def.Bytes():]
		}
		next := state.Default
		if state.Select != "" {
			slot := s.compiled.slots[state.Select]
			if n, ok := state.Transitions[st.phv[slot]]; ok {
				next = n
			}
		}
		if next == "" {
			break
		}
		stateName = next
	}
	st.payload = append(st.payload[:0], rest...)
	return nil
}

// appendZeros extends b with n zero bytes (deparse packs bits by OR-ing,
// so fresh bytes must be cleared).
func appendZeros(b []byte, n int) []byte {
	for i := 0; i < n; i++ {
		b = append(b, 0)
	}
	return b
}

// deparseInto serializes the valid headers and payload, appending into out.
func (s *Switch) deparseInto(st *execState, out []byte) []byte {
	prog := s.compiled.Program
	for _, name := range prog.DeparseOrder {
		hi := s.compiled.headerIndex[name]
		if !st.valid[hi] {
			continue
		}
		def := prog.Headers[hi]
		base := len(out)
		out = appendZeros(out, def.Bytes())
		off := 0
		for fi, slot := range s.compiled.headerSlots[hi] {
			w := def.Fields[fi].Width
			off = packBits(out[base:], off, st.phv[slot]&mask(w), w)
		}
	}
	return append(out, st.payload...)
}

type execFrame struct {
	params []uint64
}

// evalOperandIn resolves operands that may reference action parameters.
func (s *Switch) evalOperandIn(st *execState, o Operand, act *Action, frame *execFrame) (uint64, error) {
	if o.IsConst {
		return o.Const, nil
	}
	slot, pidx, _, err := s.compiled.lookupRef(o.Ref, act)
	if err != nil {
		return 0, err
	}
	if pidx >= 0 {
		if frame == nil || pidx >= len(frame.params) {
			return 0, fmt.Errorf("pisa: parameter %s unbound", o.Ref)
		}
		return frame.params[pidx], nil
	}
	return st.phv[slot], nil
}

func rotl(v uint64, n uint64, width int) uint64 {
	n %= uint64(width)
	m := mask(width)
	v &= m
	return ((v << n) | (v >> (uint64(width) - n))) & m
}

func (s *Switch) runOps(st *execState, ops []Op, actFrame *opContext) error {
	var act *Action
	var frame *execFrame
	if actFrame != nil {
		act, frame = actFrame.act, actFrame.frame
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpSet, OpAdd, OpSub, OpXor, OpAnd, OpOr, OpShl, OpShr, OpRotl:
			a, err := s.evalOperandIn(st, op.A, act, frame)
			if err != nil {
				return err
			}
			var b uint64
			if op.Kind != OpSet {
				if b, err = s.evalOperandIn(st, op.B, act, frame); err != nil {
					return err
				}
			}
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			var v uint64
			switch op.Kind {
			case OpSet:
				v = a
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpXor:
				v = a ^ b
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpShl:
				if b >= 64 {
					v = 0
				} else {
					v = a << b
				}
			case OpShr:
				if b >= 64 {
					v = 0
				} else {
					v = a >> b
				}
			case OpRotl:
				v = rotl(a, b, w)
			}
			st.phv[slot] = v & mask(w)
		case OpHash:
			v, err := s.execHash(st, op, act, frame)
			if err != nil {
				return err
			}
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			st.phv[slot] = uint64(v) & mask(w)
		case OpRegRead, OpRegWrite, OpRegRMW:
			ri := s.compiled.regIndex[op.Reg]
			def := s.compiled.Program.Registers[ri]
			idx, err := s.evalOperandIn(st, op.Index, act, frame)
			if err != nil {
				return err
			}
			if idx >= uint64(def.Entries) {
				s.bump(st, cntRegIndexWrap)
				idx %= uint64(def.Entries)
			}
			switch op.Kind {
			case OpRegRead:
				slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
				if err != nil {
					return err
				}
				s.regMu[ri].Lock()
				v := s.regs[ri][idx]
				s.regMu[ri].Unlock()
				st.phv[slot] = v & mask(w)
			case OpRegWrite:
				v, err := s.evalOperandIn(st, op.A, act, frame)
				if err != nil {
					return err
				}
				s.regMu[ri].Lock()
				s.regs[ri][idx] = v & mask(def.Width)
				s.regMu[ri].Unlock()
			case OpRegRMW:
				a, err := s.evalOperandIn(st, op.A, act, frame)
				if err != nil {
					return err
				}
				slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
				if err != nil {
					return err
				}
				// Hold the bank lock across the read-modify-write: the
				// data plane's stateful ALU is atomic per packet, and the
				// replay-floor RMWMax depends on it.
				s.regMu[ri].Lock()
				old := s.regs[ri][idx]
				var next uint64
				switch op.RMW {
				case RMWAdd:
					next = old + a
				case RMWWrite:
					next = a
				case RMWMax:
					next = old
					if a > old {
						next = a
					}
				case RMWXor:
					next = old ^ a
				}
				s.regs[ri][idx] = next & mask(def.Width)
				s.regMu[ri].Unlock()
				st.phv[slot] = old & mask(w)
			}
		case OpRandom:
			slot, _, w, err := s.compiled.lookupRef(op.Dst, act)
			if err != nil {
				return err
			}
			// The exec state's source: the base source on the serial path
			// (RandomSource implementations are concurrency-safe), a
			// per-lane deterministic fork under workers.
			r := st.rng.Uint64()
			st.phv[slot] = r & mask(w)
		case OpSetValid:
			hi := s.compiled.headerIndex[op.Header]
			if !st.valid[hi] {
				st.valid[hi] = true
				for _, slot := range s.compiled.headerSlots[hi] {
					st.phv[slot] = 0
				}
			}
		case OpSetInvalid:
			st.valid[s.compiled.headerIndex[op.Header]] = false
		case OpApply:
			if err := s.applyTable(st, op.Table); err != nil {
				return err
			}
		case OpIf:
			take, err := s.evalCond(st, op.Cond, act, frame)
			if err != nil {
				return err
			}
			branch := op.Then
			if !take {
				branch = op.Else
			}
			if err := s.runOps(st, branch, actFrame); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pisa: runtime: unknown op kind %d", int(op.Kind))
		}
	}
	return nil
}

type opContext struct {
	act   *Action
	frame *execFrame
}

func (s *Switch) evalCond(st *execState, cond Cond, act *Action, frame *execFrame) (bool, error) {
	if cond.ValidHeader != "" {
		v := st.valid[s.compiled.headerIndex[cond.ValidHeader]]
		if cond.Negate {
			v = !v
		}
		return v, nil
	}
	l, err := s.evalOperandIn(st, cond.L, act, frame)
	if err != nil {
		return false, err
	}
	r, err := s.evalOperandIn(st, cond.R, act, frame)
	if err != nil {
		return false, err
	}
	var res bool
	switch cond.Cmp {
	case CmpEq:
		res = l == r
	case CmpNe:
		res = l != r
	case CmpLt:
		res = l < r
	case CmpLe:
		res = l <= r
	case CmpGt:
		res = l > r
	case CmpGe:
		res = l >= r
	}
	if cond.Negate {
		res = !res
	}
	return res, nil
}

func (s *Switch) execHash(st *execState, op *Op, act *Action, frame *execFrame) (uint32, error) {
	// Serialize inputs MSB-first at declared widths, then payload.
	totalBits := 0
	vals := st.hashVals[:0]
	widths := st.hashWidths[:0]
	for _, in := range op.Inputs {
		v, err := s.evalOperandIn(st, in, act, frame)
		if err != nil {
			return 0, err
		}
		w := 64
		if !in.IsConst {
			_, _, fw, _ := s.compiled.lookupRef(in.Ref, act)
			w = fw
		}
		vals = append(vals, v)
		widths = append(widths, w)
		totalBits += w
	}
	st.hashVals, st.hashWidths = vals, widths
	nbytes := (totalBits + 7) / 8
	if cap(st.hashBuf) < nbytes {
		st.hashBuf = make([]byte, nbytes)
	}
	buf := st.hashBuf[:nbytes]
	for i := range buf {
		buf[i] = 0
	}
	off := 0
	for i := range vals {
		off = packBits(buf, off, vals[i]&mask(widths[i]), widths[i])
	}
	data := buf
	if op.IncludePayload {
		st.hashData = append(append(st.hashData[:0], buf...), st.payload...)
		data = st.hashData
	}

	var key uint64
	if op.Key != nil {
		k, err := s.evalOperandIn(st, *op.Key, act, frame)
		if err != nil {
			return 0, err
		}
		key = k
	}

	switch op.Alg {
	case HashCRC32:
		if op.Key != nil {
			return s.keyedIEEE.Sum32(key, data), nil
		}
		return crc32.Checksum(data, s.crcIEEE), nil
	case HashCRC32C:
		if op.Key != nil {
			return s.keyedCast.Sum32(key, data), nil
		}
		return crc32.Checksum(data, s.crcCast), nil
	case HashIdentity:
		var v uint32
		for _, b := range data {
			v = v<<8 | uint32(b)
		}
		return v, nil
	case HashHalfSipHash:
		return s.halfsip.Sum32(key, data), nil
	default:
		return 0, fmt.Errorf("pisa: runtime: unknown hash alg %d", int(op.Alg))
	}
}

func (s *Switch) applyTable(st *execState, name string) error {
	ti := s.compiled.tableIndex[name]
	ts := s.tables[ti]
	def := ts.def
	vals := st.keyVals[:0]
	widths := st.keyWidths[:0]
	for _, k := range def.Keys {
		slot, _, w, err := s.compiled.lookupRef(k.Field, nil)
		if err != nil {
			return err
		}
		vals = append(vals, st.phv[slot])
		widths = append(widths, w)
	}
	st.keyVals, st.keyWidths = vals, widths
	entry, keyBuf := ts.lookup(vals, widths, st.keyBuf)
	st.keyBuf = keyBuf
	actionName := def.Default
	var params []uint64
	if entry != nil {
		actionName, params = entry.Action, entry.Params
	} else if actionName != "" {
		params = def.DefaultParams
	}
	if actionName == "" {
		return nil // miss with no default: no-op
	}
	a := s.compiled.Program.Action(actionName)
	if a == nil {
		return fmt.Errorf("pisa: table %s: entry references unknown action %q", name, actionName)
	}
	if len(params) != len(a.Params) {
		return fmt.Errorf("pisa: table %s action %s: %d params bound, want %d", name, actionName, len(params), len(a.Params))
	}
	return s.runOps(st, a.Body, &opContext{act: a, frame: &execFrame{params: params}})
}
