package pisa

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"p4auth/internal/crypto"
)

// batchPackets builds a batch spread across ports 0..ports-1, round-robin,
// with routable and unroutable destinations mixed in.
func batchPackets(n, ports int) []Packet {
	pkts := make([]Packet, n)
	for i := range pkts {
		dst := uint64(0x0A000001 + i%3)
		if i%5 == 4 {
			dst = 0xC0A80001 // no route -> drop
		}
		pkts[i] = Packet{Data: ethIPPacket(dst, 64), Port: i % ports}
	}
	return pkts
}

// TestProcessBatchSerialEquivalence pins the serial contract: on a switch
// without workers, ProcessBatch is exactly a ProcessInto loop — same
// emissions, same summed cost.
func TestProcessBatchSerialEquivalence(t *testing.T) {
	swBatch := newTestSwitch(t, TofinoProfile())
	swLoop := newTestSwitch(t, TofinoProfile())
	pkts := batchPackets(32, 4)

	var br BatchResult
	if err := swBatch.ProcessBatch(pkts, &br); err != nil {
		t.Fatal(err)
	}
	var res Result
	var wantCost time.Duration
	for i, pkt := range pkts {
		if err := swLoop.ProcessInto(pkt, &res); err != nil {
			t.Fatal(err)
		}
		wantCost += res.Cost
		got := br.Results[i]
		if len(got.Emissions) != len(res.Emissions) {
			t.Fatalf("pkt %d: %d emissions, want %d", i, len(got.Emissions), len(res.Emissions))
		}
		for j := range res.Emissions {
			if got.Emissions[j].Port != res.Emissions[j].Port ||
				!bytes.Equal(got.Emissions[j].Data, res.Emissions[j].Data) {
				t.Fatalf("pkt %d emission %d diverges from serial loop", i, j)
			}
		}
	}
	if br.Cost != wantCost {
		t.Fatalf("batch cost %v, want serial sum %v", br.Cost, wantCost)
	}
}

// TestProcessBatchWorkersMatchSerial checks that a worker-backed switch
// produces the same per-packet outputs as the serial switch for a program
// without random(), and that batch buffers are stable: every packet keeps
// its own emission bytes after the whole batch completes.
func TestProcessBatchWorkersMatchSerial(t *testing.T) {
	swSerial := newTestSwitch(t, TofinoProfile())
	for _, workers := range []int{2, 4, 8} {
		sw, err := NewSwitch(testL3Program(), TofinoProfile(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		defer sw.Close()
		for _, e := range []struct {
			table  string
			key    []KeyMatch
			action string
			params []uint64
		}{
			{"routes", []KeyMatch{PKey(0x0A000000, 8)}, "set_nhop", []uint64{7}},
			{"routes", []KeyMatch{PKey(0x0A0A0000, 16)}, "set_nhop", []uint64{9}},
			{"ports", []KeyMatch{EKey(7)}, "to_port", []uint64{3}},
			{"ports", []KeyMatch{EKey(9)}, "to_port", []uint64{5}},
		} {
			if err := sw.InsertEntry(e.table, Entry{Key: e.key, Action: e.action, Params: e.params}); err != nil {
				t.Fatal(err)
			}
		}

		pkts := batchPackets(64, 8)
		var br BatchResult
		if err := sw.ProcessBatch(pkts, &br); err != nil {
			t.Fatal(err)
		}
		var res Result
		for i, pkt := range pkts {
			if err := swSerial.ProcessInto(pkt, &res); err != nil {
				t.Fatal(err)
			}
			got := br.Results[i]
			if len(got.Emissions) != len(res.Emissions) {
				t.Fatalf("workers=%d pkt %d: %d emissions, want %d",
					workers, i, len(got.Emissions), len(res.Emissions))
			}
			for j := range res.Emissions {
				if got.Emissions[j].Port != res.Emissions[j].Port ||
					!bytes.Equal(got.Emissions[j].Data, res.Emissions[j].Data) {
					t.Fatalf("workers=%d pkt %d emission %d diverges from serial", workers, i, j)
				}
			}
		}
	}
}

// TestProcessBatchDeterministicAcrossRuns: two identical worker switches
// fed the same batches produce identical outputs — results depend only on
// (seed, workers, inputs), never on goroutine scheduling.
func TestProcessBatchDeterministicAcrossRuns(t *testing.T) {
	build := func() *Switch {
		sw, err := NewSwitch(testL3Program(), TofinoProfile(),
			WithRandom(crypto.NewSeededRand(99)), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.InsertEntry("routes", Entry{
			Key: []KeyMatch{PKey(0x0A000000, 8)}, Action: "set_nhop", Params: []uint64{7},
		}); err != nil {
			t.Fatal(err)
		}
		if err := sw.InsertEntry("ports", Entry{
			Key: []KeyMatch{EKey(7)}, Action: "to_port", Params: []uint64{3},
		}); err != nil {
			t.Fatal(err)
		}
		return sw
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	pkts := batchPackets(48, 6)
	var ra, rb BatchResult
	for round := 0; round < 3; round++ {
		if err := a.ProcessBatch(pkts, &ra); err != nil {
			t.Fatal(err)
		}
		if err := b.ProcessBatch(pkts, &rb); err != nil {
			t.Fatal(err)
		}
		if ra.Cost != rb.Cost {
			t.Fatalf("round %d: costs diverge: %v vs %v", round, ra.Cost, rb.Cost)
		}
		for i := range pkts {
			ea, eb := ra.Results[i].Emissions, rb.Results[i].Emissions
			if len(ea) != len(eb) {
				t.Fatalf("round %d pkt %d: emission counts diverge", round, i)
			}
			for j := range ea {
				if ea[j].Port != eb[j].Port || !bytes.Equal(ea[j].Data, eb[j].Data) {
					t.Fatalf("round %d pkt %d emission %d diverges between twin switches", round, i, j)
				}
			}
		}
	}
}

// TestProcessIntoAllocs guards the zero-alloc packet path.
func TestProcessIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts change under -race instrumentation")
	}
	sw := newTestSwitch(t, TofinoProfile())
	pkt := Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1}
	var res Result
	// Warm pools and emission arenas.
	for i := 0; i < 16; i++ {
		if err := sw.ProcessInto(pkt, &res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sw.ProcessInto(pkt, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProcessInto allocs/op = %v, want 0", allocs)
	}
}

// TestProcessBatchAllocs guards the steady-state batch path: after pools
// and arenas warm, a serial batch is 0 allocs/op; a worker batch stays
// alloc-free in steady state too (the lanes, wake channels, and index
// lists are all persistent), with headroom for rare execState pool misses
// when a lane goroutine migrates between Ps.
func TestProcessBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts change under -race instrumentation")
	}
	pkts := batchPackets(32, 4)

	serial := newTestSwitch(t, TofinoProfile())
	var br BatchResult
	for i := 0; i < 8; i++ {
		if err := serial.ProcessBatch(pkts, &br); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := serial.ProcessBatch(pkts, &br); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("serial ProcessBatch allocs/op = %v, want 0", allocs)
	}

	par, err := NewSwitch(testL3Program(), TofinoProfile(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	var brp BatchResult
	for i := 0; i < 8; i++ {
		if err := par.ProcessBatch(pkts, &brp); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := par.ProcessBatch(pkts, &brp); err != nil {
			t.Fatal(err)
		}
	}); allocs >= 1 {
		t.Fatalf("worker ProcessBatch allocs/op = %v, want < 1", allocs)
	}
}

// TestProcessBatchConcurrentMutation stress-drives a worker-backed batch
// path against concurrent driver mutations (RegisterWrite, table churn,
// counter reads). Run under -race (make check does) this pins the sharded
// counter cells and per-bank register locks.
func TestProcessBatchConcurrentMutation(t *testing.T) {
	par, err := NewSwitch(testL3Program(), TofinoProfile(), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if err := par.InsertEntry("routes", Entry{
		Key: []KeyMatch{PKey(0x0A000000, 8)}, Action: "set_nhop", Params: []uint64{7},
	}); err != nil {
		t.Fatal(err)
	}
	if err := par.InsertEntry("ports", Entry{
		Key: []KeyMatch{EKey(7)}, Action: "to_port", Params: []uint64{3},
	}); err != nil {
		t.Fatal(err)
	}

	pkts := batchPackets(64, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := par.RegisterWrite("pkt_count", i%8, uint64(i)); err != nil {
				t.Errorf("register write: %v", err)
				return
			}
			if err := par.InsertEntry("routes", Entry{
				Key: []KeyMatch{PKey(0x0B000000, 8)}, Action: "set_nhop", Params: []uint64{7},
			}); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			_ = par.Counter("dropped")
			_ = par.CounterSnapshot()
			par.SetNow(uint64(i))
			if err := par.DeleteEntry("routes", []KeyMatch{PKey(0x0B000000, 8)}); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	var br BatchResult
	for round := 0; round < 100; round++ {
		if err := par.ProcessBatch(pkts, &br); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCounterSnapshotAggregates checks that counters bumped from distinct
// lanes (shards) aggregate into one logical value, that the snapshot is in
// sorted name order, and that unknown names read as zero.
func TestCounterSnapshotAggregates(t *testing.T) {
	sw, err := NewSwitch(testL3Program(), TofinoProfile(), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	// No routes installed: every parseable packet hits drop_pkt. Spread
	// across all 8 ports so every shard gets bumps.
	pkts := make([]Packet, 64)
	for i := range pkts {
		pkts[i] = Packet{Data: ethIPPacket(0x0A000001, 64), Port: i % 8}
	}
	var br BatchResult
	if err := sw.ProcessBatch(pkts, &br); err != nil {
		t.Fatal(err)
	}
	if got := sw.Counter("dropped"); got != 64 {
		t.Fatalf("dropped = %d, want 64", got)
	}
	if got := sw.Counter("no_such_counter"); got != 0 {
		t.Fatalf("unknown counter = %d, want 0", got)
	}
	snap := sw.CounterSnapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not in sorted name order: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	found := false
	for _, cv := range snap {
		if cv.Name == "dropped" {
			found = true
			if cv.Value != 64 {
				t.Fatalf("snapshot dropped = %d, want 64", cv.Value)
			}
		}
	}
	if !found {
		t.Fatal("snapshot missing dropped counter")
	}
}

// TestSwitchClose checks Close is idempotent and harmless on serial
// switches.
func TestSwitchClose(t *testing.T) {
	serial := newTestSwitch(t, TofinoProfile())
	serial.Close()
	serial.Close()

	par, err := NewSwitch(testL3Program(), TofinoProfile(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResult
	if err := par.ProcessBatch(batchPackets(8, 2), &br); err != nil {
		t.Fatal(err)
	}
	par.Close()
	par.Close()
	// Per-packet processing stays available after Close.
	var res Result
	if err := par.ProcessInto(Packet{Data: ethIPPacket(0x0A000001, 64), Port: 1}, &res); err != nil {
		t.Fatal(err)
	}
}
