package pisa

import "time"

// Profile describes a switch target's resource envelope and per-packet
// cost model. Capacities follow the Tofino-1 shape (12 MAU stages, ~4k PHV
// bits, SRAM/TCAM blocks per pipe, a hash-input crossbar per stage); the
// percentages the compiler reports are relative to these capacities, which
// is how Table II of the paper is reproduced.
type Profile struct {
	Name string

	// Stages is the number of match-action stages per pipeline pass.
	Stages int
	// MaxPasses bounds recirculation (1 = no recirculation).
	MaxPasses int
	// PHVBits is the total packet-header-vector capacity in bits.
	PHVBits int
	// SRAMBlocks is the number of SRAM blocks (128 Kbit each).
	SRAMBlocks int
	// TCAMBlocks is the number of TCAM blocks (512 entries x 44 bits each).
	TCAMBlocks int
	// HashBits is the total hash-input crossbar capacity in bits.
	HashBits int
	// HashBitsPerStage bounds hash input consumed within one stage.
	HashBitsPerStage int
	// HashCallsPerStage bounds distinct hash computations per stage.
	HashCallsPerStage int
	// ALUOpsPerStage bounds primitive ops placed in one stage.
	ALUOpsPerStage int
	// ALUWidth is the native ALU width; ops on wider fields cost two ALU
	// slots and rotates wider than this are rejected.
	ALUWidth int
	// AllowExterns permits extern hash algorithms (HalfSipHash). True only
	// on the software target.
	AllowExterns bool
	// StrictRegisterAccess enforces the hardware rule that each register
	// may be touched at most once per pipeline pass.
	StrictRegisterAccess bool

	// Cost model (virtual time per packet).
	ParseCost   time.Duration // fixed parse/deparse cost per pass
	StageCost   time.Duration // per occupied stage
	RecircCost  time.Duration // extra cost per recirculation
	FixedCost   time.Duration // MAC/queueing overhead per packet
	PayloadCost time.Duration // per payload byte (serialization on sw targets)
}

// SRAMBlockBits is the capacity of one SRAM block.
const SRAMBlockBits = 128 * 1024

// TCAM block geometry.
const (
	TCAMBlockEntries = 512
	TCAMBlockKeyBits = 44
)

// TofinoProfile models the hardware target (paper: Aurora 610, Tofino-1,
// bf-sde 9.9.0). Per-packet costs are nanosecond-scale.
func TofinoProfile() Profile {
	return Profile{
		Name:                 "tofino",
		Stages:               12,
		MaxPasses:            6, // recirculation is bandwidth-limited on hw, not hard-capped
		PHVBits:              4096,
		SRAMBlocks:           960,
		TCAMBlocks:           72,
		HashBits:             4992,
		HashBitsPerStage:     416,
		HashCallsPerStage:    2,
		ALUOpsPerStage:       20,
		ALUWidth:             32,
		AllowExterns:         false,
		StrictRegisterAccess: true,
		ParseCost:            100 * time.Nanosecond,
		StageCost:            30 * time.Nanosecond,
		RecircCost:           400 * time.Nanosecond,
		FixedCost:            300 * time.Nanosecond,
		PayloadCost:          0,
	}
}

// BMv2Profile models the software reference switch: effectively unbounded
// resources, extern support (compute_digest/HalfSipHash, §VII), and
// microsecond-scale per-packet cost.
func BMv2Profile() Profile {
	return Profile{
		Name:              "bmv2",
		Stages:            256,
		MaxPasses:         16,
		PHVBits:           1 << 20,
		SRAMBlocks:        1 << 20,
		TCAMBlocks:        1 << 20,
		HashBits:          1 << 20,
		HashBitsPerStage:  1 << 20,
		HashCallsPerStage: 1 << 10,
		ALUOpsPerStage:    1 << 10,
		ALUWidth:          64,
		AllowExterns:      true,
		// BMv2 is dominated by fixed per-packet overhead (parsing, PHV
		// marshaling, queueing between the software threads); per-table
		// cost is comparatively small. Calibrated so the P4Auth stage
		// delta lands in the paper's few-percent regime (Fig. 21).
		ParseCost:   12 * time.Microsecond,
		StageCost:   350 * time.Nanosecond,
		RecircCost:  40 * time.Microsecond,
		FixedCost:   230 * time.Microsecond,
		PayloadCost: 6 * time.Nanosecond,
	}
}

// PacketCost returns the modeled time for a packet that occupied `stages`
// stages over `passes` pipeline passes carrying `payloadBytes` of payload.
func (p Profile) PacketCost(stages, passes, payloadBytes int) time.Duration {
	if passes < 1 {
		passes = 1
	}
	c := p.FixedCost +
		time.Duration(passes)*p.ParseCost +
		time.Duration(stages)*p.StageCost +
		time.Duration(passes-1)*p.RecircCost +
		time.Duration(payloadBytes)*p.PayloadCost
	return c
}
