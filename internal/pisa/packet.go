package pisa

import "fmt"

// Packet is a raw packet: bytes on the wire plus the port it arrived on.
type Packet struct {
	// Data is the full packet, headers first.
	Data []byte
	// Port is the ingress port. Use CPUPort for PacketOut injections.
	Port int
}

// Clone returns a deep copy of the packet.
func (p Packet) Clone() Packet {
	d := make([]byte, len(p.Data))
	copy(d, p.Data)
	return Packet{Data: d, Port: p.Port}
}

// packBits writes the low `width` bits of v into buf starting at bit offset
// off (MSB-first), returning the new offset.
func packBits(buf []byte, off int, v uint64, width int) int {
	for i := width - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		if bit != 0 {
			buf[off/8] |= 1 << uint(7-off%8)
		}
		off++
	}
	return off
}

// unpackBits reads `width` bits from buf starting at bit offset off
// (MSB-first).
func unpackBits(buf []byte, off, width int) (uint64, int) {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		v |= uint64(buf[off/8]>>uint(7-off%8)) & 1
		off++
	}
	return v, off
}

// PackHeader serializes field values (in declaration order) per the header
// definition, MSB-first.
func PackHeader(def *HeaderDef, values []uint64) ([]byte, error) {
	if len(values) != len(def.Fields) {
		return nil, fmt.Errorf("pisa: header %s: got %d values for %d fields", def.Name, len(values), len(def.Fields))
	}
	buf := make([]byte, def.Bytes())
	off := 0
	for i, f := range def.Fields {
		off = packBits(buf, off, values[i]&mask(f.Width), f.Width)
	}
	return buf, nil
}

// UnpackHeader parses a header's field values from the front of data.
func UnpackHeader(def *HeaderDef, data []byte) ([]uint64, error) {
	if len(data) < def.Bytes() {
		return nil, fmt.Errorf("pisa: header %s needs %d bytes, packet has %d", def.Name, def.Bytes(), len(data))
	}
	values := make([]uint64, len(def.Fields))
	off := 0
	for i, f := range def.Fields {
		values[i], off = unpackBits(data, off, f.Width)
	}
	return values, nil
}
