//go:build race

package pisa

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
