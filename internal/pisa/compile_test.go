package pisa

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, prog *Program, profile Profile) *Compiled {
	t.Helper()
	c, err := Compile(prog, profile)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileL3Program(t *testing.T) {
	c := mustCompile(t, testL3Program(), TofinoProfile())
	if c.Usage.Stages < 2 {
		t.Errorf("stages = %d, want >= 2 (two dependent tables)", c.Usage.Stages)
	}
	if c.Usage.Passes != 1 {
		t.Errorf("passes = %d, want 1", c.Usage.Passes)
	}
	if c.Usage.TCAMBlocks == 0 {
		t.Error("LPM table consumed no TCAM")
	}
	if c.Usage.SRAMBlocks == 0 {
		t.Error("exact table and register consumed no SRAM")
	}
	pct := c.Usage.Percent(c.Profile)
	if pct.PHV <= 0 || pct.PHV > 100 {
		t.Errorf("PHV%% = %f", pct.PHV)
	}
}

func TestCompileRejectsExternOnTofino(t *testing.T) {
	prog := &Program{
		Name:     "e",
		Metadata: []FieldDef{{Name: "d", Width: 32}},
		Control: []Op{
			KeyedHash(F(MetaHeader, "d"), HashHalfSipHash, C(1), C(2)),
		},
	}
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("HalfSipHash extern must be rejected on tofino")
	}
	if _, err := Compile(prog, BMv2Profile()); err != nil {
		t.Fatalf("HalfSipHash extern must compile on bmv2: %v", err)
	}
}

func TestCompileRejectsWideRotateOnTofino(t *testing.T) {
	prog := &Program{
		Name:     "r",
		Metadata: []FieldDef{{Name: "x", Width: 64}},
		Control:  []Op{Rotl(F(MetaHeader, "x"), R(F(MetaHeader, "x")), C(13))},
	}
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("64-bit rotate must be rejected on a 32-bit ALU")
	}
	if _, err := Compile(prog, BMv2Profile()); err != nil {
		t.Fatalf("64-bit rotate must compile on bmv2: %v", err)
	}
}

func TestCompileRejectsDoubleRegisterAccessOnTofino(t *testing.T) {
	prog := &Program{
		Name:      "rr",
		Metadata:  []FieldDef{{Name: "a", Width: 32}, {Name: "b", Width: 32}},
		Registers: []*RegisterDef{{Name: "st", Width: 32, Entries: 4}},
		Control: []Op{
			RegRead(F(MetaHeader, "a"), "st", C(0)),
			RegWrite("st", C(1), R(F(MetaHeader, "a"))),
		},
	}
	_, err := Compile(prog, TofinoProfile())
	if err == nil || !strings.Contains(err.Error(), "accessed 2 times") {
		t.Fatalf("want once-per-pass violation, got %v", err)
	}
	if _, err := Compile(prog, BMv2Profile()); err != nil {
		t.Fatalf("double access must compile on bmv2: %v", err)
	}
}

func TestCompileAllowsRegisterAccessInBothBranches(t *testing.T) {
	// If/else branches are mutually exclusive; one access per branch is a
	// single access per pass.
	prog := &Program{
		Name:      "branches",
		Metadata:  []FieldDef{{Name: "a", Width: 32}},
		Registers: []*RegisterDef{{Name: "st", Width: 32, Entries: 4}},
		Control: []Op{
			If(Eq(R(F(MetaHeader, "a")), C(0)),
				[]Op{RegRead(F(MetaHeader, "a"), "st", C(0))},
				[]Op{RegWrite("st", C(0), C(7))}),
		},
	}
	if _, err := Compile(prog, TofinoProfile()); err != nil {
		t.Fatalf("per-branch register access must be legal: %v", err)
	}
}

func TestCompileStageGrowthFromDependencies(t *testing.T) {
	// A chain of dependent ALU ops must occupy more stages than
	// independent ones.
	dep := &Program{
		Name: "dep",
		Metadata: []FieldDef{
			{Name: "a", Width: 32}, {Name: "b", Width: 32},
		},
		Control: []Op{
			Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
			Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
			Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
		},
	}
	indep := &Program{
		Name: "indep",
		Metadata: []FieldDef{
			{Name: "a", Width: 32}, {Name: "b", Width: 32}, {Name: "c", Width: 32},
		},
		Control: []Op{
			Add(F(MetaHeader, "a"), C(1), C(1)),
			Add(F(MetaHeader, "b"), C(1), C(1)),
			Add(F(MetaHeader, "c"), C(1), C(1)),
		},
	}
	cd := mustCompile(t, dep, TofinoProfile())
	ci := mustCompile(t, indep, TofinoProfile())
	if cd.Usage.Stages <= ci.Usage.Stages {
		t.Errorf("dependent chain %d stages, independent %d: want strict growth",
			cd.Usage.Stages, ci.Usage.Stages)
	}
}

func TestCompileHashUnitPressureForcesStages(t *testing.T) {
	// More hash calls than HashCallsPerStage must spill to later stages.
	mk := func(calls int) *Program {
		md := []FieldDef{}
		ops := []Op{}
		for i := 0; i < calls; i++ {
			name := "d" + string(rune('a'+i))
			md = append(md, FieldDef{Name: name, Width: 32})
			ops = append(ops, Hash(F(MetaHeader, name), HashCRC32, C(uint64(i))))
		}
		return &Program{Name: "hashes", Metadata: md, Control: ops}
	}
	c2 := mustCompile(t, mk(2), TofinoProfile())
	c6 := mustCompile(t, mk(6), TofinoProfile())
	if c6.Usage.Stages <= c2.Usage.Stages {
		t.Errorf("6 hashes = %d stages, 2 hashes = %d stages: want pressure growth",
			c6.Usage.Stages, c2.Usage.Stages)
	}
	if c6.Usage.HashCalls != 6 {
		t.Errorf("HashCalls = %d, want 6", c6.Usage.HashCalls)
	}
}

func TestCompilePassesFromStageOverflow(t *testing.T) {
	// A long dependent chain exceeding 12 stages needs recirculation.
	ops := []Op{}
	for i := 0; i < 30; i++ {
		ops = append(ops, Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)))
	}
	prog := &Program{
		Name:     "deep",
		Metadata: []FieldDef{{Name: "a", Width: 32}},
		Control:  ops,
	}
	c := mustCompile(t, prog, TofinoProfile())
	if c.Usage.Passes < 2 {
		t.Errorf("passes = %d, want >= 2 for a 30-deep chain on 12 stages", c.Usage.Passes)
	}
}

func TestCompileRejectsTooManyPasses(t *testing.T) {
	ops := []Op{}
	for i := 0; i < 100; i++ {
		ops = append(ops, Add(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)))
	}
	prog := &Program{
		Name:     "toodeep",
		Metadata: []FieldDef{{Name: "a", Width: 32}},
		Control:  ops,
	}
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("expected pass-budget rejection")
	}
}

func TestCompileRejectsPHVOverflow(t *testing.T) {
	md := make([]FieldDef, 200)
	for i := range md {
		md[i] = FieldDef{Name: "f" + string(rune('0'+i/10)) + string(rune('0'+i%10)), Width: 32}
	}
	prog := &Program{Name: "fat", Metadata: md}
	if _, err := Compile(prog, TofinoProfile()); err == nil {
		t.Fatal("expected PHV overflow rejection")
	}
	if _, err := Compile(prog, BMv2Profile()); err != nil {
		t.Fatalf("bmv2 should absorb the PHV: %v", err)
	}
}

func TestCompileValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		prog *Program
	}{
		{"unknown field", &Program{Name: "x", Control: []Op{Set(F(MetaHeader, "ghost"), C(1))}}},
		{"unknown table", &Program{Name: "x", Control: []Op{Apply("ghost")}}},
		{"unknown register", &Program{Name: "x", Metadata: []FieldDef{{Name: "a", Width: 8}},
			Control: []Op{RegRead(F(MetaHeader, "a"), "ghost", C(0))}}},
		{"unknown header setvalid", &Program{Name: "x", Control: []Op{SetValid("ghost")}}},
		{"apply inside action", &Program{Name: "x",
			Actions: []*Action{{Name: "bad", Body: []Op{Apply("t")}}},
			Tables: []*Table{{Name: "t", Size: 1, Keys: []TableKey{{Field: F(MetaHeader, MetaIngressPort), Match: MatchExact}},
				Actions: []string{"bad"}}},
			Control: []Op{Apply("t")}}},
		{"write to param", &Program{Name: "x",
			Actions: []*Action{{Name: "bad", Params: []FieldDef{{Name: "p", Width: 8}},
				Body: []Op{Set(F(ParamHeader, "p"), C(1))}}},
			Tables: []*Table{{Name: "t", Size: 1, Keys: []TableKey{{Field: F(MetaHeader, MetaIngressPort), Match: MatchExact}},
				Actions: []string{"bad"}}},
			Control: []Op{Apply("t")}}},
		{"hash no inputs", &Program{Name: "x", Metadata: []FieldDef{{Name: "d", Width: 32}},
			Control: []Op{{Kind: OpHash, Dst: F(MetaHeader, "d"), Alg: HashCRC32}}}},
		{"param outside action", &Program{Name: "x", Metadata: []FieldDef{{Name: "d", Width: 32}},
			Control: []Op{Set(F(MetaHeader, "d"), R(F(ParamHeader, "p")))}}},
		{"dup table", &Program{Name: "x",
			Actions: []*Action{{Name: "n"}},
			Tables: []*Table{
				{Name: "t", Size: 1, Keys: []TableKey{{Field: F(MetaHeader, MetaIngressPort), Match: MatchExact}}, Actions: []string{"n"}},
				{Name: "t", Size: 1, Keys: []TableKey{{Field: F(MetaHeader, MetaIngressPort), Match: MatchExact}}, Actions: []string{"n"}},
			}}},
		{"parser missing start", &Program{Name: "x",
			Headers: []*HeaderDef{{Name: "h", Fields: []FieldDef{{Name: "a", Width: 8}}}},
			Parser:  []ParserState{{Name: "notstart", Extract: "h"}}}},
		{"reserved header name", &Program{Name: "x",
			Headers: []*HeaderDef{{Name: MetaHeader, Fields: []FieldDef{{Name: "a", Width: 8}}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Compile(tt.prog, BMv2Profile()); err == nil {
				t.Error("expected compile error")
			}
		})
	}
}

func TestUsagePercentZeroCapacity(t *testing.T) {
	u := Usage{PHVBits: 100}
	p := u.Percent(Profile{})
	if p.PHV != 0 {
		t.Error("zero capacity should report 0%, not +Inf")
	}
}

func TestProfilePacketCost(t *testing.T) {
	p := TofinoProfile()
	one := p.PacketCost(10, 1, 0)
	two := p.PacketCost(10, 2, 0)
	if two <= one {
		t.Error("an extra pass must cost more")
	}
	if p.PacketCost(10, 0, 0) != one {
		t.Error("passes<1 should clamp to 1")
	}
	b := BMv2Profile()
	if b.PacketCost(10, 1, 1000) <= b.PacketCost(10, 1, 0) {
		t.Error("payload bytes must cost on the software target")
	}
}

func TestDumpRendersEveryConstruct(t *testing.T) {
	out := Dump(testL3Program())
	for _, want := range []string{
		"program test_l3",
		"header eth", "header ip",
		"metadata {",
		"state start extract(eth)",
		"register pkt_count: 8 x 32 bits",
		"action set_nhop(nhop:16)",
		"table routes", "key = {", "ip.dst:lpm",
		"control ingress",
		"if (ip.isValid())",
		"apply(routes)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	// Deterministic.
	if out != Dump(testL3Program()) {
		t.Error("dump is not deterministic")
	}
}

func TestDumpOpsCoverage(t *testing.T) {
	prog := &Program{
		Name:     "opsdump",
		Metadata: []FieldDef{{Name: "a", Width: 32}, {Name: "d", Width: 32}},
		Registers: []*RegisterDef{
			{Name: "r", Width: 32, Entries: 2},
		},
		EgressControl: []Op{Set(F(MetaHeader, "a"), C(1))},
		Control: []Op{
			Hash(F(MetaHeader, "d"), HashCRC32, R(F(MetaHeader, "a"))),
			KeyedHash(F(MetaHeader, "d"), HashCRC32, C(5), R(F(MetaHeader, "a"))),
			RegRead(F(MetaHeader, "a"), "r", C(0)),
			RegWrite("r", C(1), C(9)),
			RegRMW(F(MetaHeader, "a"), "r", C(0), RMWMax, C(3)),
			Random(F(MetaHeader, "a")),
			Xor(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(1)),
			Rotl(F(MetaHeader, "a"), R(F(MetaHeader, "a")), C(5)),
			If(NotValid("x"), nil),
		},
		Headers: []*HeaderDef{{Name: "x", Fields: []FieldDef{{Name: "y", Width: 8}}}},
	}
	out := Dump(prog)
	for _, want := range []string{
		"crc32(", "key=0x5", "= r[0x0]", "r[0x1] = 0x9", "rmw r[0x0] max= 0x3",
		"random()", "^", "<<<", "!x.isValid()", "control egress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	a, err := Compile(testL3Program(), TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(testL3Program(), TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	if a.Usage != b.Usage {
		t.Errorf("compilation not deterministic: %+v vs %+v", a.Usage, b.Usage)
	}
}
