package trace

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(uint64(100 * time.Millisecond))
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	cfg.Seed++
	c := Generate(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateOrderedAndBounded(t *testing.T) {
	cfg := DefaultConfig(uint64(200 * time.Millisecond))
	pkts := Generate(cfg)
	var last uint64
	for i, p := range pkts {
		if p.AtNs < last {
			t.Fatalf("packet %d out of order: %d < %d", i, p.AtNs, last)
		}
		last = p.AtNs
		if p.AtNs >= cfg.DurationNs {
			t.Fatalf("packet %d beyond duration", i)
		}
		if p.Size != cfg.PacketBytes {
			t.Fatalf("packet %d size %d", i, p.Size)
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	cfg := DefaultConfig(uint64(2 * time.Second))
	cfg.Seed = 7
	pkts := Generate(cfg)
	st := Summarize(pkts)
	if st.Flows < 100 {
		t.Fatalf("only %d flows", st.Flows)
	}
	mean := float64(st.Packets) / float64(st.Flows)
	// Heavy tail: the largest flow should far exceed the mean.
	if float64(st.MaxFlowPk) < 4*mean {
		t.Errorf("max flow %d vs mean %.1f: tail not heavy", st.MaxFlowPk, mean)
	}
	if st.MaxFlowPk > cfg.MaxFlowPackets {
		t.Errorf("flow length %d exceeds truncation %d", st.MaxFlowPk, cfg.MaxFlowPackets)
	}
	if st.Bytes != uint64(st.Packets*cfg.PacketBytes) {
		t.Error("byte accounting")
	}
}

func TestGenerateArrivalRateApproximatesConfig(t *testing.T) {
	cfg := DefaultConfig(uint64(5 * time.Second))
	cfg.FlowsPerSecond = 500
	st := Summarize(Generate(cfg))
	expected := 500.0 * 5
	ratio := float64(st.Flows) / expected
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("flows = %d, expected ~%.0f (ratio %.2f)", st.Flows, expected, ratio)
	}
}
