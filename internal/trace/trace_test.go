package trace

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(uint64(100 * time.Millisecond))
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	cfg.Seed++
	c := Generate(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateOrderedAndBounded(t *testing.T) {
	cfg := DefaultConfig(uint64(200 * time.Millisecond))
	pkts := Generate(cfg)
	var last uint64
	for i, p := range pkts {
		if p.AtNs < last {
			t.Fatalf("packet %d out of order: %d < %d", i, p.AtNs, last)
		}
		last = p.AtNs
		if p.AtNs >= cfg.DurationNs {
			t.Fatalf("packet %d beyond duration", i)
		}
		if p.Size != cfg.PacketBytes {
			t.Fatalf("packet %d size %d", i, p.Size)
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	cfg := DefaultConfig(uint64(2 * time.Second))
	cfg.Seed = 7
	pkts := Generate(cfg)
	st := Summarize(pkts)
	if st.Flows < 100 {
		t.Fatalf("only %d flows", st.Flows)
	}
	mean := float64(st.Packets) / float64(st.Flows)
	// Heavy tail: the largest flow should far exceed the mean.
	if float64(st.MaxFlowPk) < 4*mean {
		t.Errorf("max flow %d vs mean %.1f: tail not heavy", st.MaxFlowPk, mean)
	}
	if st.MaxFlowPk > cfg.MaxFlowPackets {
		t.Errorf("flow length %d exceeds truncation %d", st.MaxFlowPk, cfg.MaxFlowPackets)
	}
	if st.Bytes != uint64(st.Packets*cfg.PacketBytes) {
		t.Error("byte accounting")
	}
}

// TestStreamPinnedBytes pins the exact generator output per seed: any
// change to the PRNG, the arrival process, or the Pareto sampler shifts
// these numbers and must be a deliberate, golden-updating change —
// otherwise every fleet matrix silently measures different traffic.
func TestStreamPinnedBytes(t *testing.T) {
	cfg := DefaultConfig(uint64(100 * time.Millisecond))
	pins := []struct {
		seed          uint64
		packets, flow int
		bytes         uint64
	}{
		{0x7acef10, 2994, 218, 2994000},
		{1, 1740, 196, 1740000},
		{42, 2711, 209, 2711000},
	}
	for _, p := range pins {
		c := cfg
		c.Seed = p.seed
		st := Summarize(Generate(c))
		if st.Packets != p.packets || st.Flows != p.flow || st.Bytes != p.bytes {
			t.Errorf("seed %#x: got packets=%d flows=%d bytes=%d, pinned packets=%d flows=%d bytes=%d",
				p.seed, st.Packets, st.Flows, st.Bytes, p.packets, p.flow, p.bytes)
		}
	}
	// Forked substreams are pinned too: fork i depends only on (seed, i).
	s := NewStream(cfg)
	forkPins := []struct {
		seed  uint64
		base  uint32
		bytes uint64
	}{
		{0xbda15e1cba069490, 0x400000, 2186000},
		{0xa72a94818902e217, 0x800000, 2030000},
		{0x71780744a5165562, 0xc00000, 1742000},
		{0xfe6950f53b36b9, 0x1000000, 1289000},
	}
	for i, p := range forkPins {
		f := s.Fork(uint64(i))
		if f.Config().Seed != p.seed || f.Config().FlowBase != p.base {
			t.Errorf("fork %d: derived seed=%#x base=%#x, pinned seed=%#x base=%#x",
				i, f.Config().Seed, f.Config().FlowBase, p.seed, p.base)
		}
		if st := Summarize(f.Generate()); st.Bytes != p.bytes {
			t.Errorf("fork %d: bytes=%d, pinned %d", i, st.Bytes, p.bytes)
		}
	}
}

// Fork is order-independent and side-effect free: forking in any order,
// repeatedly, from the same parent yields identical substreams, and the
// flow-ID spaces of sibling forks never overlap.
func TestStreamForkIndependence(t *testing.T) {
	cfg := DefaultConfig(uint64(50 * time.Millisecond))
	s := NewStream(cfg)
	// Reverse order, interleaved with repeats.
	traces := make(map[uint64][]Packet)
	for _, i := range []uint64{3, 1, 2, 0, 2, 3} {
		pkts := s.Fork(i).Generate()
		if prev, ok := traces[i]; ok {
			if len(prev) != len(pkts) {
				t.Fatalf("fork %d: re-fork changed trace length %d -> %d", i, len(prev), len(pkts))
			}
			for j := range prev {
				if prev[j] != pkts[j] {
					t.Fatalf("fork %d: packet %d differs on re-fork", i, j)
				}
			}
		}
		traces[i] = pkts
	}
	// Disjoint flow-ID spaces and distinct contents across siblings.
	owner := make(map[uint32]uint64)
	for i, pkts := range traces {
		if len(pkts) == 0 {
			t.Fatalf("fork %d: empty trace", i)
		}
		for _, p := range pkts {
			if prev, ok := owner[p.Flow]; ok && prev != i {
				t.Fatalf("flow %d appears in forks %d and %d", p.Flow, prev, i)
			}
			owner[p.Flow] = i
		}
	}
	// Parent is unaffected by forking and matches a fresh stream.
	a, b := s.Generate(), NewStream(cfg).Generate()
	if len(a) != len(b) {
		t.Fatalf("parent stream mutated by Fork: %d vs %d packets", len(a), len(b))
	}
}

func TestGenerateArrivalRateApproximatesConfig(t *testing.T) {
	cfg := DefaultConfig(uint64(5 * time.Second))
	cfg.FlowsPerSecond = 500
	st := Summarize(Generate(cfg))
	expected := 500.0 * 5
	ratio := float64(st.Flows) / expected
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("flows = %d, expected ~%.0f (ratio %.2f)", st.Flows, expected, ratio)
	}
}
