// Package trace generates synthetic packet traces standing in for the
// CAIDA PCAP replays of §IX-A (the dataset is license-gated): flows arrive
// as a Poisson process, flow sizes are heavy-tailed (bounded Pareto), and
// packets within a flow are paced. Only the aggregate mix matters to the
// experiments — traffic-split figures depend on flow arrival structure,
// not payload content — so this preserves the relevant behaviour.
package trace

import (
	"math"
	"sort"

	"p4auth/internal/crypto"
)

// Packet is one generated packet.
type Packet struct {
	// AtNs is the send time in virtual nanoseconds.
	AtNs uint64
	// Flow identifies the flow (stable 5-tuple surrogate).
	Flow uint32
	// Size is the packet size in bytes.
	Size int
}

// Config parameterizes the generator.
type Config struct {
	// FlowsPerSecond is the Poisson flow arrival rate.
	FlowsPerSecond float64
	// MeanFlowPackets is the mean flow length; sizes follow a bounded
	// Pareto with shape Alpha.
	MeanFlowPackets int
	Alpha           float64
	// MaxFlowPackets truncates the tail.
	MaxFlowPackets int
	// PacketBytes is the packet size.
	PacketBytes int
	// PacketGapNs is the intra-flow pacing gap.
	PacketGapNs uint64
	// DurationNs is the trace length.
	DurationNs uint64
	// Seed drives the deterministic PRNG.
	Seed uint64
	// FlowBase offsets every generated flow identifier, letting forked
	// per-pod streams occupy disjoint flow-ID spaces. Zero (the default)
	// keeps the historical numbering, so existing seeds generate
	// byte-identical traces.
	FlowBase uint32
}

// DefaultConfig produces a modest edge-link mix.
func DefaultConfig(durationNs uint64) Config {
	return Config{
		FlowsPerSecond:  2000,
		MeanFlowPackets: 12,
		Alpha:           1.3,
		MaxFlowPackets:  1000,
		PacketBytes:     1000,
		PacketGapNs:     20_000,
		DurationNs:      durationNs,
		Seed:            0x7acef10,
	}
}

// Generate produces the trace, ordered by send time.
func Generate(cfg Config) []Packet {
	rng := crypto.NewSeededRand(cfg.Seed)
	uniform := func() float64 {
		return float64(rng.Uint64()>>11) / float64(1<<53)
	}
	expo := func(rate float64) float64 {
		u := uniform()
		if u <= 0 {
			u = 1e-12
		}
		return -math.Log(u) / rate
	}
	paretoLen := func() int {
		// Bounded Pareto with mean ~= MeanFlowPackets: x_m chosen from the
		// shape so that E[X] = x_m * alpha/(alpha-1) hits the target mean.
		alpha := cfg.Alpha
		if alpha <= 1.01 {
			alpha = 1.01
		}
		xm := float64(cfg.MeanFlowPackets) * (alpha - 1) / alpha
		if xm < 1 {
			xm = 1
		}
		u := uniform()
		if u <= 0 {
			u = 1e-12
		}
		n := int(xm / math.Pow(u, 1/alpha))
		if n < 1 {
			n = 1
		}
		if cfg.MaxFlowPackets > 0 && n > cfg.MaxFlowPackets {
			n = cfg.MaxFlowPackets
		}
		return n
	}

	var out []Packet
	flow := cfg.FlowBase + 1
	tNs := 0.0
	rateNs := cfg.FlowsPerSecond / 1e9
	for {
		tNs += expo(rateNs)
		if uint64(tNs) >= cfg.DurationNs {
			break
		}
		n := paretoLen()
		for i := 0; i < n; i++ {
			at := uint64(tNs) + uint64(i)*cfg.PacketGapNs
			if at >= cfg.DurationNs {
				break
			}
			out = append(out, Packet{AtNs: at, Flow: flow, Size: cfg.PacketBytes})
		}
		flow++
	}
	// Flows interleave; per-flow packets are ordered but the global
	// sequence needs a sort. Stable keeps per-flow order on ties.
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNs < out[j].AtNs })
	return out
}

// Stream is a fork-able seeded flow generator, mirroring
// crypto.Forkable for traffic: Fork(i) derives an independent
// deterministic substream whose contents depend only on (seed, i) —
// never on fork order, sibling forks, or which shard generates first.
// The fleet harness forks one stream per fat-tree pod so per-pod load
// stays bit-reproducible under sharded (parallel) event execution.
type Stream struct {
	cfg Config
}

// NewStream wraps a generator configuration as a fork-able stream.
func NewStream(cfg Config) *Stream { return &Stream{cfg: cfg} }

// Config returns the stream's effective configuration.
func (s *Stream) Config() Config { return s.cfg }

// Fork derives substream i: the seed is mixed with the fork index
// through the same splitmix64 finalizer crypto.SeededRand.Fork uses,
// and the flow-ID space is offset so sibling forks never collide. The
// parent stream is unaffected.
func (s *Stream) Fork(i uint64) *Stream {
	cfg := s.cfg
	z := cfg.Seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	cfg.Seed = z ^ (z >> 31)
	// 2^22 flows of headroom per fork: far above any per-pod flow count
	// the generator can produce within a simulated run.
	cfg.FlowBase = s.cfg.FlowBase + uint32(i+1)<<22
	return &Stream{cfg: cfg}
}

// Generate produces this stream's trace, ordered by send time.
func (s *Stream) Generate() []Packet { return Generate(s.cfg) }

// Stats summarizes a trace.
type Stats struct {
	Packets   int
	Flows     int
	Bytes     uint64
	MaxFlowPk int
}

// Summarize computes trace statistics.
func Summarize(pkts []Packet) Stats {
	flows := make(map[uint32]int)
	var s Stats
	for _, p := range pkts {
		s.Packets++
		s.Bytes += uint64(p.Size)
		flows[p.Flow]++
	}
	s.Flows = len(flows)
	for _, n := range flows {
		if n > s.MaxFlowPk {
			s.MaxFlowPk = n
		}
	}
	return s
}
