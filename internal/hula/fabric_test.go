package hula

import (
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/fabric"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
)

// supCfg is the supervision config used by the integration tests: 1ms
// windows against the 200µs probe cadence.
func supCfg() fabric.Config {
	return fabric.Config{
		SuspectBad:        1,
		QuarantineStrikes: 1,
		SilenceWindows:    3,
		CleanWindows:      2,
		ProbationWindows:  2,
		HoldDown:          2 * time.Millisecond,
		RepairBackoff:     1 * time.Millisecond,
		RepairBackoffMax:  4 * time.Millisecond,
	}
}

func auditCauses(o *obs.Observer) map[string]int {
	causes := make(map[string]int)
	for _, e := range o.Audit.ByType(obs.EvLinkState) {
		causes[e.Cause]++
	}
	return causes
}

// TestOneSidedRolloverSupervisedRepair interrupts a port-key update so one
// link end installs and the other does not, then lets the supervisor find
// the version skew, quarantine the link, repair the key pair under an
// epoch fence, and reinstate the link after probation — while HULA routes
// around the quarantined port.
func TestOneSidedRolloverSupervisedRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	n, err := NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := n.NewSupervisor(supCfg())
	if err != nil {
		t.Fatal(err)
	}

	const dur = 30 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	n.ScheduleSupervisor(sup, time.Millisecond, dur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
		})
	}

	// At 8ms: a port-key update on the s1:1<->s2:1 link loses its final
	// DP-DP leg (s1 installs, s2 never does) — a one-sided rollover.
	n.Net.Sim.At(8*time.Millisecond, func() {
		if err := n.Ctrl.SetLinkTap("s1", 1, func([]byte) []byte { return nil }); err != nil {
			t.Errorf("arm link tap: %v", err)
			return
		}
		_, _ = n.Ctrl.PortKeyUpdate("s2", 1) // interrupted on purpose
		_ = n.Ctrl.SetLinkTap("s1", 1, nil)
		skew, err := n.Ctrl.PortKeySkew("s2", 1)
		if err != nil || skew == nil {
			t.Errorf("sabotage produced no skew (skew=%v err=%v)", skew, err)
		}
	})

	// At 9.5ms the supervisor has quarantined the link (the first tick at
	// or after 8ms sees the skew) and is inside the 2ms hold-down:
	// degraded routing must have moved s1's best hop for ToR 5 off port 1
	// within a few probe rounds.
	n.Net.Sim.At(9500*time.Microsecond, func() {
		snap := sup.Snapshot()
		var st fabric.State
		for _, s := range snap {
			if s.Link.A == "s1" && s.Link.PA == 1 {
				st = s.State
			}
		}
		if st != fabric.Quarantined {
			t.Errorf("link not quarantined during hold-down (state %v)", st)
		}
		hop, err := n.Switches["s1"].Host.SW.RegisterRead(RegBestHop, 5)
		if err != nil {
			t.Errorf("best hop read: %v", err)
			return
		}
		if hop == 1 {
			t.Error("best hop still the quarantined port during degraded routing")
		}
	})

	n.Net.Sim.Run()

	if !sup.AllHealthy() {
		t.Errorf("fabric did not reconverge:\n%+v", sup.Snapshot())
	}
	if skew, err := n.Ctrl.PortKeySkew("s2", 1); err != nil || skew != nil {
		t.Errorf("link still skewed after repair: skew=%v err=%v", skew, err)
	}
	v1, _ := n.Switches["s1"].Host.SW.RegisterRead(core.RegVer, 1)
	v2, _ := n.Switches["s2"].Host.SW.RegisterRead(core.RegVer, 1)
	if v1 != v2 {
		t.Errorf("pa_ver mismatch after repair: s1=%d s2=%d", v1, v2)
	}

	// The rolled-ahead side signs probes s2 cannot verify until the repair
	// lands, so the evidence counters must show rejections.
	bad, _, err := n.Ctrl.ReadRegister("s2", core.RegFbBad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Error("one-sided rollover produced no rejected feedback at the lagging end")
	}

	causes := auditCauses(n.Ctrl.Observer())
	for _, want := range []string{fabric.CauseKeySkew, fabric.CauseHoldDownExpired, fabric.CauseProbationPassed} {
		if causes[want] == 0 {
			t.Errorf("audit missing cause %q (got %v)", want, causes)
		}
	}
	o := n.Ctrl.Observer()
	if got, want := uint64(len(o.Audit.ByType(obs.EvLinkState))), o.Metrics.Counter("fabric.transitions").Load(); got != want {
		t.Errorf("audit has %d link_state events, transitions counter says %d", got, want)
	}
	if n.DstDelivered == 0 {
		t.Error("no data delivered across the degraded fabric")
	}
}

// TestFlappingLinkDegradedRoutingAndReinstatement flaps the s1-s2 link
// mid-probe-cycle with an on-link forger riding the up-phases: every probe
// that survives the flap carries a forged utilization and must be rejected
// (no unauthenticated feedback is ever applied), the supervisor must
// quarantine the link on the rejection evidence, HULA must converge to the
// surviving paths, and after the flap clears the link must pass probation
// and return to service.
func TestFlappingLinkDegradedRoutingAndReinstatement(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	const forged = 0x7777
	n, err := NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := n.NewSupervisor(supCfg())
	if err != nil {
		t.Fatal(err)
	}

	const dur = 60 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	n.ScheduleSupervisor(sup, time.Millisecond, dur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
		})
	}

	link := n.Net.LinkBetween("s1", "s2")
	n.Net.Sim.At(8*time.Millisecond, func() {
		// Toward s1: flap, and forge every probe that gets through.
		_ = link.SetTap("s1", netsim.ChainTaps(
			netsim.LinkFlapTap(6, 20, 0xF1A9),
			ForgeUtilTap(true, forged),
		))
		// Toward s2: flap only (carries data + s1-origin probes).
		_ = link.SetTap("s2", netsim.LinkFlapTap(60, 200, 0xF1A8))
	})
	n.Net.Sim.At(30*time.Millisecond, func() {
		_ = link.SetTap("s1", nil)
		_ = link.SetTap("s2", nil)
	})

	// Mid-attack: the forged value must never sit in best-path state, and
	// routing must have left the flapping link.
	var sawForged, sawPort1 bool
	for at := 12 * time.Millisecond; at <= 29*time.Millisecond; at += time.Millisecond {
		n.Net.Sim.At(at, func() {
			util, _ := n.Switches["s1"].Host.SW.RegisterRead(RegBestUtil, 5)
			if util == forged {
				sawForged = true
			}
		})
	}
	n.Net.Sim.At(25*time.Millisecond, func() {
		hop, _ := n.Switches["s1"].Host.SW.RegisterRead(RegBestHop, 5)
		if hop == 1 {
			sawPort1 = true
		}
	})

	n.Net.Sim.Run()

	if sawForged {
		t.Error("forged probe utilization was applied to best-path state")
	}
	if sawPort1 {
		t.Error("route did not converge off the flapping link")
	}
	if n.TotalAlerts() == 0 {
		t.Error("forged probes raised no alerts")
	}
	if !sup.AllHealthy() {
		t.Errorf("fabric did not reconverge after the flap cleared:\n%+v", sup.Snapshot())
	}
	if skew, err := n.Ctrl.PortKeySkew("s1", 1); err != nil || skew != nil {
		t.Errorf("link keys not paired after recovery: skew=%v err=%v", skew, err)
	}

	causes := auditCauses(n.Ctrl.Observer())
	if causes[fabric.CauseBadDigests] == 0 && causes[fabric.CauseSilence] == 0 {
		t.Errorf("no digest/silence evidence audited (got %v)", causes)
	}
	if causes[fabric.CauseProbationPassed] == 0 {
		t.Errorf("link never passed probation (got %v)", causes)
	}
	o := n.Ctrl.Observer()
	if got, want := uint64(len(o.Audit.ByType(obs.EvLinkState))), o.Metrics.Counter("fabric.transitions").Load(); got != want {
		t.Errorf("audit has %d link_state events, transitions counter says %d", got, want)
	}
	if o.Audit.Evicted() != 0 {
		t.Error("audit ring evicted events")
	}
}
