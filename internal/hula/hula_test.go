package hula

import (
	"fmt"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/pisa"
)

func TestBuildProgramCompiles(t *testing.T) {
	for _, secure := range []bool{true, false} {
		t.Run(fmt.Sprintf("secure=%v", secure), func(t *testing.T) {
			p := DefaultParams(1, 4)
			p.Secure = secure
			prog, _, err := BuildProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pisa.Compile(prog, pisa.BMv2Profile()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildProgramRejectsBadFlowletSlots(t *testing.T) {
	p := DefaultParams(1, 4)
	p.FlowletSlots = 1000
	if _, _, err := BuildProgram(p); err == nil {
		t.Fatal("non-power-of-two flowlet slots must be rejected")
	}
}

func TestProbePacketFramings(t *testing.T) {
	sec, err := ProbePacket(5, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.DecodeMessage(sec)
	if err != nil {
		t.Fatal(err)
	}
	if m.HdrType != core.HdrFeedback || len(m.Aux) != 6 {
		t.Fatalf("secure probe = %+v", m)
	}
	ins, err := ProbePacket(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0] != PTypeInsecureProbe || len(ins) != 7 {
		t.Fatalf("insecure probe framing: % x", ins)
	}
}

// runFig3 drives the Fig. 17 scenario: probes every 200µs from S5, data
// packets from S1 at 1000B / 20µs across rotating flows, for the given
// virtual duration. Returns path shares via s2/s3/s4.
func runFig3(t *testing.T, secure, attacked bool, dur time.Duration) (map[string]float64, *Network) {
	t.Helper()
	n, err := NewFig3Network(secure, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if attacked {
		l := n.Net.LinkBetween("s1", "s4")
		if l == nil {
			t.Fatal("no s1-s4 link")
		}
		// Forge a low utilization, below the loaded paths' real values but
		// different from the idle value (the paper's "10%" against 20-50%
		// on the honest paths).
		if err := l.SetTap("s1", ForgeUtilTap(secure, 7)); err != nil {
			t.Fatal(err)
		}
	}
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	// Bidirectional data: warm up 2ms for first probes, then steady flow
	// arrivals both ways, plus steady background cross-traffic on each
	// path (the honest paths' "20-50%" baseline in the paper's Fig. 3 —
	// a CAIDA replay never leaves a core link fully idle).
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8) // 8-packet flowlets
			pkt++
			if err := n.SendData("s1", 5, flow, 1000); err != nil {
				t.Errorf("send data: %v", err)
			}
			if err := n.SendData("s5", 1, 0x8000_0000|flow, 1000); err != nil {
				t.Errorf("send reverse data: %v", err)
			}
			for i, mid := range []string{"s2", "s3", "s4"} {
				if err := n.SendData(mid, 5, uint32(0x4000_0000+i), 600); err != nil {
					t.Errorf("background: %v", err)
				}
				if err := n.SendData(mid, 1, uint32(0x2000_0000+i), 600); err != nil {
					t.Errorf("background: %v", err)
				}
			}
		})
	}
	n.Net.Sim.Run()
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	return shares, n
}

func TestFig3CleanDistributesAcrossPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	shares, n := runFig3(t, true, false, 100*time.Millisecond)
	for path, s := range shares {
		if s < 0.10 || s > 0.65 {
			t.Errorf("clean run: path via %s carries %.1f%%, want roughly balanced", path, 100*s)
		}
	}
	if n.DstDelivered == 0 {
		t.Fatal("no data delivered to destination")
	}
	if n.TotalAlerts() != 0 {
		t.Errorf("clean run raised %d alerts", n.TotalAlerts())
	}
}

func TestFig3AdversaryHijacksTrafficWithoutP4Auth(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	shares, _ := runFig3(t, false, true, 100*time.Millisecond)
	if shares["s4"] < 0.70 {
		t.Errorf("unprotected fabric: compromised path got %.1f%%, paper reports >70%%", 100*shares["s4"])
	}
}

func TestFig3P4AuthBlocksCompromisedLink(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	shares, n := runFig3(t, true, true, 100*time.Millisecond)
	if shares["s4"] > 0.10 {
		t.Errorf("protected fabric: compromised path still got %.1f%%", 100*shares["s4"])
	}
	// Remaining traffic splits over the two healthy paths.
	if shares["s2"] < 0.25 || shares["s3"] < 0.25 {
		t.Errorf("healthy paths unbalanced: %+v", shares)
	}
	if n.TotalAlerts() == 0 {
		t.Error("no alerts raised for forged probes")
	}
	if n.Switches["s1"].Alerts == 0 {
		t.Error("S1 (the verifying switch) raised no alerts")
	}
}

func TestChainProbeTraversal(t *testing.T) {
	for _, secure := range []bool{false, true} {
		t.Run(fmt.Sprintf("secure=%v", secure), func(t *testing.T) {
			n, err := NewChainNetwork(4, secure, 5*time.Microsecond)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.InjectProbe("s4", 4); err != nil {
				t.Fatal(err)
			}
			n.Net.Sim.Run()
			// The probe must have reached s1: its best hop toward ToR 4 is
			// port 2.
			bh, err := n.Switches["s1"].Host.SW.RegisterRead(RegBestHop, 4)
			if err != nil {
				t.Fatal(err)
			}
			if bh != 2 {
				t.Fatalf("s1 best hop for ToR4 = %d, want 2", bh)
			}
			if n.Net.Sim.Now() <= 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestChainSecureSlowerThanInsecure(t *testing.T) {
	traverse := func(secure bool) time.Duration {
		n, err := NewChainNetwork(6, secure, 5*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		start := n.Net.Sim.Now()
		if err := n.InjectProbe("s6", 6); err != nil {
			t.Fatal(err)
		}
		n.Net.Sim.Run()
		return n.Net.Sim.Now() - start
	}
	ins, sec := traverse(false), traverse(true)
	if sec <= ins {
		t.Errorf("secure traversal %v should exceed insecure %v", sec, ins)
	}
	overhead := float64(sec-ins) / float64(ins)
	if overhead > 0.25 {
		t.Errorf("per-probe P4Auth overhead %.1f%% is out of the paper's small-overhead regime", 100*overhead)
	}
}

func TestProbeUpdatesBestPathOnUtilChange(t *testing.T) {
	// Direct unit test of the best-hop update rules against one switch.
	p := DefaultParams(1, 4)
	p.Secure = false
	sw, err := NewSwitch("u1", p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetProbeFlood(1, nil); err != nil { // consume
		t.Fatal(err)
	}
	if err := sw.SetProbeFlood(2, nil); err != nil {
		t.Fatal(err)
	}
	inject := func(port int, dst uint16, util uint32, at uint64) {
		probe, err := ProbePacket(dst, false)
		if err != nil {
			t.Fatal(err)
		}
		// Overwrite util (big-endian at offset 3 with ptype byte).
		probe[1+ProbeUtilOffset+0] = byte(util >> 24)
		probe[1+ProbeUtilOffset+1] = byte(util >> 16)
		probe[1+ProbeUtilOffset+2] = byte(util >> 8)
		probe[1+ProbeUtilOffset+3] = byte(util)
		sw.Host.SW.SetNow(at)
		if _, err := sw.Host.NetworkPacket(port, probe); err != nil {
			t.Fatal(err)
		}
	}
	// First probe claims the route.
	inject(1, 9, 500, 1000)
	if bh, _ := sw.Host.SW.RegisterRead(RegBestHop, 9); bh != 1 {
		t.Fatalf("best hop = %d, want 1", bh)
	}
	// A better path displaces it.
	inject(2, 9, 100, 2000)
	if bh, _ := sw.Host.SW.RegisterRead(RegBestHop, 9); bh != 2 {
		t.Fatalf("best hop = %d, want 2 after better probe", bh)
	}
	// A worse probe from elsewhere does not.
	inject(1, 9, 400, 3000)
	if bh, _ := sw.Host.SW.RegisterRead(RegBestHop, 9); bh != 2 {
		t.Fatalf("best hop = %d, want 2 still", bh)
	}
	// The best hop's own probes update the utilization (degradation).
	inject(2, 9, 900, 4000)
	if bu, _ := sw.Host.SW.RegisterRead(RegBestUtil, 9); bu != 900 {
		t.Fatalf("best util = %d, want refreshed 900", bu)
	}
	// Now the other path wins again.
	inject(1, 9, 400, 5000)
	if bh, _ := sw.Host.SW.RegisterRead(RegBestHop, 9); bh != 1 {
		t.Fatalf("best hop = %d, want 1 after degradation", bh)
	}
	// Staleness failover: after FailTimeout with no refresh, any probe wins.
	inject(2, 9, 100_000, 5000+p.FailTimeoutNs+1)
	if bh, _ := sw.Host.SW.RegisterRead(RegBestHop, 9); bh != 2 {
		t.Fatalf("best hop = %d, want 2 via staleness failover", bh)
	}
}
