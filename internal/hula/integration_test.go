package hula

import (
	"errors"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/switchos"
)

// TestCombinedCDPandDPDPAttacks drives the full threat model at once on
// one fabric: an on-link MitM forging probes (DP-DP, the paper's Attack 2)
// and a compromised switch OS rewriting register reads (C-DP, Attack 1),
// both against P4Auth.
func TestCombinedCDPandDPDPAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	n, err := NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}

	// DP-DP attack: forge probe utilization on the S4->S1 link.
	if err := n.Net.LinkBetween("s1", "s4").SetTap("s1", ForgeUtilTap(true, 7)); err != nil {
		t.Fatal(err)
	}
	// C-DP attack: s1's switch OS rewrites best_util read responses.
	if err := n.Switches["s1"].Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgAck {
				return data
			}
			m.Reg.Value = 0
			out, _ := m.Encode()
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}

	const dur = 40 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
			for i, mid := range []string{"s2", "s3", "s4"} {
				_ = n.SendData(mid, 5, uint32(0x4000_0000+i), 600)
			}
		})
	}
	n.Net.Sim.Run()

	// DP-DP: the compromised path is blocked.
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	if shares["s4"] > 0.1 {
		t.Errorf("compromised path carried %.1f%%", 100*shares["s4"])
	}
	if n.Switches["s1"].Alerts == 0 {
		t.Error("no probe alerts at s1")
	}

	// C-DP: an authenticated read of the HULA state through the
	// compromised stack is detected.
	if _, err := n.Ctrl.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	_, _, err = n.Ctrl.ReadRegister("s1", RegBestUtil, 5)
	if !errors.Is(err, controller.ErrTampered) {
		t.Fatalf("tampered best_util read not detected: %v", err)
	}

	// And a clean switch's state reads fine through the same API.
	if _, err := n.Ctrl.LocalKeyInit("s2"); err != nil {
		t.Fatal(err)
	}
	v, _, err := n.Ctrl.ReadRegister("s2", RegBestHop, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("s2 best hop for ToR5 = %d, want port 2", v)
	}
}

// TestAuthenticatedReadOfHulaState checks the C-DP reporting path of
// Table I against the live fabric: the controller reads the best-path
// state the probes built.
func TestAuthenticatedReadOfHulaState(t *testing.T) {
	n, err := NewChainNetwork(3, true, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InjectProbe("s3", 3); err != nil {
		t.Fatal(err)
	}
	n.Net.Sim.Run()
	if _, err := n.Ctrl.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	hop, _, err := n.Ctrl.ReadRegister("s1", RegBestHop, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hop != 2 {
		t.Errorf("best hop = %d, want 2", hop)
	}
	util, _, err := n.Ctrl.ReadRegister("s1", RegBestUtil, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = util // idle chain: utilization is whatever the probes carried
}

// TestPortKeyRolloverUnderTraffic rolls every port key mid-run while
// probes and data are in flight: the two-version key scheme (§VI-C) must
// keep every probe verifiable — probes signed under the old version verify
// against the old slot by tag, new ones against the new slot.
func TestPortKeyRolloverUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	n, err := NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const dur = 40 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
			for i, mid := range []string{"s2", "s3", "s4"} {
				_ = n.SendData(mid, 5, uint32(0x4000_0000+i), 600)
			}
		})
	}
	// Roll every link's port key twice, mid-run.
	rolled := 0
	for _, at := range []time.Duration{15 * time.Millisecond, 28 * time.Millisecond} {
		at := at
		n.Net.Sim.At(at, func() {
			for _, l := range []struct {
				sw   string
				port int
			}{{"s1", 1}, {"s1", 2}, {"s1", 3}, {"s2", 2}, {"s3", 2}, {"s4", 2}} {
				if _, err := n.Ctrl.PortKeyUpdate(l.sw, l.port); err != nil {
					t.Errorf("rollover %s:%d at %v: %v", l.sw, l.port, at, err)
					continue
				}
				rolled++
			}
		})
	}
	n.Net.Sim.Run()
	if rolled != 12 {
		t.Fatalf("rolled %d port keys, want 12", rolled)
	}
	if n.TotalAlerts() != 0 {
		t.Fatalf("rollover under traffic raised %d alerts (version tagging broken?)", n.TotalAlerts())
	}
	// Versions advanced on both ends of each link (init=1 + two updates).
	for _, pair := range [][2]struct {
		sw   string
		port int
	}{
		{{"s1", 1}, {"s2", 1}},
		{{"s1", 3}, {"s4", 1}},
	} {
		va, _ := n.Switches[pair[0].sw].Host.SW.RegisterRead(core.RegVer, pair[0].port)
		vb, _ := n.Switches[pair[1].sw].Host.SW.RegisterRead(core.RegVer, pair[1].port)
		if va != 3 || vb != 3 {
			t.Errorf("link %v: versions %d/%d, want 3/3", pair, va, vb)
		}
	}
	// Traffic still flowed and balanced.
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range shares {
		if s < 0.1 {
			t.Errorf("path via %s starved (%.1f%%) after rollovers", p, 100*s)
		}
	}
}

// TestProbeLossAndCorruptionResilience injects packet loss and bit
// corruption on one link: lost probes just age state, corrupted probes
// fail verification (alert + drop), and the fabric keeps forwarding on all
// paths.
func TestProbeLossAndCorruptionResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time fabric run")
	}
	n, err := NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	l := n.Net.LinkBetween("s1", "s3")
	if err := l.SetTap("s1", netsim.ChainTaps(
		netsim.LossTap(0.10, 77),
		netsim.CorruptTap(10, 78),
	)); err != nil {
		t.Fatal(err)
	}
	const dur = 40 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
			for i, mid := range []string{"s2", "s3", "s4"} {
				_ = n.SendData(mid, 5, uint32(0x4000_0000+i), 600)
			}
		})
	}
	n.Net.Sim.Run()
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	// All paths still carry traffic; the lossy path may carry less.
	for p, s := range shares {
		if s < 0.05 {
			t.Errorf("path via %s starved under 10%% probe loss: %.1f%%", p, 100*s)
		}
	}
	// Corrupted probes raised alerts at s1 (bit flips break the digest;
	// a flip confined to the ptype byte merely de-frames the packet, so
	// require at least a handful rather than an exact count).
	if n.Switches["s1"].Alerts < 3 {
		t.Errorf("alerts = %d, expected corrupted probes to be flagged", n.Switches["s1"].Alerts)
	}
}
