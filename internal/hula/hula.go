// Package hula implements HULA (Katta et al., SOSR 2016), the scalable
// in-network load balancer the paper attacks and protects (Fig. 3,
// Fig. 17, Fig. 21). Probes flood from each ToR carrying the maximum link
// utilization seen along their path; every switch tracks the best next
// hop per ToR and routes flowlets along it, entirely in the data plane.
//
// The probe is registered with P4Auth as a DP-DP feedback payload: each
// forwarded replica is re-signed in the egress pipeline with that port's
// key, and arriving probes are digest-verified before they may update the
// best-hop state. A MitM forging probeUtil on a link (the paper's
// Attack 2) is detected, the probe dropped, and an alert raised; the
// compromised link's state ages out and traffic avoids it.
package hula

import (
	"fmt"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// Packet-type tags (the shared ptype header's value).
const (
	PTypeData          = 0xD0
	PTypeInsecureProbe = 0xB0
)

// Header names.
const (
	HdrProbe = "hula"
	HdrData  = "data"
)

// Probe wire layout: dst(16) || util(32), big-endian — so the utilization
// field starts at byte offset 2 of the feedback body.
const ProbeUtilOffset = 2

// Table and action names.
const (
	TableProbeFwd    = "hula_probe_fwd"
	ActionProbeFlood = "hula_probe_flood"
	ActionProbeEnd   = "hula_probe_consume"
)

// Register names.
const (
	RegBestUtil   = "hula_best_util"
	RegBestHop    = "hula_best_hop"
	RegBestTS     = "hula_best_ts"
	RegFlowletHop = "hula_flowlet_hop"
	RegFlowletTS  = "hula_flowlet_ts"
	RegEgUtil     = "hula_eg_util"
	RegEgLast     = "hula_eg_last"
	// RegPortBlock is the degraded-routing mask, one entry per port,
	// written by the fabric supervisor over the authenticated C-DP
	// channel: a nonzero entry quarantines the port. Probes arriving on a
	// blocked port are discarded before they can touch best-path state
	// (fail-closed for authentication), and flowlets pinned to a blocked
	// hop fall back to the current best hop (fail-open for reachability).
	RegPortBlock = "hula_port_block"
)

// Params configures one HULA switch.
type Params struct {
	// SwitchID is this switch's ToR identifier (data with dst==SwitchID is
	// delivered to HostPort).
	SwitchID int
	// Ports is the number of network ports.
	Ports int
	// HostPort delivers self-destined data (0 = drop it).
	HostPort int
	// GeneratorPort injects self-originated probes (bypasses
	// verification, like the hardware packet generator).
	GeneratorPort int
	// MaxTors bounds the per-destination state.
	MaxTors int
	// FlowletSlots is the flowlet table size (power of two).
	FlowletSlots int
	// FlowletGapNs reassigns a flowlet after this idle gap.
	FlowletGapNs uint64
	// FailTimeoutNs ages out a best path that stops being refreshed.
	FailTimeoutNs uint64
	// DecayShiftDiv scales utilization decay: one halving per
	// 2^DecayShiftDiv ns of idle time on the link.
	DecayShiftDiv uint64
	// Secure weaves P4Auth in; probes are then authenticated per hop.
	Secure bool
	// Workers is the ingress worker count behind the switch's batch path
	// (pisa.WithWorkers); 0 or 1 builds the strictly serial switch.
	Workers int
}

// DefaultParams returns a workable configuration.
func DefaultParams(id, ports int) Params {
	return Params{
		SwitchID:      id,
		Ports:         ports,
		HostPort:      ports, // convention: last port faces the host
		GeneratorPort: ports + 1,
		MaxTors:       64,
		FlowletSlots:  1024,
		FlowletGapNs:  200_000,    // 200 µs
		FailTimeoutNs: 10_000_000, // 10 ms
		DecayShiftDiv: 17,         // ~131 µs per halving
		Secure:        true,
	}
}

// Switch is a deployed HULA switch.
type Switch struct {
	Name   string
	Params Params
	Cfg    core.Config
	Host   *switchos.Host
	Node   *deploy.SwitchNode
	// Alerts counts P4Auth alerts raised to the control channel.
	Alerts int
}

// BuildProgram constructs the HULA data plane (optionally with P4Auth).
func BuildProgram(p Params) (*pisa.Program, core.Config, error) {
	if p.FlowletSlots&(p.FlowletSlots-1) != 0 || p.FlowletSlots == 0 {
		return nil, core.Config{}, fmt.Errorf("hula: FlowletSlots must be a power of two, got %d", p.FlowletSlots)
	}
	prog := &pisa.Program{
		Name: fmt.Sprintf("hula_s%d", p.SwitchID),
		Headers: []*pisa.HeaderDef{
			core.PTypeHeader(),
			{Name: HdrProbe, Fields: []pisa.FieldDef{
				{Name: "dst", Width: 16},
				{Name: "util", Width: 32},
			}},
			{Name: HdrData, Fields: []pisa.FieldDef{
				{Name: "dst", Width: 16},
				{Name: "flow", Width: 32},
			}},
		},
		Metadata: []pisa.FieldDef{
			{Name: "h_bu", Width: 32},
			{Name: "h_bh", Width: 16},
			{Name: "h_bt", Width: 48},
			{Name: "h_age", Width: 48},
			{Name: "h_accept", Width: 8},
			{Name: "h_idx", Width: 32},
			{Name: "h_fh", Width: 16},
			{Name: "h_fts", Width: 48},
			{Name: "h_gap", Width: 48},
			{Name: "h_nh", Width: 16},
			{Name: "h_fwd", Width: 8},
			{Name: "h_last", Width: 48},
			{Name: "h_delta", Width: 48},
			{Name: "h_shift", Width: 16},
			{Name: "h_util", Width: 32},
			{Name: "h_blk", Width: 8},
			{Name: "h_bhblk", Width: 8},
		},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select: pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{
					PTypeData: "hula_data_state",
				}},
			{Name: "hula_probe_state", Extract: HdrProbe},
			{Name: "hula_data_state", Extract: HdrData},
		},
		DeparseOrder: []string{core.HdrPType, HdrProbe, HdrData},
		Actions: []*pisa.Action{
			{Name: ActionProbeFlood, Params: []pisa.FieldDef{{Name: "group", Width: 16}},
				Body: []pisa.Op{
					pisa.Multicast(pisa.R(pisa.F(pisa.ParamHeader, "group"))),
					pisa.Set(pisa.F(pisa.MetaHeader, "h_fwd"), pisa.C(1)),
				}},
			{Name: ActionProbeEnd, Body: []pisa.Op{pisa.Drop()}},
		},
		Tables: []*pisa.Table{
			{Name: TableProbeFwd,
				Keys:    []pisa.TableKey{{Field: pisa.F(pisa.MetaHeader, pisa.MetaIngressPort), Match: pisa.MatchExact}},
				Size:    64,
				Actions: []string{ActionProbeFlood, ActionProbeEnd},
				Default: ActionProbeEnd},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegBestUtil, Width: 32, Entries: p.MaxTors},
			{Name: RegBestHop, Width: 16, Entries: p.MaxTors},
			{Name: RegBestTS, Width: 48, Entries: p.MaxTors},
			{Name: RegFlowletHop, Width: 16, Entries: p.FlowletSlots},
			{Name: RegFlowletTS, Width: 48, Entries: p.FlowletSlots},
			{Name: RegEgUtil, Width: 32, Entries: p.Ports + 2},
			{Name: RegEgLast, Width: 48, Entries: p.Ports + 2},
			{Name: RegPortBlock, Width: 8, Entries: p.Ports + 2},
		},
	}

	if !p.Secure {
		prog.Parser[0].Transitions[PTypeInsecureProbe] = "hula_probe_state"
	}

	// HULA's own control blocks go in first: AddToProgram prepends its
	// ingress (verification before HULA sees pa_ok) and appends its egress
	// (signing after HULA finalizes probe.util).
	prog.Control = buildIngress(p)
	prog.EgressControl = buildEgress(p)

	cfg := core.DefaultConfig(p.Ports, core.DigestHalfSipHash)
	if p.Secure {
		if err := core.AddToProgram(prog, cfg, core.Integration{
			Exposed:       []string{RegBestUtil, RegBestHop, RegPortBlock},
			Aux:           []core.AuxPayload{{Header: HdrProbe, ParserState: "hula_probe_state"}},
			GeneratorPort: p.GeneratorPort,
			LinkTelemetry: true,
		}); err != nil {
			return nil, cfg, err
		}
	} else {
		cfg.Insecure = true
	}
	return prog, cfg, nil
}

func m(f string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, f) }

func buildIngress(p Params) []pisa.Op {
	probe := func(f string) pisa.FieldRef { return pisa.F(HdrProbe, f) }
	data := func(f string) pisa.FieldRef { return pisa.F(HdrData, f) }
	now := pisa.R(m(pisa.MetaTimestamp))

	// --- probe path ---
	// Replication decision first: forwarding switches fold in the
	// utilization of the link the probe just crossed, in the *data*
	// direction (data toward the probe's origin leaves this switch on the
	// probe's ingress port, so the estimate is that port's decayed TX
	// utilization; reading the egress-owned register from ingress is legal
	// on the BMv2 target HULA runs on). The consuming ToR decides on the
	// value as carried — which is what lets the paper's on-link MitM fully
	// control the advertised path utilization (Fig. 3).
	probeOps := []pisa.Op{
		pisa.Set(m("h_fwd"), pisa.C(0)),
		pisa.Apply(TableProbeFwd),
		pisa.If(pisa.Eq(pisa.R(m("h_fwd")), pisa.C(1)), []pisa.Op{
			pisa.RegRead(m("h_last"), RegEgLast, pisa.R(m(pisa.MetaIngressPort))),
			pisa.RegRead(m("h_util"), RegEgUtil, pisa.R(m(pisa.MetaIngressPort))),
			pisa.Sub(m("h_delta"), now, pisa.R(m("h_last"))),
			pisa.Shr(m("h_shift"), pisa.R(m("h_delta")), pisa.C(p.DecayShiftDiv)),
			pisa.If(pisa.Gt(pisa.R(m("h_shift")), pisa.C(31)), []pisa.Op{pisa.Set(m("h_shift"), pisa.C(31))}),
			pisa.Shr(m("h_util"), pisa.R(m("h_util")), pisa.R(m("h_shift"))),
			pisa.If(pisa.Lt(pisa.R(probe("util")), pisa.R(m("h_util"))), []pisa.Op{
				pisa.Set(probe("util"), pisa.R(m("h_util"))),
			}),
		}),
		// Best-path update.
		pisa.RegRead(m("h_bu"), RegBestUtil, pisa.R(probe("dst"))),
		pisa.RegRead(m("h_bh"), RegBestHop, pisa.R(probe("dst"))),
		pisa.RegRead(m("h_bt"), RegBestTS, pisa.R(probe("dst"))),
		pisa.Sub(m("h_age"), now, pisa.R(m("h_bt"))),
		pisa.Set(m("h_accept"), pisa.C(0)),
		// Better path.
		pisa.If(pisa.Lt(pisa.R(probe("util")), pisa.R(m("h_bu"))), []pisa.Op{pisa.Set(m("h_accept"), pisa.C(1))}),
		// Refresh from the current best hop (tracks degradation too).
		pisa.If(pisa.Eq(pisa.R(m(pisa.MetaIngressPort)), pisa.R(m("h_bh"))), []pisa.Op{pisa.Set(m("h_accept"), pisa.C(1))}),
		// No route yet.
		pisa.If(pisa.Eq(pisa.R(m("h_bh")), pisa.C(0)), []pisa.Op{pisa.Set(m("h_accept"), pisa.C(1))}),
		// Stale best path (failover, e.g. a blocked compromised link).
		pisa.If(pisa.Gt(pisa.R(m("h_age")), pisa.C(p.FailTimeoutNs)), []pisa.Op{pisa.Set(m("h_accept"), pisa.C(1))}),
		// Quarantined best hop: any surviving path beats it immediately,
		// without waiting for the failure timeout to age it out.
		pisa.RegRead(m("h_bhblk"), RegPortBlock, pisa.R(m("h_bh"))),
		pisa.If(pisa.Gt(pisa.R(m("h_bhblk")), pisa.C(0)), []pisa.Op{pisa.Set(m("h_accept"), pisa.C(1))}),
		pisa.If(pisa.Eq(pisa.R(m("h_accept")), pisa.C(1)), []pisa.Op{
			pisa.RegWrite(RegBestUtil, pisa.R(probe("dst")), pisa.R(probe("util"))),
			pisa.RegWrite(RegBestHop, pisa.R(probe("dst")), pisa.R(m(pisa.MetaIngressPort))),
			pisa.RegWrite(RegBestTS, pisa.R(probe("dst")), now),
		}),
	}
	probeGate := pisa.Valid(HdrProbe)
	// Degraded routing, fail-closed half: a probe arriving on a
	// quarantined port is discarded before it can update best-path state
	// or flood onward, so a link under repair cannot advertise itself.
	guarded := []pisa.Op{
		pisa.RegRead(m("h_blk"), RegPortBlock, pisa.R(m(pisa.MetaIngressPort))),
		pisa.If(pisa.Eq(pisa.R(m("h_blk")), pisa.C(0)), probeOps),
	}
	var probeBlock pisa.Op
	if p.Secure {
		probeBlock = pisa.If(probeGate, []pisa.Op{
			pisa.If(pisa.Eq(pisa.R(m(core.MAuthOK)), pisa.C(1)), guarded),
		})
	} else {
		probeBlock = pisa.If(probeGate, guarded)
	}

	// --- data path: flowlet routing along the best hop ---
	dataOps := []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(data("dst")), pisa.C(uint64(p.SwitchID))),
			[]pisa.Op{pisa.Forward(pisa.C(uint64(p.HostPort)))},
			[]pisa.Op{
				pisa.Hash(m("h_idx"), pisa.HashCRC32, pisa.R(data("flow"))),
				pisa.And(m("h_idx"), pisa.R(m("h_idx")), pisa.C(uint64(p.FlowletSlots-1))),
				pisa.RegRead(m("h_fh"), RegFlowletHop, pisa.R(m("h_idx"))),
				pisa.RegRead(m("h_fts"), RegFlowletTS, pisa.R(m("h_idx"))),
				pisa.Sub(m("h_gap"), now, pisa.R(m("h_fts"))),
				pisa.RegRead(m("h_bh"), RegBestHop, pisa.R(data("dst"))),
				pisa.Set(m("h_nh"), pisa.R(m("h_fh"))),
				pisa.If(pisa.Eq(pisa.R(m("h_fh")), pisa.C(0)), []pisa.Op{pisa.Set(m("h_nh"), pisa.R(m("h_bh")))}),
				pisa.If(pisa.Gt(pisa.R(m("h_gap")), pisa.C(p.FlowletGapNs)), []pisa.Op{pisa.Set(m("h_nh"), pisa.R(m("h_bh")))}),
				// Degraded routing, fail-open half: a flowlet pinned to a
				// quarantined hop is re-steered to the best hop mid-flowlet
				// (reachability wins for data; only feedback fails closed).
				pisa.RegRead(m("h_blk"), RegPortBlock, pisa.R(m("h_nh"))),
				pisa.If(pisa.Gt(pisa.R(m("h_blk")), pisa.C(0)), []pisa.Op{pisa.Set(m("h_nh"), pisa.R(m("h_bh")))}),
				pisa.RegWrite(RegFlowletHop, pisa.R(m("h_idx")), pisa.R(m("h_nh"))),
				pisa.RegWrite(RegFlowletTS, pisa.R(m("h_idx")), now),
				pisa.Forward(pisa.R(m("h_nh"))),
			}),
	}
	return []pisa.Op{probeBlock, pisa.If(pisa.Valid(HdrData), dataOps)}
}

func buildEgress(p Params) []pisa.Op {
	now := pisa.R(m(pisa.MetaTimestamp))
	eg := pisa.R(m(pisa.MetaEgressPort))

	clampShift := []pisa.Op{
		pisa.Shr(m("h_shift"), pisa.R(m("h_delta")), pisa.C(p.DecayShiftDiv)),
		pisa.If(pisa.Gt(pisa.R(m("h_shift")), pisa.C(31)), []pisa.Op{pisa.Set(m("h_shift"), pisa.C(31))}),
	}

	// Data packets charge the egress link's utilization estimate
	// (decay-then-add, shifts only — the PISA-feasible EWMA).
	dataOps := []pisa.Op{
		pisa.RegRead(m("h_last"), RegEgLast, eg),
		pisa.RegWrite(RegEgLast, eg, now),
		pisa.Sub(m("h_delta"), now, pisa.R(m("h_last"))),
	}
	dataOps = append(dataOps, clampShift...)
	dataOps = append(dataOps,
		pisa.RegRead(m("h_util"), RegEgUtil, eg),
		pisa.Shr(m("h_util"), pisa.R(m("h_util")), pisa.R(m("h_shift"))),
		pisa.Add(m("h_util"), pisa.R(m("h_util")), pisa.R(m(pisa.MetaPktLen))),
		pisa.RegWrite(RegEgUtil, eg, pisa.R(m("h_util"))),
	)

	return []pisa.Op{
		pisa.If(pisa.Valid(HdrData), []pisa.Op{
			pisa.If(pisa.Ne(eg, pisa.C(pisa.CPUPort)), dataOps),
		}),
	}
}

// NewSwitch builds and boots a HULA switch on the BMv2 profile (the
// paper's target for the HULA experiments).
func NewSwitch(name string, p Params, randSeed uint64) (*Switch, error) {
	prog, cfg, err := BuildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile(),
		pisa.WithRandom(crypto.NewSeededRand(randSeed)), pisa.WithWorkers(p.Workers))
	if err != nil {
		return nil, err
	}
	host := switchos.NewHost(name, sw, switchos.DefaultCosts())
	if p.Secure {
		if err := core.Boot(sw, cfg); err != nil {
			return nil, err
		}
		// Expose the HULA state for authenticated C-DP reads (the paper's
		// Table I visibility into best-path state), the degraded-routing
		// mask for supervisor writes, and the per-port feedback verdict
		// counters the link supervisor polls.
		exposed := []string{RegBestUtil, RegBestHop, RegPortBlock, core.RegFbOK, core.RegFbBad}
		if err := core.InstallRegMap(sw, host.Info, exposed); err != nil {
			return nil, err
		}
	}
	s := &Switch{Name: name, Params: p, Cfg: cfg, Host: host}
	s.Node = &deploy.SwitchNode{Host: host, OnPacketIn: func(data []byte) {
		if msg, err := core.DecodeMessage(data); err == nil && msg.HdrType == core.HdrAlert {
			s.Alerts++
		}
	}}
	return s, nil
}

// SetProbeFlood configures probe replication: probes arriving on
// ingressPort flood to outPorts (empty = consume).
func (s *Switch) SetProbeFlood(ingressPort int, outPorts []int) error {
	if len(outPorts) == 0 {
		return s.Host.SW.InsertEntry(TableProbeFwd, pisa.Entry{
			Key:    []pisa.KeyMatch{pisa.EKey(uint64(ingressPort))},
			Action: ActionProbeEnd,
		})
	}
	group := uint64(0x100 + ingressPort)
	s.Host.SW.SetMulticastGroup(group, outPorts)
	return s.Host.SW.InsertEntry(TableProbeFwd, pisa.Entry{
		Key:    []pisa.KeyMatch{pisa.EKey(uint64(ingressPort))},
		Action: ActionProbeFlood,
		Params: []uint64{group},
	})
}

var probeDef = &pisa.HeaderDef{Name: HdrProbe, Fields: []pisa.FieldDef{
	{Name: "dst", Width: 16}, {Name: "util", Width: 32},
}}

var dataDef = &pisa.HeaderDef{Name: HdrData, Fields: []pisa.FieldDef{
	{Name: "dst", Width: 16}, {Name: "flow", Width: 32},
}}

// ProbePacket crafts an origin probe for dst. In secure mode it is a
// P4Auth feedback message with a zero digest — it must enter through the
// generator port, which bypasses verification; egress signs it.
func ProbePacket(dst uint16, secure bool) ([]byte, error) {
	body, err := pisa.PackHeader(probeDef, []uint64{uint64(dst), 0})
	if err != nil {
		return nil, err
	}
	if secure {
		m := &core.Message{
			Header: core.Header{HdrType: core.HdrFeedback, MsgType: core.MsgProbe},
			Aux:    body,
		}
		return m.Encode()
	}
	return append([]byte{PTypeInsecureProbe}, body...), nil
}

// DataPacket crafts a data packet for dst with a flow identifier and
// payload size.
func DataPacket(dst uint16, flow uint32, payloadBytes int) ([]byte, error) {
	body, err := pisa.PackHeader(dataDef, []uint64{uint64(dst), uint64(flow)})
	if err != nil {
		return nil, err
	}
	pkt := append([]byte{PTypeData}, body...)
	return append(pkt, make([]byte, payloadBytes)...), nil
}
