package hula

// Wiring between the pure fabric.Supervisor state machines and a deployed
// HULA network: evidence comes from authenticated C-DP reads of the
// per-port feedback verdict counters and the port-key version registers,
// blocking writes the hula_port_block degraded-routing mask on both link
// ends, and repair delegates to the controller's epoch-fenced
// RepairPortKey.

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/fabric"
)

// NewSupervisor builds a link-health supervisor over every switch-switch
// adjacency the controller knows, wired to this network's data plane and
// clocked by the simulator. Call Tick (or ScheduleSupervisor) to run it.
func (n *Network) NewSupervisor(cfg fabric.Config) (*fabric.Supervisor, error) {
	if !n.Secure {
		return nil, fmt.Errorf("hula: link supervision requires a secure fabric")
	}
	hooks := fabric.Hooks{
		Collect: n.collectLinkEvidence,
		Block:   func(l fabric.LinkID) error { return n.setPortBlock(l, 1) },
		Unblock: func(l fabric.LinkID) error { return n.setPortBlock(l, 0) },
		Repair: func(l fabric.LinkID, epoch uint64) error {
			_, err := n.Ctrl.RepairPortKey(l.A, l.PA, epoch)
			if err != nil && errors.Is(err, controller.ErrStaleEpoch) {
				return fmt.Errorf("%w: %v", fabric.ErrStaleRepair, err)
			}
			return err
		},
	}
	sup, err := fabric.New(cfg, n.Net.Sim.Now, hooks, n.Ctrl.Observer())
	if err != nil {
		return nil, err
	}
	sup.SetEpochSource(func(l fabric.LinkID) (uint64, error) {
		return n.Ctrl.NextRepairEpoch(l.A, l.PA)
	})
	for _, link := range n.Ctrl.Links() {
		sup.Register(fabric.LinkID{
			A: link[0].Switch, PA: link[0].Port,
			B: link[1].Switch, PB: link[1].Port,
		})
	}
	return sup, nil
}

// collectLinkEvidence sums both ends' feedback verdict counters for the
// link's ports and checks key-version alignment, all over the
// authenticated C-DP channel.
func (n *Network) collectLinkEvidence(l fabric.LinkID) (fabric.Evidence, error) {
	var ev fabric.Evidence
	for _, end := range [2]struct {
		sw   string
		port int
	}{{l.A, l.PA}, {l.B, l.PB}} {
		ok, _, err := n.Ctrl.ReadRegister(end.sw, core.RegFbOK, uint32(end.port))
		if err != nil {
			return ev, err
		}
		bad, _, err := n.Ctrl.ReadRegister(end.sw, core.RegFbBad, uint32(end.port))
		if err != nil {
			return ev, err
		}
		ev.OKFeedback += ok
		ev.BadFeedback += bad
	}
	skew, err := n.Ctrl.PortKeySkew(l.A, l.PA)
	if err != nil {
		return ev, err
	}
	ev.KeySkew = skew != nil
	return ev, nil
}

// setPortBlock writes the degraded-routing mask for the link's port on
// both ends (authenticated writes; the data plane enforces the mask).
func (n *Network) setPortBlock(l fabric.LinkID, v uint64) error {
	if _, err := n.Ctrl.WriteRegister(l.A, RegPortBlock, uint32(l.PA), v); err != nil {
		return err
	}
	_, err := n.Ctrl.WriteRegister(l.B, RegPortBlock, uint32(l.PB), v)
	return err
}

// ScheduleSupervisor runs sup.Tick every period of virtual time until the
// given horizon (same scheduling pattern as ScheduleProbes).
func (n *Network) ScheduleSupervisor(sup *fabric.Supervisor, period, until time.Duration) {
	var tick func()
	next := period
	tick = func() {
		sup.Tick()
		next += period
		if next <= until {
			n.Net.Sim.At(next, tick)
		}
	}
	n.Net.Sim.At(period, tick)
}
