package hula

import (
	"encoding/binary"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/netsim"
)

// Network is a deployed HULA fabric over the simulator.
type Network struct {
	Net      *netsim.Network
	Switches map[string]*Switch
	Ctrl     *controller.Controller
	Secure   bool
	// DstDelivered counts data packets arriving at the destination host.
	DstDelivered uint64
}

// NewFig3Network builds the paper's Fig. 3 topology: S1 reaches S5 over
// three two-hop paths via S2, S3, and S4. Data flows S1 -> S5; probes
// originate at S5 and flood toward S1. Port map per switch: see the paper
// figure; hosts hang off port 4 of S1 and S5.
//
//	S1 --(p1)-- S2 --(p2)-- S5(p1)
//	S1 --(p2)-- S3 --(p2)-- S5(p2)
//	S1 --(p3)-- S4 --(p2)-- S5(p3)
func NewFig3Network(secure bool, linkBandwidthBps float64, linkDelay time.Duration) (*Network, error) {
	n := &Network{
		Net:      netsim.NewNetwork(),
		Switches: make(map[string]*Switch),
		Ctrl:     controller.New(crypto.NewSeededRand(0xF16_3)),
		Secure:   secure,
	}
	for id := 1; id <= 5; id++ {
		name := fmt.Sprintf("s%d", id)
		p := DefaultParams(id, 4)
		p.Secure = secure
		sw, err := NewSwitch(name, p, uint64(0xCAFE+id))
		if err != nil {
			return nil, err
		}
		n.Switches[name] = sw
		n.Net.AddNode(name, sw.Node)
		if err := n.Ctrl.Register(name, sw.Host, sw.Cfg, 50*time.Microsecond); err != nil {
			return nil, err
		}
	}
	n.Net.AddNode("src", nil)
	n.Net.AddNode("dst", netsim.HandlerFunc(func(_ *netsim.Network, _ *netsim.Node, _ int, _ []byte) {
		n.DstDelivered++
	}))

	links := []struct {
		a  string
		pa int
		b  string
		pb int
	}{
		{"s1", 1, "s2", 1},
		{"s1", 2, "s3", 1},
		{"s1", 3, "s4", 1},
		{"s2", 2, "s5", 1},
		{"s3", 2, "s5", 2},
		{"s4", 2, "s5", 3},
	}
	for _, l := range links {
		n.Net.MustConnect(l.a, l.pa, l.b, l.pb, linkDelay, linkBandwidthBps)
		if err := n.Ctrl.ConnectSwitches(l.a, l.pa, l.b, l.pb, linkDelay); err != nil {
			return nil, err
		}
	}
	n.Net.MustConnect("s1", 4, "src", 1, linkDelay, 0)
	n.Net.MustConnect("s5", 4, "dst", 1, linkDelay, 0)

	// Probe replication, both directions: each ToR originates via its
	// generator port; middle switches relay across; ToRs consume arriving
	// probes.
	s5 := n.Switches["s5"]
	if err := s5.SetProbeFlood(s5.Params.GeneratorPort, []int{1, 2, 3}); err != nil {
		return nil, err
	}
	s1 := n.Switches["s1"]
	if err := s1.SetProbeFlood(s1.Params.GeneratorPort, []int{1, 2, 3}); err != nil {
		return nil, err
	}
	for _, mid := range []string{"s2", "s3", "s4"} {
		if err := n.Switches[mid].SetProbeFlood(2, []int{1}); err != nil {
			return nil, err
		}
		if err := n.Switches[mid].SetProbeFlood(1, []int{2}); err != nil {
			return nil, err
		}
	}
	for port := 1; port <= 3; port++ {
		if err := n.Switches["s1"].SetProbeFlood(port, nil); err != nil {
			return nil, err
		}
		if err := n.Switches["s5"].SetProbeFlood(port, nil); err != nil {
			return nil, err
		}
	}

	if secure {
		if _, err := n.Ctrl.InitAllKeys(); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// NewChainNetwork builds a linear chain s1 - s2 - ... - sN (Fig. 21's
// multi-hop probe traversal). Probes originate at sN (dst = N) and travel
// to s1; each hop has port 1 toward s1's side and port 2 toward sN's side.
func NewChainNetwork(hops int, secure bool, linkDelay time.Duration) (*Network, error) {
	if hops < 2 {
		return nil, fmt.Errorf("hula: chain needs at least 2 switches, got %d", hops)
	}
	n := &Network{
		Net:      netsim.NewNetwork(),
		Switches: make(map[string]*Switch),
		Ctrl:     controller.New(crypto.NewSeededRand(0xC4A1)),
		Secure:   secure,
	}
	for id := 1; id <= hops; id++ {
		name := fmt.Sprintf("s%d", id)
		p := DefaultParams(id, 2)
		p.Secure = secure
		sw, err := NewSwitch(name, p, uint64(0xBEEF+id))
		if err != nil {
			return nil, err
		}
		n.Switches[name] = sw
		n.Net.AddNode(name, sw.Node)
		if err := n.Ctrl.Register(name, sw.Host, sw.Cfg, 50*time.Microsecond); err != nil {
			return nil, err
		}
	}
	for id := 1; id < hops; id++ {
		a, b := fmt.Sprintf("s%d", id), fmt.Sprintf("s%d", id+1)
		n.Net.MustConnect(a, 2, b, 1, linkDelay, 0)
		if err := n.Ctrl.ConnectSwitches(a, 2, b, 1, linkDelay); err != nil {
			return nil, err
		}
	}
	// Probes: sN's generator floods to port 1 (toward s1); intermediate
	// switches relay port 2 -> port 1; s1 consumes.
	last := n.Switches[fmt.Sprintf("s%d", hops)]
	if err := last.SetProbeFlood(last.Params.GeneratorPort, []int{1}); err != nil {
		return nil, err
	}
	for id := 2; id < hops; id++ {
		if err := n.Switches[fmt.Sprintf("s%d", id)].SetProbeFlood(2, []int{1}); err != nil {
			return nil, err
		}
	}
	if err := n.Switches["s1"].SetProbeFlood(2, nil); err != nil {
		return nil, err
	}
	if secure {
		if _, err := n.Ctrl.InitAllKeys(); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// InjectProbe originates one probe at the named switch's generator port
// for destination dst, at the current virtual time.
func (n *Network) InjectProbe(sw string, dst uint16) error {
	s, ok := n.Switches[sw]
	if !ok {
		return fmt.Errorf("hula: unknown switch %q", sw)
	}
	pkt, err := ProbePacket(dst, n.Secure)
	if err != nil {
		return err
	}
	s.Node.Inject(n.Net, n.Net.Node(sw), s.Params.GeneratorPort, pkt)
	return nil
}

// ScheduleProbes schedules periodic probe origination from sw for dst.
func (n *Network) ScheduleProbes(sw string, dst uint16, period, until time.Duration) {
	var tick func()
	next := period
	tick = func() {
		_ = n.InjectProbe(sw, dst)
		next += period
		if next <= until {
			n.Net.Sim.At(next, tick)
		}
	}
	n.Net.Sim.At(period, tick)
}

// SendData injects one data packet at the source switch's host port.
func (n *Network) SendData(sw string, dst uint16, flow uint32, size int) error {
	s, ok := n.Switches[sw]
	if !ok {
		return fmt.Errorf("hula: unknown switch %q", sw)
	}
	pkt, err := DataPacket(dst, flow, size)
	if err != nil {
		return err
	}
	s.Node.Inject(n.Net, n.Net.Node(sw), s.Params.HostPort, pkt)
	return nil
}

// PathShares reports the fraction of data bytes S1 pushed onto each of
// its uplinks (the Fig. 16/17 metric).
func (n *Network) PathShares(from string, peers []string) (map[string]float64, error) {
	total := uint64(0)
	bytes := make(map[string]uint64, len(peers))
	for _, p := range peers {
		l := n.Net.LinkBetween(from, p)
		if l == nil {
			return nil, fmt.Errorf("hula: no link %s-%s", from, p)
		}
		b, _, err := l.TxStats(from)
		if err != nil {
			return nil, err
		}
		bytes[p] = b
		total += b
	}
	shares := make(map[string]float64, len(peers))
	for p, b := range bytes {
		if total == 0 {
			shares[p] = 0
			continue
		}
		shares[p] = float64(b) / float64(total)
	}
	return shares, nil
}

// ForgeUtilTap returns a link tap that rewrites the probe utilization
// field to `forged`, handling both the authenticated and the bare probe
// framing (the paper's Fig. 3 MitM).
func ForgeUtilTap(secure bool, forged uint32) netsim.Tap {
	return func(data []byte) []byte {
		if secure {
			m, err := core.DecodeMessage(data)
			if err != nil || m.HdrType != core.HdrFeedback || len(m.Aux) < ProbeUtilOffset+4 {
				return data
			}
			binary.BigEndian.PutUint32(m.Aux[ProbeUtilOffset:], forged)
			out, err := m.Encode()
			if err != nil {
				return data
			}
			return out
		}
		if len(data) < 1 || data[0] != PTypeInsecureProbe {
			return data
		}
		if len(data) < 1+ProbeUtilOffset+4 {
			return data
		}
		binary.BigEndian.PutUint32(data[1+ProbeUtilOffset:], forged)
		return data
	}
}

// TotalAlerts sums P4Auth alerts across the fabric.
func (n *Network) TotalAlerts() int {
	total := 0
	for _, s := range n.Switches {
		total += s.Alerts
	}
	return total
}
