// Package attacker implements the paper's adversary models (§II-A):
//
//   - a control-plane MitM — the LD_PRELOAD-style backdoor in the switch
//     software stack that rewrites register operations, their responses,
//     and PacketOut/PacketIn traffic between the gRPC agent and the
//     driver;
//   - a link MitM — an on-path adversary (compromised neighbor rerouting
//     feedback through its host) that rewrites DP-DP messages in flight;
//   - replay, digest brute-force, and alert-flood (DoS) adversaries used
//     by the security-analysis experiments (§VIII).
//
// Each adversary is a constructor producing the hook or tap to install,
// plus counters of what it touched.
package attacker

import (
	"encoding/binary"
	"sync"

	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/switchos"
)

// CtrlPlaneMitM rewrites C-DP traffic inside the switch software stack.
type CtrlPlaneMitM struct {
	mu sync.Mutex
	// RewriteRegWrite, when set, maps an intended write value to the
	// attacker's value for the named register.
	RewriteRegWrite func(reg string, index uint32, value uint64) uint64
	// RewriteReadResult, when set, maps a read result to a forged one.
	RewriteReadResult func(reg string, index uint32, value uint64) uint64
	// RewriteMessage, when set, mutates decoded P4Auth messages crossing
	// the stack in either direction (PacketOut down, PacketIn up);
	// returning false leaves the message untouched.
	RewriteMessage func(m *core.Message, toDataPlane bool) bool

	Rewritten int // operations altered
	Seen      int // operations observed
}

// Hooks produces the interposition hooks to install on a switchos.Host
// boundary.
func (a *CtrlPlaneMitM) Hooks() *switchos.Hooks {
	rewritePacket := func(data []byte, down bool) []byte {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.Seen++
		if a.RewriteMessage == nil {
			return data
		}
		m, err := core.DecodeMessage(data)
		if err != nil {
			return data // not a P4Auth message; pass through
		}
		if !a.RewriteMessage(m, down) {
			return data
		}
		out, err := m.Encode()
		if err != nil {
			return data
		}
		a.Rewritten++
		return out
	}
	return &switchos.Hooks{
		OnRegOp: func(op *switchos.RegOp) {
			a.mu.Lock()
			defer a.mu.Unlock()
			a.Seen++
			if op.IsWrite && a.RewriteRegWrite != nil {
				nv := a.RewriteRegWrite(op.Name, op.Index, op.Value)
				if nv != op.Value {
					op.Value = nv
					a.Rewritten++
				}
			}
		},
		OnRegResult: func(op *switchos.RegOp, value *uint64) {
			a.mu.Lock()
			defer a.mu.Unlock()
			a.Seen++
			if a.RewriteReadResult != nil {
				nv := a.RewriteReadResult(op.Name, op.Index, *value)
				if nv != *value {
					*value = nv
					a.Rewritten++
				}
			}
		},
		OnPacketOut: func(data []byte) []byte { return rewritePacket(data, true) },
		OnPacketIn:  func(data []byte) []byte { return rewritePacket(data, false) },
	}
}

// LinkMitM rewrites DP-DP messages crossing a link (Fig. 3's adversary on
// the S4-S1 link).
type LinkMitM struct {
	mu sync.Mutex
	// Rewrite mutates decoded P4Auth messages in flight; returning false
	// passes the original through. Non-P4Auth packets always pass.
	Rewrite func(m *core.Message) bool
	// FixDigest, when true, models a naive attacker who recomputes a
	// digest with a guessed key after tampering.
	GuessKey   uint64
	FixDigest  bool
	DigestAlgo interface {
		Sum32(key uint64, data []byte) uint32
	}

	Seen      int
	Rewritten int
}

// Tap produces the netsim link tap to install.
func (a *LinkMitM) Tap() netsim.Tap {
	return func(data []byte) []byte {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.Seen++
		if a.Rewrite == nil {
			return data
		}
		m, err := core.DecodeMessage(data)
		if err != nil {
			return data
		}
		if !a.Rewrite(m) {
			return data
		}
		if a.FixDigest && a.DigestAlgo != nil {
			_ = m.Sign(a.DigestAlgo, a.GuessKey)
		}
		out, err := m.Encode()
		if err != nil {
			return data
		}
		a.Rewritten++
		return out
	}
}

// ProbeUtilRewriter builds a LinkMitM rewrite that forges the utilization
// field in HULA-style probes (HdrFeedback aux bodies). The utilization is
// assumed to be the big-endian 32-bit field at byte offset utilOffset of
// the aux body.
func ProbeUtilRewriter(utilOffset int, forged uint32) func(*core.Message) bool {
	return func(m *core.Message) bool {
		if m.HdrType != core.HdrFeedback || len(m.Aux) < utilOffset+4 {
			return false
		}
		binary.BigEndian.PutUint32(m.Aux[utilOffset:], forged)
		return true
	}
}

// Replayer records P4Auth messages from a link and replays them later.
type Replayer struct {
	mu       sync.Mutex
	Recorded [][]byte
	// Match selects which messages to record.
	Match func(m *core.Message) bool
}

// Tap returns a passive recording tap.
func (r *Replayer) Tap() netsim.Tap {
	return func(data []byte) []byte {
		r.mu.Lock()
		defer r.mu.Unlock()
		if m, err := core.DecodeMessage(data); err == nil {
			if r.Match == nil || r.Match(m) {
				cp := make([]byte, len(data))
				copy(cp, data)
				r.Recorded = append(r.Recorded, cp)
			}
		}
		return data
	}
}

// Take removes and returns the oldest recorded message, or nil.
func (r *Replayer) Take() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Recorded) == 0 {
		return nil
	}
	m := r.Recorded[0]
	r.Recorded = r.Recorded[1:]
	return m
}

// BruteForcer enumerates digests for a forged message (§VIII "Digest
// size"): each wrong guess trips an alert, which is the defence.
type BruteForcer struct {
	// Forged is the message to authenticate by guessing.
	Forged *core.Message
}

// Guesses yields the forged message signed with successive digest guesses
// starting at `start`, up to n messages.
func (b *BruteForcer) Guesses(start uint32, n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m := *b.Forged
		if b.Forged.Reg != nil {
			reg := *b.Forged.Reg
			m.Reg = &reg
		}
		if b.Forged.Kx != nil {
			kx := *b.Forged.Kx
			m.Kx = &kx
		}
		m.Digest = start + uint32(i)
		enc, err := m.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, enc)
	}
	return out, nil
}
