package attacker

import (
	"errors"
	"testing"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

func buildVictim(t *testing.T, insecure bool) (*deploy.Switch, *controller.Controller) {
	t.Helper()
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:     "victim",
		Ports:    4,
		Insecure: insecure,
		Registers: []*pisa.RegisterDef{
			{Name: "state", Width: 64, Entries: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := controller.New(crypto.NewSeededRand(0xA77))
	if err := c.Register("victim", sw.Host, sw.Cfg, 0); err != nil {
		t.Fatal(err)
	}
	if !insecure {
		if _, err := c.LocalKeyInit("victim"); err != nil {
			t.Fatal(err)
		}
	}
	return sw, c
}

func TestCtrlPlaneMitMRegWriteRewrite(t *testing.T) {
	sw, c := buildVictim(t, true)
	mitm := &CtrlPlaneMitM{
		RewriteRegWrite: func(reg string, index uint32, value uint64) uint64 {
			if reg == "state" {
				return 666
			}
			return value
		},
	}
	// Name-keyed rewrites need the SDK-Driver boundary: above the SDK the
	// register is still a p4info ID.
	if err := sw.Host.Install(switchos.BoundarySDKDriver, mitm.Hooks()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegisterAPI("victim", "state", 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.Host.SW.RegisterRead("state", 0); v != 666 {
		t.Fatalf("state = %d, want attacker's 666", v)
	}
	if mitm.Rewritten == 0 || mitm.Seen == 0 {
		t.Errorf("counters: %+v", mitm)
	}
}

func TestCtrlPlaneMitMMessageRewriteCaughtByP4Auth(t *testing.T) {
	sw, c := buildVictim(t, false)
	mitm := &CtrlPlaneMitM{
		RewriteMessage: func(m *core.Message, toDataPlane bool) bool {
			if toDataPlane && m.Reg != nil && m.MsgType == core.MsgWriteReq {
				m.Reg.Value = 666
				return true
			}
			return false
		},
	}
	if err := sw.Host.Install(switchos.BoundarySDKDriver, mitm.Hooks()); err != nil {
		t.Fatal(err)
	}
	_, err := c.WriteRegister("victim", "state", 0, 1)
	if !errors.Is(err, controller.ErrTampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
	if v, _ := sw.Host.SW.RegisterRead("state", 0); v != 0 {
		t.Fatalf("tampered write applied: %d", v)
	}
	if mitm.Rewritten != 1 {
		t.Errorf("rewritten = %d", mitm.Rewritten)
	}
}

func TestCtrlPlaneMitMReadResultRewrite(t *testing.T) {
	sw, c := buildVictim(t, true)
	if err := sw.Host.SW.RegisterWrite("state", 2, 50); err != nil {
		t.Fatal(err)
	}
	mitm := &CtrlPlaneMitM{
		RewriteReadResult: func(reg string, index uint32, value uint64) uint64 { return value * 10 },
	}
	if err := sw.Host.Install(switchos.BoundaryAgentSDK, mitm.Hooks()); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.ReadRegisterAPI("victim", "state", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 500 {
		t.Fatalf("controller saw %d, want inflated 500", v)
	}
}

func TestProbeUtilRewriter(t *testing.T) {
	aux := []byte{0x00, 0x05, 0x00, 0x00, 0x01, 0x00} // dst=5, util=256
	m := &core.Message{Header: core.Header{HdrType: core.HdrFeedback}, Aux: aux}
	rw := ProbeUtilRewriter(2, 7)
	if !rw(m) {
		t.Fatal("rewriter should hit feedback messages")
	}
	if m.Aux[2] != 0 || m.Aux[3] != 0 || m.Aux[4] != 0 || m.Aux[5] != 7 {
		t.Fatalf("util bytes = % x", m.Aux[2:6])
	}
	// Non-feedback untouched.
	reg := &core.Message{Header: core.Header{HdrType: core.HdrRegister}, Reg: &core.RegPayload{}}
	if rw(reg) {
		t.Fatal("rewriter must skip register messages")
	}
	// Short aux untouched.
	short := &core.Message{Header: core.Header{HdrType: core.HdrFeedback}, Aux: []byte{1, 2}}
	if rw(short) {
		t.Fatal("rewriter must skip short bodies")
	}
}

func TestLinkMitMTapRewritesOnlyP4Auth(t *testing.T) {
	mitm := &LinkMitM{
		Rewrite: func(m *core.Message) bool {
			if m.Kx != nil {
				m.Kx.PK = 0
				return true
			}
			return false
		},
	}
	tap := mitm.Tap()

	// Non-P4Auth bytes pass through untouched.
	raw := []byte{0xD0, 1, 2, 3}
	if got := tap(raw); &got[0] != &raw[0] {
		t.Error("non-P4Auth packet should pass through unmodified")
	}

	// A kx message gets rewritten.
	m := &core.Message{
		Header: core.Header{HdrType: core.HdrKeyExch, MsgType: core.MsgADHKD1},
		Kx:     &core.KxPayload{PK: 0xFFFF},
	}
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out := tap(enc)
	dec, err := core.DecodeMessage(out)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kx.PK != 0 {
		t.Fatal("kx PK not rewritten")
	}
	if mitm.Rewritten != 1 || mitm.Seen != 2 {
		t.Errorf("counters: rewritten=%d seen=%d", mitm.Rewritten, mitm.Seen)
	}
}

func TestLinkMitMFixDigestStillFailsVerification(t *testing.T) {
	// A naive attacker recomputing the digest with a guessed key still
	// fails against the real key.
	dig := crypto.NewHalfSipHashDigester()
	const realKey = 0x1234
	m := &core.Message{
		Header: core.Header{HdrType: core.HdrFeedback, MsgType: core.MsgProbe},
		Aux:    []byte{0, 5, 0, 0, 0, 9},
	}
	if err := m.Sign(dig, realKey); err != nil {
		t.Fatal(err)
	}
	enc, _ := m.Encode()

	mitm := &LinkMitM{
		Rewrite:    func(mm *core.Message) bool { mm.Aux[5] = 1; return true },
		FixDigest:  true,
		GuessKey:   0x9999,
		DigestAlgo: dig,
	}
	out := mitm.Tap()(enc)
	dec, err := core.DecodeMessage(out)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Verify(dig, realKey) {
		t.Fatal("forged digest verified under the real key")
	}
	// But it does verify under the guess — showing the attack is a key
	// problem, not an encoding problem.
	if !dec.Verify(dig, 0x9999) {
		t.Fatal("attacker's own digest should be self-consistent")
	}
}

func TestReplayerRecordsAndTakes(t *testing.T) {
	r := &Replayer{Match: func(m *core.Message) bool { return m.MsgType == core.MsgWriteReq }}
	tap := r.Tap()
	w := &core.Message{Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq}, Reg: &core.RegPayload{Value: 9}}
	rd := &core.Message{Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgReadReq}, Reg: &core.RegPayload{}}
	wb, _ := w.Encode()
	rb, _ := rd.Encode()
	tap(wb)
	tap(rb)
	if len(r.Recorded) != 1 {
		t.Fatalf("recorded %d, want only the write", len(r.Recorded))
	}
	got := r.Take()
	if got == nil {
		t.Fatal("take returned nil")
	}
	if r.Take() != nil {
		t.Fatal("second take should be nil")
	}
	// The recording must be a copy, not an alias.
	wb[0] = 0xFF
	if got[0] == 0xFF {
		t.Fatal("recording aliases the tapped buffer")
	}
}

func TestBruteForcerGuessesTriggerAlertsUntilThreshold(t *testing.T) {
	sw, c := buildVictim(t, false)
	_ = c
	ri, err := sw.Host.Info.RegisterByName("state")
	if err != nil {
		t.Fatal(err)
	}
	bf := &BruteForcer{Forged: &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq, SeqNum: 1000, KeyVersion: 2},
		Reg:    &core.RegPayload{RegID: ri.ID, Index: 0, Value: 31337},
	}}
	guesses, err := bf.Guesses(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	alerts := 0
	for _, g := range guesses {
		res, err := sw.Host.PacketOut(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, pin := range res.PacketIns {
			if m, err := core.DecodeMessage(pin); err == nil && m.HdrType == core.HdrAlert {
				alerts++
			}
		}
	}
	// Each wrong guess alerts until the DoS threshold caps the stream
	// (§VIII "Digest size" + "DoS"): with the default threshold of 64,
	// 100 guesses yield exactly 64 alerts.
	if alerts != 64 {
		t.Fatalf("alerts = %d, want threshold-capped 64", alerts)
	}
	if v, _ := sw.Host.SW.RegisterRead("state", 0); v != 0 {
		t.Fatal("a brute-force guess landed (1 in 2^32 odds per trial — investigate)")
	}
}
