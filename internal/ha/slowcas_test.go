package ha

import (
	"testing"
	"time"

	"p4auth/internal/statestore"
)

// TestGroupElectionUnderSlowCAS re-runs the group election with every
// store operation charged wall latency (a slow or congested store, the
// regime where lease races actually happen), sampling the one-active
// invariant at every compare-and-swap: at no instant during the
// election may two replicas pass their fences simultaneously.
func TestGroupElectionUnderSlowCAS(t *testing.T) {
	ttl := 100 * time.Millisecond
	f := newGroupFleet(t, 3, 3, ttl, statestore.FaultConfig{Seed: 5, Latency: time.Millisecond})
	f.bootstrapAndWrite(t)

	// Sample on every lease CAS — the exact instants ownership can
	// change hands. The fence checks inside the sample read the store
	// themselves, so the hook guards against recursion (and each sample
	// charges real store latency, stressing the lease further).
	var samples, violations int
	inHook := false
	f.st.SetHook(func(op statestore.Op, key string) {
		if inHook || op != statestore.OpCAS || key != statestore.LeaseKey {
			return
		}
		inHook = true
		defer func() { inHook = false }()
		samples++
		active := 0
		for _, r := range f.grp.Replicas() {
			if !r.Controller().Killed() && r.IsActive() {
				active++
			}
		}
		if active > 1 {
			violations++
		}
	})

	f.grp.Replicas()[0].Controller().Kill()
	el, err := f.grp.Elect(CauseElected)
	if err != nil {
		t.Fatalf("elect under slow CAS: %v", err)
	}
	if el.Winner.Name() != "ctl-1" || el.Incumbent {
		t.Fatalf("election = %+v, want fresh ctl-1 win", el)
	}
	if el.Winner.Epoch() != 2 {
		t.Fatalf("winner epoch = %d, want 2", el.Winner.Epoch())
	}
	if samples == 0 {
		t.Fatal("no CAS instants sampled — the hook never fired")
	}
	if violations != 0 {
		t.Fatalf("two actives at %d of %d sampled CAS instants", violations, samples)
	}
	// The charged latency is real virtual time: the election cannot have
	// been instantaneous.
	if el.Duration <= 0 {
		t.Fatalf("election duration %v under per-op latency, want > 0", el.Duration)
	}
	// The winner serves despite the slow store.
	if _, err := el.Winner.Controller().WriteRegister(f.names[0], "lat", 2, 99); err != nil {
		t.Fatalf("post-election write: %v", err)
	}
	// A spurious re-election returns the incumbent, never deposing it.
	el2, err := f.grp.Elect(CauseElected)
	if err != nil || !el2.Incumbent || el2.Winner != el.Winner {
		t.Fatalf("spurious elect = %+v, %v; want incumbent %s", el2, err, el.Winner.Name())
	}
	if violations != 0 {
		t.Fatalf("late violations: %d", violations)
	}
}
