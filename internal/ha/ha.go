// Package ha layers active/standby controller replication on top of the
// sharded control plane: a lease state machine over the shared
// statestore, the fencing rule that makes a deposed active harmless, and
// the failover orchestration that warm-restarts a standby into the
// active role mid-rollover without reopening a replay window.
//
// The design is a single CRC-armoured lease record (statestore.Lease,
// the PALS codec) updated only by compare-and-swap:
//
//   - Acquire increments the fencing epoch; Renew extends the window at
//     the SAME epoch. The epoch therefore identifies one unbroken tenure.
//   - Every signed wire send and every durable persist of a replica
//     re-reads the record and refuses unless it still names this replica
//     at its acquired epoch, unexpired. A deposed active — even one that
//     is alive, with signed batches in flight — fails this check before
//     any bytes reach the wire or the store. Refusal is a property of
//     the record, never of luck or timing.
//   - The standby tails the active's snapshots and WAL through the same
//     store (statestore.Tailer), so promotion is a warm restart over
//     state it already holds: restored replay floors are lease-bumped
//     (core.FloorLease) exactly as a single-controller crash restart,
//     and the old floors stay monotone.
//
// This mirrors the {latest,committed} repair-epoch fence of the DP-DP
// fabric layer (controller/fabric.go) one level up: admit-or-refuse
// before any message is sent, re-checked on every leg.
package ha

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
)

// Clock provides the time base for grant and expiry decisions.
// netsim.Sim satisfies it, so deterministic simulations drive leases
// from virtual time; real deployments use SystemClock.
type Clock interface {
	Now() time.Duration
}

// SystemClock is the wall-clock time base for real deployments.
type SystemClock struct{ start time.Time }

// NewSystemClock returns a Clock anchored at construction time.
func NewSystemClock() *SystemClock { return &SystemClock{start: time.Now()} }

// Now implements Clock.
func (c *SystemClock) Now() time.Duration { return time.Since(c.start) }

// ErrNotActive wraps controller.ErrFenced: the replica does not hold the
// lease at its epoch, so sends and persists are refused.
var ErrNotActive = fmt.Errorf("ha: replica is not the active holder: %w", controller.ErrFenced)

// ErrLeaseHeld is returned by Acquire while another replica's lease is
// valid and unexpired.
var ErrLeaseHeld = errors.New("ha: lease held by another replica")

// ErrLeaseRaced is returned when a compare-and-swap lost against a
// concurrent grant; the caller may re-read and retry.
var ErrLeaseRaced = errors.New("ha: lost lease race")

// ErrDeposed is returned by Renew when the stored record no longer names
// this replica at its epoch — another replica acquired in between.
var ErrDeposed = errors.New("ha: replica was deposed")

// ErrEpochExhausted is returned by Acquire when the stored fencing epoch
// is already at its maximum: incrementing would wrap to 0 and alias a
// fresh tenure with "never held", so the group refuses instead of
// saturating (two tenures must never share an epoch).
var ErrEpochExhausted = errors.New("ha: fencing epoch exhausted")

// ErrNoCandidates is returned by Group.Elect when every ranked replica
// is dead or failed its promotion attempt.
var ErrNoCandidates = errors.New("ha: no electable replica in the group")

// DegradedEvent classifies one bounded-staleness fencing transition or
// admission, observed via LeaseManager.SetDegradedObserver.
type DegradedEvent string

const (
	// DegradedEnter: the store became unreadable and the cached grant
	// started admitting.
	DegradedEnter DegradedEvent = "degraded-enter"
	// DegradedAdmit: one fence check admitted on cached evidence.
	DegradedAdmit DegradedEvent = "degraded-admit"
	// DegradedExit: a store round trip succeeded again; the episode
	// ended with the fence still healthy.
	DegradedExit DegradedEvent = "degraded-exit"
	// DegradedExhausted: the episode ended in refusal — grace ran out or
	// the cached grant neared expiry with the store still dark.
	DegradedExhausted DegradedEvent = "degraded-exhausted"
)

// Fencing refusal cause labels (audit constants; see obs.EvFencedWrite).
const (
	// CauseNeverActive: the replica never acquired a lease.
	CauseNeverActive = "never-active"
	// CauseDeposed: another replica holds a higher-epoch grant.
	CauseDeposed = "deposed"
	// CauseLeaseExpired: the replica's own grant lapsed without renewal.
	CauseLeaseExpired = "lease-expired"
	// CauseLeaseUnreadable: the stored record is missing or corrupt.
	CauseLeaseUnreadable = "lease-unreadable"
	// CauseStoreUnavailable: the store itself is unreadable (I/O error,
	// not an absent record) and no admissible cached grant exists.
	CauseStoreUnavailable = "store-unavailable"
	// CauseGraceExhausted: the store stayed unreadable past the bounded-
	// staleness grace window; the replica fenced itself fail-safe.
	CauseGraceExhausted = "degraded-grace-exhausted"
	// Failover trigger labels (obs.EvFailover causes).
	CauseBootstrap = "bootstrap"
	CausePromoted  = "standby-promoted"
	CauseElected   = "group-elected"
)
