package ha

import (
	"errors"
	"strings"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
)

// degradedRig is a LeaseManager over a fault-injecting store with an
// event recorder, the fixture for the bounded-staleness fence tests.
type degradedRig struct {
	clk    *tclock
	fs     *statestore.FaultStore
	mgr    *LeaseManager
	events []DegradedEvent
}

func newDegradedRig(t *testing.T, ttl, grace, skew time.Duration) *degradedRig {
	t.Helper()
	r := &degradedRig{clk: &tclock{}}
	r.fs = statestore.NewFaultStore(statestore.NewMem(), r.clk, statestore.FaultConfig{})
	mgr, err := NewLeaseManager(r.fs, r.clk, "ctl-a", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.ConfigureStaleness(grace, skew); err != nil {
		t.Fatal(err)
	}
	mgr.SetDegradedObserver(func(ev DegradedEvent, detail string) {
		r.events = append(r.events, ev)
	})
	r.mgr = mgr
	return r
}

// TestFenceDegradedAdmitAndRecover: a store blip shorter than the grace
// window is survivable — the cached grant admits, and the episode closes
// with an exit event the moment the store answers again.
func TestFenceDegradedAdmitAndRecover(t *testing.T) {
	r := newDegradedRig(t, 10*time.Millisecond, 4*time.Millisecond, 2*time.Millisecond)
	if _, err := r.mgr.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Fence(); err != nil {
		t.Fatalf("healthy fence: %v", err)
	}

	r.clk.d = 1 * time.Millisecond
	r.fs.FailNext(1)
	if err := r.mgr.Fence(); err != nil {
		t.Fatalf("degraded fence within grace: %v", err)
	}
	if !r.mgr.InDegraded() {
		t.Fatal("not marked degraded after cached admission")
	}

	r.clk.d = 2 * time.Millisecond
	r.fs.FailNext(1)
	if err := r.mgr.Fence(); err != nil {
		t.Fatalf("second degraded fence: %v", err)
	}

	// Store recovers: same episode must end with a single exit.
	r.clk.d = 3 * time.Millisecond
	if err := r.mgr.Fence(); err != nil {
		t.Fatalf("post-recovery fence: %v", err)
	}
	if r.mgr.InDegraded() {
		t.Fatal("still degraded after a successful round trip")
	}
	want := []DegradedEvent{DegradedEnter, DegradedAdmit, DegradedAdmit, DegradedExit}
	if len(r.events) != len(want) {
		t.Fatalf("events = %v, want %v", r.events, want)
	}
	for i := range want {
		if r.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", r.events, want)
		}
	}
}

// TestFenceDegradedGraceExhausted: an outage longer than the grace
// window fences the active fail-safe, with the exhaustion observed once.
func TestFenceDegradedGraceExhausted(t *testing.T) {
	r := newDegradedRig(t, 10*time.Millisecond, 4*time.Millisecond, 2*time.Millisecond)
	if _, err := r.mgr.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.ScheduleOutage(500*time.Microsecond, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	r.clk.d = 2 * time.Millisecond
	if err := r.mgr.Fence(); err != nil {
		t.Fatalf("fence at 2ms (age 2ms <= grace 4ms): %v", err)
	}

	r.clk.d = 5 * time.Millisecond
	err := r.mgr.Fence()
	if FenceCause(err) != CauseGraceExhausted {
		t.Fatalf("fence at 5ms = %v, want %s", err, CauseGraceExhausted)
	}
	if !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("exhausted fence does not chain to ErrFenced: %v", err)
	}
	if r.mgr.InDegraded() {
		t.Fatal("still marked degraded after exhaustion")
	}

	// Every later check during the outage refuses the same way, without
	// re-announcing an exhaustion (the episode already ended).
	r.clk.d = 6 * time.Millisecond
	if err := r.mgr.Fence(); FenceCause(err) != CauseGraceExhausted {
		t.Fatalf("fence at 6ms = %v", err)
	}
	want := []DegradedEvent{DegradedEnter, DegradedAdmit, DegradedExhausted}
	if len(r.events) != len(want) {
		t.Fatalf("events = %v, want %v", r.events, want)
	}
}

// TestFenceDegradedSkewNearExpiry: cached evidence close to its own
// expiry must not admit even inside the grace window — a successor on a
// clock up to skew ahead could already be acquiring.
func TestFenceDegradedSkewNearExpiry(t *testing.T) {
	r := newDegradedRig(t, 10*time.Millisecond, 4*time.Millisecond, 2*time.Millisecond)
	if _, err := r.mgr.Acquire(); err != nil { // granted at 0, expires at 10ms
		t.Fatal(err)
	}
	r.clk.d = 8 * time.Millisecond
	if err := r.mgr.Fence(); err != nil { // healthy read: cache refreshed at 8ms
		t.Fatalf("healthy fence at 8ms: %v", err)
	}
	r.clk.d = 9 * time.Millisecond
	r.fs.FailNext(1)
	// Cache age is 1ms (<= grace 4ms), but 9ms + skew 2ms >= expiry 10ms.
	err := r.mgr.Fence()
	if FenceCause(err) != CauseLeaseExpired {
		t.Fatalf("fence within skew of expiry = %v, want %s", err, CauseLeaseExpired)
	}
	if len(r.events) != 0 {
		t.Fatalf("no admission happened, but events = %v", r.events)
	}
}

// TestFenceStrictWithoutGrace: grace zero keeps the original fail-safe
// fence — any store error refuses immediately, no cached admission.
func TestFenceStrictWithoutGrace(t *testing.T) {
	clk := &tclock{}
	fs := statestore.NewFaultStore(statestore.NewMem(), clk, statestore.FaultConfig{})
	mgr, err := NewLeaseManager(fs, clk, "ctl-a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Acquire(); err != nil {
		t.Fatal(err)
	}
	fs.FailNext(1)
	if err := mgr.Fence(); FenceCause(err) != CauseStoreUnavailable {
		t.Fatalf("strict fence on store error = %v, want %s", err, CauseStoreUnavailable)
	}
	if mgr.InDegraded() {
		t.Fatal("strict manager entered degraded mode")
	}
}

// TestConfigureStalenessValidation: the non-overlap proof needs
// grace + skew strictly under the TTL; configurations outside it refuse.
func TestConfigureStalenessValidation(t *testing.T) {
	clk := &tclock{}
	mgr, err := NewLeaseManager(statestore.NewMem(), clk, "ctl-a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		grace, skew time.Duration
		ok          bool
	}{
		{4 * time.Millisecond, 2 * time.Millisecond, true},
		{0, 0, true},
		{0, 5 * time.Millisecond, true}, // grace 0 = strict; skew unused
		{8 * time.Millisecond, 2 * time.Millisecond, false}, // sum == TTL
		{12 * time.Millisecond, 0, false},
		{-time.Millisecond, 0, false},
		{time.Millisecond, -time.Millisecond, false},
	} {
		err := mgr.ConfigureStaleness(c.grace, c.skew)
		if (err == nil) != c.ok {
			t.Fatalf("ConfigureStaleness(%v, %v) = %v, want ok=%v", c.grace, c.skew, err, c.ok)
		}
	}
}

// TestAcquireRefusesEpochWrap: a stored epoch at max uint64 cannot be
// incremented — wrapping to 0 would alias a fresh tenure with "never
// held" and break fence monotonicity, so Acquire refuses instead.
func TestAcquireRefusesEpochWrap(t *testing.T) {
	st := statestore.NewMem()
	clk := &tclock{d: time.Second}
	rec := &statestore.Lease{Holder: "old", Epoch: ^uint64(0), GrantedNs: 0, TTLNs: 0}
	if err := st.Save(statestore.LeaseKey, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	mgr, err := NewLeaseManager(st, clk, "ctl-a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Acquire(); !errors.Is(err, ErrEpochExhausted) {
		t.Fatalf("acquire over max epoch = %v, want ErrEpochExhausted", err)
	}
	// One below max is the last grantable tenure.
	rec.Epoch = ^uint64(0) - 1
	if err := st.Save(statestore.LeaseKey, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	l, err := mgr.Acquire()
	if err != nil || l.Epoch != ^uint64(0) {
		t.Fatalf("acquire at max-1 = (%+v, %v)", l, err)
	}
}

// TestNewLeaseManagerRefusesOversizedName: the PALS holder field is 16
// bits; a name that cannot round-trip is refused at construction, making
// Encode's panic unreachable from this writer.
func TestNewLeaseManagerRefusesOversizedName(t *testing.T) {
	st := statestore.NewMem()
	clk := &tclock{}
	if _, err := NewLeaseManager(st, clk, strings.Repeat("n", statestore.MaxLeaseHolderLen+1), time.Millisecond); err == nil {
		t.Fatal("oversized replica name accepted")
	}
	if _, err := NewLeaseManager(st, clk, strings.Repeat("n", statestore.MaxLeaseHolderLen), time.Millisecond); err != nil {
		t.Fatalf("max-length replica name refused: %v", err)
	}
}

// TestResignLosesRaceToConcurrentAcquire: Resign reads the record, then
// CASes an expired copy over it. If a usurper acquires in that window,
// Resign's swap loses and returns nil WITHOUT retrying — which is the
// correct outcome, and this test pins why: the usurper's record must
// survive untouched (resigning must never shorten someone else's
// tenure), and the resigner is fenced either way.
func TestResignLosesRaceToConcurrentAcquire(t *testing.T) {
	raw := statestore.NewMem()
	clk := &tclock{}
	fs := statestore.NewFaultStore(raw, clk, statestore.FaultConfig{})
	ttl := 10 * time.Millisecond

	resigner, err := NewLeaseManager(fs, clk, "ctl-a", ttl)
	if err != nil {
		t.Fatal(err)
	}
	usurper, err := NewLeaseManager(raw, clk, "ctl-b", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resigner.Acquire(); err != nil {
		t.Fatal(err)
	}

	// The grant lapses; the resigner (not yet having noticed) resigns
	// while the usurper acquires concurrently — modeled by a one-shot
	// hook that fires between Resign's read and its compare-and-swap.
	clk.d = ttl + time.Millisecond
	fired := false
	fs.SetHook(func(op statestore.Op, key string) {
		if fired || op != statestore.OpCAS || key != statestore.LeaseKey {
			return
		}
		fired = true
		if _, err := usurper.Acquire(); err != nil {
			t.Errorf("usurper acquire inside the race window: %v", err)
		}
	})
	if err := resigner.Resign(); err != nil {
		t.Fatalf("resign after losing the race = %v, want nil (silent concede)", err)
	}
	if !fired {
		t.Fatal("race hook never fired; the test exercised nothing")
	}

	// The usurper's record survived untouched: holder, epoch, and the
	// FULL TTL — Resign's expired copy must not have landed.
	b, err := raw.Load(statestore.LeaseKey)
	if err != nil {
		t.Fatal(err)
	}
	got, err := statestore.DecodeLease(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Holder != "ctl-b" || got.Epoch != 2 || got.TTLNs != uint64(ttl) {
		t.Fatalf("stored record after raced resign = %+v, want ctl-b epoch 2 ttl %d", got, uint64(ttl))
	}
	if err := resigner.Fence(); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("resigner fence = %v, want ErrFenced chain", err)
	}
	if err := usurper.Fence(); err != nil {
		t.Fatalf("usurper fenced by the raced resign: %v", err)
	}
}

// TestReplicaDegradedReconciliation: the replica-level wiring — every
// degraded transition is both counted and audited, and the admission
// count is metrics-only (high-frequency, never per-event audit spam).
func TestReplicaDegradedReconciliation(t *testing.T) {
	clk := &tclock{}
	fs := statestore.NewFaultStore(statestore.NewMem(), clk, statestore.FaultConfig{})
	ob := obs.NewObserver(0)
	r, err := NewReplica(ReplicaConfig{
		Name: "ctl-a", Store: fs, Clock: clk, TTL: 10 * time.Millisecond,
		Controller: controller.New(crypto.NewSeededRand(7)), Observer: ob,
		FenceGrace: 4 * time.Millisecond, MaxSkew: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Activate(CauseBootstrap); err != nil {
		t.Fatal(err)
	}

	// Episode 1: blip, admit once, recover.
	clk.d = 1 * time.Millisecond
	fs.FailNext(1)
	if err := r.Fence(); err != nil {
		t.Fatalf("degraded fence: %v", err)
	}
	if !r.InDegraded() {
		t.Fatal("replica not degraded after cached admission")
	}
	clk.d = 2 * time.Millisecond
	if err := r.Fence(); err != nil {
		t.Fatalf("recovery fence: %v", err)
	}

	// Episode 2: admit once, then the outage outlives the grace.
	clk.d = 3 * time.Millisecond
	fs.FailNext(1)
	if err := r.Fence(); err != nil {
		t.Fatalf("second episode admit: %v", err)
	}
	clk.d = 8 * time.Millisecond
	fs.FailNext(1)
	if err := r.Fence(); FenceCause(err) != CauseGraceExhausted {
		t.Fatalf("exhaustion fence = %v", err)
	}

	m := ob.Metrics
	enters := m.Counter("ha.degraded_enters").Load()
	exits := m.Counter("ha.degraded_exits").Load()
	exhausted := m.Counter("ha.degraded_exhausted").Load()
	admits := m.Counter("ha.degraded_admits").Load()
	if enters != 2 || exits != 1 || exhausted != 1 || admits != 2 {
		t.Fatalf("degraded counters = enters %d exits %d exhausted %d admits %d", enters, exits, exhausted, admits)
	}
	// Exact reconciliation: one audit event per transition, none per
	// admission.
	if n := uint64(len(ob.Audit.ByType(obs.EvDegraded))); n != enters+exits+exhausted {
		t.Fatalf("EvDegraded audited %d, transitions %d", n, enters+exits+exhausted)
	}
}
