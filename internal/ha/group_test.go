package ha

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// Advance makes tclock an Advancer, so group elections can wait out a
// dead incumbent's grant in virtual time.
func (c *tclock) Advance(d time.Duration) { c.d += d }

// groupFleet is N ranked replicas over one fault-injectable store.
type groupFleet struct {
	st    *statestore.FaultStore
	clk   *tclock
	ob    *obs.Observer
	names []string
	grp   *Group
}

func newGroupFleet(t *testing.T, nSwitches, nReplicas int, ttl time.Duration, cfg ...statestore.FaultConfig) *groupFleet {
	t.Helper()
	f := &groupFleet{clk: &tclock{}, ob: obs.NewObserver(0)}
	var fc statestore.FaultConfig
	if len(cfg) > 0 {
		fc = cfg[0]
	}
	f.st = statestore.NewFaultStore(statestore.NewMem(), f.clk, fc)
	sw := map[string]*deploy.Switch{}
	for i := 0; i < nSwitches; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sw[name] = s
		f.names = append(f.names, name)
	}
	var reps []*Replica
	for i := 0; i < nReplicas; i++ {
		c := controller.New(crypto.NewSeededRand(uint64(1000 + i)))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		for _, nm := range f.names {
			s := sw[nm]
			if err := c.Register(nm, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		r, err := NewReplica(ReplicaConfig{
			Name: fmt.Sprintf("ctl-%d", i), Store: f.st, Clock: f.clk, TTL: ttl,
			Controller: c, Observer: f.ob,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	grp, err := NewGroup(f.clk, reps...)
	if err != nil {
		t.Fatal(err)
	}
	f.grp = grp
	return f
}

// bootstrapAndWrite brings up rank 0 with keys and one register write
// per switch, then lets every standby tail.
func (f *groupFleet) bootstrapAndWrite(t *testing.T) {
	t.Helper()
	act, err := f.grp.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := act.Controller().InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	for _, nm := range f.names {
		if _, err := act.Controller().WriteRegister(nm, "lat", 1, 77); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.grp.TailStandbys(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupElection: kill the active; the rank-1 standby succeeds it at
// the next epoch, warm, with all state intact.
func TestGroupElection(t *testing.T) {
	ttl := 20 * time.Millisecond
	f := newGroupFleet(t, 3, 3, ttl)
	f.bootstrapAndWrite(t)

	f.grp.Replicas()[0].Controller().Kill()
	el, err := f.grp.Elect(CauseElected)
	if err != nil {
		t.Fatalf("elect: %v", err)
	}
	if el.Winner.Name() != "ctl-1" || el.Chained != 0 || el.Incumbent {
		t.Fatalf("election = %+v, want ctl-1 chained 0", el)
	}
	if el.Winner.Epoch() != 2 {
		t.Fatalf("winner epoch = %d, want 2", el.Winner.Epoch())
	}
	for _, nm := range f.names {
		if !el.Warm[nm] {
			t.Fatalf("%s recovered cold after tailing", nm)
		}
		v, _, err := el.Winner.Controller().ReadRegister(nm, "lat", 1)
		if err != nil || v != 77 {
			t.Fatalf("%s lat[1] = (%d, %v), want 77", nm, v, err)
		}
	}
	// The dead incumbent's grant was waited out, never shortened.
	if n := f.ob.Metrics.Counter("ha.election_waitouts").Load(); n == 0 {
		t.Fatal("election did not wait out the dead incumbent's grant")
	}
	evs := f.ob.Audit.ByType(obs.EvElection)
	if len(evs) != 1 || evs[0].Actor != "ctl-1" || evs[0].Seq != 0 {
		t.Fatalf("election audit = %+v", evs)
	}
}

// TestGroupChainedPromotion: the rank-1 successor dies mid-promotion
// (after acquiring, before finishing recovery); rank 2 takes over from
// the same tailed state, and the chain depth is recorded.
func TestGroupChainedPromotion(t *testing.T) {
	ttl := 20 * time.Millisecond
	f := newGroupFleet(t, 3, 3, ttl)
	f.bootstrapAndWrite(t)

	reps := f.grp.Replicas()
	reps[0].Controller().Kill()

	// Kill ctl-1 on its 2nd lease CAS after the election starts: the 1st
	// is its Acquire, the 2nd the Renew after its first warm restart — so
	// it dies mid-promotion holding a fresh grant.
	cas := 0
	f.st.SetHook(func(op statestore.Op, key string) {
		if op != statestore.OpCAS || key != statestore.LeaseKey {
			return
		}
		cas++
		if cas == 2 {
			reps[1].Controller().Kill()
		}
	})
	el, err := f.grp.Elect(CauseElected)
	f.st.SetHook(nil)
	if err != nil {
		t.Fatalf("chained elect: %v", err)
	}
	if el.Winner.Name() != "ctl-2" || el.Chained != 1 {
		t.Fatalf("election = winner %s chained %d, want ctl-2 chained 1", el.Winner.Name(), el.Chained)
	}
	// Epochs: bootstrap 1, ctl-1's aborted tenure 2, ctl-2's tenure 3.
	if el.Winner.Epoch() != 3 {
		t.Fatalf("winner epoch = %d, want 3", el.Winner.Epoch())
	}
	for _, nm := range f.names {
		v, _, err := el.Winner.Controller().ReadRegister(nm, "lat", 1)
		if err != nil || v != 77 {
			t.Fatalf("%s lat[1] = (%d, %v), want 77", nm, v, err)
		}
	}
	// Both dead replicas are fenced; the winner is not.
	if err := reps[0].Fence(); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("rank-0 fence = %v", err)
	}
	if err := reps[1].Fence(); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("rank-1 fence = %v", err)
	}
	m := f.ob.Metrics
	if e, c := m.Counter("ha.elections").Load(), m.Counter("ha.chained_promotions").Load(); e != 1 || c != 1 {
		t.Fatalf("elections %d chained %d, want 1 1", e, c)
	}
	evs := f.ob.Audit.ByType(obs.EvElection)
	if len(evs) != 1 || evs[0].Seq != 1 || evs[0].Actor != "ctl-2" {
		t.Fatalf("chained election audit = %+v", evs)
	}
}

// TestGroupIncumbentWins: a spurious election trigger cannot depose a
// live active — the stored grant decides.
func TestGroupIncumbentWins(t *testing.T) {
	f := newGroupFleet(t, 2, 3, 20*time.Millisecond)
	f.bootstrapAndWrite(t)
	el, err := f.grp.Elect(CauseElected)
	if err != nil {
		t.Fatalf("spurious elect: %v", err)
	}
	if !el.Incumbent || el.Winner.Name() != "ctl-0" {
		t.Fatalf("election = %+v, want incumbent ctl-0", el)
	}
	if el.Winner.Epoch() != 1 {
		t.Fatalf("incumbent epoch = %d, want 1 (no new grant)", el.Winner.Epoch())
	}
	if n := f.ob.Metrics.Counter("ha.elections").Load(); n != 0 {
		t.Fatalf("incumbent resolution counted as %d elections", n)
	}
}

// TestGroupNoCandidates: with every replica dead, Elect reports it
// rather than spinning.
func TestGroupNoCandidates(t *testing.T) {
	f := newGroupFleet(t, 2, 3, 20*time.Millisecond)
	f.bootstrapAndWrite(t)
	for _, r := range f.grp.Replicas() {
		r.Controller().Kill()
	}
	if _, err := f.grp.Elect(CauseElected); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("elect with all dead = %v, want ErrNoCandidates", err)
	}
}

// TestGroupElectionSurvivesLostCAS: a forced lost swap on the
// candidate's acquire is retried, not surfaced — races are normal.
func TestGroupElectionSurvivesLostCAS(t *testing.T) {
	ttl := 20 * time.Millisecond
	f := newGroupFleet(t, 2, 3, ttl)
	f.bootstrapAndWrite(t)
	f.grp.Replicas()[0].Controller().Kill()
	f.st.LoseNextCAS(1)
	el, err := f.grp.Elect(CauseElected)
	if err != nil {
		t.Fatalf("elect with lost CAS: %v", err)
	}
	if el.Winner.Name() != "ctl-1" || el.Winner.Epoch() != 2 {
		t.Fatalf("election = %s epoch %d, want ctl-1 epoch 2", el.Winner.Name(), el.Winner.Epoch())
	}
}
