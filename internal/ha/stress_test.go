package ha

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/obs"
)

// aclock is a concurrency-safe hand-advanced clock for the stress test.
type aclock struct{ ns atomic.Int64 }

func (c *aclock) Now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *aclock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestStressShardedFailover drives N shard workers through pipelined
// writes while rollovers run concurrently, then fires a failover in the
// middle of it all: the active is killed mid-traffic, the standby
// promotes after lease expiry, and the shard set is rebound. Monitors
// assert replay floors never regress and the audit log explains every
// counted drop and fencing refusal. Run under -race (the stress gate).
func TestStressShardedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		nSwitches = 6
		nWorkers  = 6
		perWorker = 60
	)
	ttl := time.Hour

	clk := &aclock{}
	f := newHAFleetWith(t, nSwitches, ttl, clk)
	if _, err := f.a.Activate(CauseBootstrap); err != nil {
		t.Fatal(err)
	}
	if _, err := f.a.Controller().InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	ss, err := f.a.Controller().NewShardSet(f.names, 8)
	if err != nil {
		t.Fatal(err)
	}

	// The rebindable drive target: workers read it per flush; the main
	// goroutine swaps it at failover (ShardSet.Rebind handles the
	// controller; this pointer is only for the rollover goroutine).
	var active atomic.Pointer[Replica]
	active.Store(f.a)

	stop := make(chan struct{})
	// Workers finish on their own; monitors and the rollover churn run
	// until stop — two groups, or waiting on one would deadlock the other.
	var workers, monitors sync.WaitGroup

	// Floor monitors: one per switch, sampling the device replay floor
	// directly (no wire traffic), asserting it never regresses — not
	// during load, not across the failover's lease-bumped restore.
	for _, nm := range f.names {
		monitors.Add(1)
		go func(nm string) {
			defer monitors.Done()
			sw := f.sw[nm].Host.SW
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := sw.RegisterRead(core.RegSeq, 0)
				if err == nil {
					if v < last {
						t.Errorf("%s: replay floor regressed %d -> %d", nm, last, v)
						return
					}
					last = v
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(nm)
	}

	// Rollover churn: the failover must land mid-rollover somewhere.
	monitors.Add(1)
	go func() {
		defer monitors.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			nm := f.names[i%len(f.names)]
			i++
			_, _ = active.Load().Controller().LocalKeyUpdate(nm)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Shard workers: submit + flush, tolerating the dead/fenced window
	// around the failover (those writes are counted failed and audited).
	var landed, failed atomic.Int64
	for w := 0; w < nWorkers; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < perWorker; i++ {
				nm := f.names[(w+i)%len(f.names)]
				if err := ss.Submit(nm, controller.RegWrite{
					Register: "lat", Index: uint32(i % 4), Value: uint64(w<<16 | i),
				}); err != nil {
					t.Error(err)
					return
				}
				br, err := ss.FlushShard(nm)
				if err != nil {
					if !errors.Is(err, controller.ErrKilled) && !errors.Is(err, controller.ErrFenced) {
						t.Errorf("worker %d: unexpected flush error: %v", w, err)
						return
					}
					failed.Add(1)
				} else {
					landed.Add(int64(len(br.Errs) - br.Failed))
					failed.Add(int64(br.Failed))
				}
				if i%16 == 0 {
					_, _ = f.b.TailOnce()
				}
			}
		}(w)
	}

	// Mid-run: kill the active, wait out the lease, promote the standby,
	// rebind the shard set. Workers keep hammering throughout.
	time.Sleep(2 * time.Millisecond)
	f.a.Controller().Kill()
	clk.advance(ttl + time.Second)
	warm, _, err := f.b.Promote(CausePromoted)
	if err != nil {
		t.Fatalf("promote under load: %v", err)
	}
	for _, nm := range f.names {
		if !warm[nm] {
			t.Errorf("%s: failover under load fell back to K_seed", nm)
		}
	}
	ss.Rebind(f.b.Controller())
	active.Store(f.b)

	// Let the post-failover traffic land, then stop the churn.
	workers.Wait()
	close(stop)
	monitors.Wait()

	// A final deterministic drain through the new active must succeed.
	for _, nm := range f.names {
		if err := ss.Submit(nm, controller.RegWrite{Register: "lat", Index: 5, Value: 999}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.DrainSequential(); err != nil {
		t.Fatalf("final drain through new active: %v", err)
	}
	for _, nm := range f.names {
		v, _, err := f.b.Controller().ReadRegister(nm, "lat", 5)
		if err != nil || v != 999 {
			t.Fatalf("%s lat[5] = (%d, %v), want 999", nm, v, err)
		}
	}

	// No dangling journal intents on the new active.
	for _, nm := range f.names {
		entries, err := f.b.Controller().JournalEntries(nm)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.State == core.WriteIntent {
				t.Errorf("dangling intent after failover: %s", e.Dump())
			}
		}
	}

	// Audit completeness across the whole run, both replicas.
	m, a := f.ob.Metrics, f.ob.Audit
	if a.Evicted() > 0 {
		t.Fatalf("audit ring evicted %d events", a.Evicted())
	}
	if drops, n := m.Counter("ctl.write_dropped").Load(), uint64(len(a.ByType(obs.EvWriteDropped))); drops != n {
		t.Errorf("%d dropped writes counted, %d audited", drops, n)
	}
	if bumps, n := m.Counter("ctl.floor_bumps").Load(), uint64(len(a.ByType(obs.EvFloorBump))); bumps != n {
		t.Errorf("%d floor bumps counted, %d audited", bumps, n)
	}
	fenced := m.Counter("ha.fenced_writes").Load() + m.Counter("ha.fenced_persists").Load()
	if n := uint64(len(a.ByType(obs.EvFencedWrite))); n != fenced {
		t.Errorf("%d fencing refusals counted, %d audited", fenced, n)
	}
	if got := m.Counter("ha.failovers").Load(); got != 2 {
		t.Errorf("ha.failovers = %d, want 2 (bootstrap + promotion)", got)
	}
	t.Logf("landed=%d failed=%d fenced=%d floor_bumps=%d",
		landed.Load(), failed.Load(), fenced, m.Counter("ctl.floor_bumps").Load())
	if landed.Load() == 0 {
		t.Error("no writes landed at all")
	}
}
