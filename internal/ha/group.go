package ha

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/obs"
)

// Advancer is implemented by clocks that can be driven forward
// (netsim.Sim, the chaos harness clocks). Group election uses it to wait
// out a dead incumbent's unexpired grant; on a wall clock the wait is
// real and no Advancer is needed.
type Advancer interface {
	Advance(d time.Duration)
}

// maxElectRounds bounds one Elect call: each round is either a candidate
// attempt, a raced retry, or a wait-out of an unexpired grant. The bound
// is generous — N replicas can each die mid-promotion at most once, and
// every wait-out consumes a full TTL — but it turns a livelock bug into
// an error instead of a hang.
const maxElectRounds = 64

// Election is the outcome of one Group.Elect call.
type Election struct {
	// Winner is the replica that completed promotion and holds the lease.
	Winner *Replica
	// Warm is the winner's per-switch warm-restart map.
	Warm map[string]bool
	// Chained counts candidates that died mid-promotion before the
	// winner: 0 is a plain failover, 1 means the first successor also
	// crashed and the next rank took over from tailed state, and so on.
	Chained int
	// Incumbent is true when no election was needed — the stored grant
	// named a live group member, who is returned as Winner with no
	// promotion performed.
	Incumbent bool
	// Duration is the total election time on the group clock, including
	// wait-outs of dead incumbents' grants.
	Duration time.Duration
}

// Group is an N-replica controller group with deterministic succession:
// the replica slice is the rank order, and election walks it skipping
// dead candidates. There is no quorum and no vote — the CAS lease record
// is the only coordination point, exactly as in the 2-replica pair, so
// the group inherits the pair's safety argument unchanged: whoever's
// record survives the swap IS the active, and everyone else is fenced by
// the epoch check on every send and persist.
//
// What the group adds is liveness policy: which standby tries first
// (rank), how a dead incumbent's unexpired grant is waited out (the TTL
// is the detection bound), and how a candidate that dies mid-promotion
// is itself superseded (chained succession — the next rank promotes over
// the same tailed store state).
type Group struct {
	replicas []*Replica
	clock    Clock
	ob       *obs.Observer
	active   int // index of the last known active, -1 when none

	elections *obs.Counter
	chained   *obs.Counter
	waitOuts  *obs.Counter
}

// NewGroup assembles a group from ranked replicas (index 0 is the
// preferred successor). All replicas must share the group's clock and
// store; the observer is taken from the first replica (the fixture
// shares one across the group so elections audit into a single trail).
func NewGroup(clock Clock, replicas ...*Replica) (*Group, error) {
	if len(replicas) < 2 {
		return nil, fmt.Errorf("ha: a group needs at least 2 replicas, got %d", len(replicas))
	}
	if clock == nil {
		return nil, fmt.Errorf("ha: group needs a clock")
	}
	seen := map[string]bool{}
	for _, r := range replicas {
		if seen[r.Name()] {
			return nil, fmt.Errorf("ha: duplicate replica name %q in group", r.Name())
		}
		seen[r.Name()] = true
	}
	ob := replicas[0].Observer()
	m := ob.Metrics
	return &Group{
		replicas:  replicas,
		clock:     clock,
		ob:        ob,
		active:    -1,
		elections: m.Counter("ha.elections"),
		chained:   m.Counter("ha.chained_promotions"),
		waitOuts:  m.Counter("ha.election_waitouts"),
	}, nil
}

// Replicas returns the ranked replica slice (do not mutate).
func (g *Group) Replicas() []*Replica { return g.replicas }

// Active returns the last known active replica, or nil. This is the
// group's bookkeeping, not a liveness check — the fence, not this
// pointer, is what refuses a deposed active.
func (g *Group) Active() *Replica {
	if g.active < 0 {
		return nil
	}
	return g.replicas[g.active]
}

// byName finds a group member by replica name.
func (g *Group) byName(name string) (int, *Replica) {
	for i, r := range g.replicas {
		if r.Name() == name {
			return i, r
		}
	}
	return -1, nil
}

// Bootstrap activates the rank-0 replica as the first active (no
// recovery — the caller initializes keys afterwards, as in the pair).
func (g *Group) Bootstrap() (*Replica, error) {
	r := g.replicas[0]
	if _, err := r.Activate(CauseBootstrap); err != nil {
		return nil, err
	}
	g.active = 0
	return r, nil
}

// TailStandbys polls snapshots and WAL on every live non-active replica,
// returning the total changed records. A store error surfaces — a
// standby that cannot tail is a standby whose next promotion would run
// on stale knowledge of its own staleness.
func (g *Group) TailStandbys() (int, error) {
	n := 0
	for i, r := range g.replicas {
		if i == g.active || r.Controller().Killed() {
			continue
		}
		c, err := r.TailOnce()
		n += c
		if err != nil {
			return n, fmt.Errorf("ha: standby %s tail: %w", r.Name(), err)
		}
	}
	return n, nil
}

// Elect drives one election to completion: find the best live candidate
// in rank order, wait out any dead incumbent's unexpired grant (on an
// Advancer clock the wait is virtual), promote, and — if the candidate
// dies mid-promotion — continue down the ranks, counting the chain.
// Returns ErrNoCandidates when every replica is dead.
//
// If the stored grant names a LIVE group member, no election happens:
// the incumbent is returned with Incumbent set. A spurious Elect call
// can therefore never depose a healthy active — the trigger may be
// wrong, the record decides.
func (g *Group) Elect(cause string) (*Election, error) {
	t0 := g.clock.Now()
	chained := 0
	for round := 0; round < maxElectRounds; round++ {
		idx, cand := g.nextLive()
		if cand == nil {
			return nil, ErrNoCandidates
		}
		// Respect the stored grant before promoting anyone: a live holder
		// means the trigger was spurious and the incumbent wins; a dead
		// holder's unexpired grant is waited out in full (the TTL is the
		// detection bound — shortening it would reintroduce two writers).
		cur, err := cand.CurrentLease()
		if err != nil {
			return nil, fmt.Errorf("ha: reading incumbent grant: %w", err)
		}
		if cur != nil {
			now := uint64(g.clock.Now())
			if exp := cur.ExpiresNs(); now < exp {
				if i, holder := g.byName(cur.Holder); holder != nil && !holder.Controller().Killed() {
					g.active = i
					return &Election{Winner: holder, Incumbent: true,
						Chained: chained, Duration: g.clock.Now() - t0}, nil
				}
				adv, ok := g.clock.(Advancer)
				if !ok {
					return nil, fmt.Errorf("%w (holder %s for another %dns; clock cannot advance)",
						ErrLeaseHeld, cur.Holder, exp-now)
				}
				adv.Advance(time.Duration(exp-now) + time.Nanosecond)
				g.waitOuts.Inc()
				continue
			}
		}
		// Catch up on the store before taking over: promotion must run on
		// everything the previous active persisted.
		if _, err := cand.TailOnce(); err != nil {
			return nil, fmt.Errorf("ha: candidate %s pre-election tail: %w", cand.Name(), err)
		}
		warm, _, err := cand.Promote(cause)
		if err == nil {
			g.active = idx
			g.elections.Inc()
			if chained > 0 {
				g.chained.Add(uint64(chained))
			}
			el := &Election{Winner: cand, Warm: warm, Chained: chained, Duration: g.clock.Now() - t0}
			g.ob.Audit.Append(obs.EvElection, cand.Name(), cause, uint32(chained), cand.Epoch())
			return el, nil
		}
		switch {
		case cand.Controller().Killed():
			// The candidate died mid-promotion. Its partial grant will be
			// waited out like any dead incumbent's; the next rank succeeds
			// it from the same tailed store state.
			chained++
			continue
		case errors.Is(err, ErrLeaseHeld),
			errors.Is(err, ErrLeaseRaced), errors.Is(err, ErrDeposed):
			// Held, lost a swap, or superseded mid-promotion: somebody
			// else's record landed. Next round's grant check resolves who.
			continue
		default:
			// Promotion recovered with per-switch errors but the candidate
			// holds the lease and is alive: it IS the active (the fence
			// admits it); surface the degraded recovery to the caller.
			if cand.Fence() == nil {
				g.active = idx
				g.elections.Inc()
				if chained > 0 {
					g.chained.Add(uint64(chained))
				}
				el := &Election{Winner: cand, Warm: warm, Chained: chained, Duration: g.clock.Now() - t0}
				g.ob.Audit.Append(obs.EvElection, cand.Name(), cause, uint32(chained), cand.Epoch())
				return el, err
			}
			return nil, fmt.Errorf("ha: candidate %s promotion failed: %w", cand.Name(), err)
		}
	}
	return nil, fmt.Errorf("ha: election did not converge in %d rounds", maxElectRounds)
}

// nextLive returns the best-ranked replica whose controller is alive.
func (g *Group) nextLive() (int, *Replica) {
	for i, r := range g.replicas {
		if !r.Controller().Killed() {
			return i, r
		}
	}
	return -1, nil
}
