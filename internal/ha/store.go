package ha

import (
	"fmt"

	"p4auth/internal/statestore"
)

// FencedStore wraps a statestore.Store so that durable WRITES pass the
// lease fence while reads stay open. The controller's crash-safety layer
// persists through this wrapper: a deposed active can no longer advance
// the shared snapshots or journal — its WAL intents die at the store
// boundary, before the standby could ever tail them. Reads are unfenced
// because the standby must tail and recover from the store while
// explicitly NOT holding the lease.
//
// The lease record itself is managed through the raw store (the
// LeaseManager writes it by CAS); a FencedStore never carries it.
type FencedStore struct {
	raw   statestore.Store
	fence func() error
	// onRefusal, when set, observes each refused mutation (metrics +
	// audit hook; op is "save" or "delete").
	onRefusal func(op, key string, err error)
}

// NewFencedStore wraps raw; every Save/Delete consults fence first.
func NewFencedStore(raw statestore.Store, fence func() error, onRefusal func(op, key string, err error)) *FencedStore {
	return &FencedStore{raw: raw, fence: fence, onRefusal: onRefusal}
}

// Save implements statestore.Store, refusing when fenced.
func (s *FencedStore) Save(key string, value []byte) error {
	if err := s.fence(); err != nil {
		if s.onRefusal != nil {
			s.onRefusal("save", key, err)
		}
		return fmt.Errorf("ha: fenced persist of %s: %w", key, err)
	}
	return s.raw.Save(key, value)
}

// Delete implements statestore.Store, refusing when fenced.
func (s *FencedStore) Delete(key string) error {
	if err := s.fence(); err != nil {
		if s.onRefusal != nil {
			s.onRefusal("delete", key, err)
		}
		return fmt.Errorf("ha: fenced delete of %s: %w", key, err)
	}
	return s.raw.Delete(key)
}

// Load implements statestore.Store (unfenced).
func (s *FencedStore) Load(key string) ([]byte, error) { return s.raw.Load(key) }

// Keys implements statestore.Store (unfenced).
func (s *FencedStore) Keys(prefix string) ([]string, error) { return s.raw.Keys(prefix) }
