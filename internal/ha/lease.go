package ha

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p4auth/internal/statestore"
)

// LeaseManager is one replica's view of the controller-ownership lease.
// All mutations go through the store's compare-and-swap, so two managers
// racing over the same store serialize on the record itself — there is
// no other coordination channel, which is the point: whatever survives
// in the record IS the truth.
type LeaseManager struct {
	st    statestore.Store
	swap  statestore.Swapper
	clock Clock
	name  string
	ttl   time.Duration

	mu sync.Mutex
	// held is the last grant this replica obtained (Holder == name);
	// nil before the first Acquire and after a detected deposition.
	held *statestore.Lease
}

// NewLeaseManager returns a manager for the named replica. The store
// must support compare-and-swap (both bundled backends do).
func NewLeaseManager(st statestore.Store, clock Clock, name string, ttl time.Duration) (*LeaseManager, error) {
	swap, ok := st.(statestore.Swapper)
	if !ok {
		return nil, fmt.Errorf("ha: store %T does not support CompareAndSwap", st)
	}
	if name == "" {
		return nil, fmt.Errorf("ha: replica needs a name")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("ha: lease TTL must be positive")
	}
	return &LeaseManager{st: st, swap: swap, clock: clock, name: name, ttl: ttl}, nil
}

// Name returns the replica name the manager grants to.
func (m *LeaseManager) Name() string { return m.name }

// readRecord loads the current record. It returns the raw bytes for the
// CAS precondition and the decoded lease (nil when absent or corrupt —
// a corrupt record reads as "no lease" but its bytes still gate the
// swap, so two replicas cannot both claim over the same garbage).
func (m *LeaseManager) readRecord() ([]byte, *statestore.Lease, error) {
	raw, err := m.st.Load(statestore.LeaseKey)
	if errors.Is(err, statestore.ErrNotFound) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	l, derr := statestore.DecodeLease(raw)
	if derr != nil {
		return raw, nil, nil
	}
	return raw, l, nil
}

// Acquire claims the lease, incrementing the fencing epoch. It refuses
// with ErrLeaseHeld while another replica's grant is unexpired, and with
// ErrLeaseRaced when the swap lost a concurrent update.
func (m *LeaseManager) Acquire() (*statestore.Lease, error) {
	now := uint64(m.clock.Now())
	raw, cur, err := m.readRecord()
	if err != nil {
		return nil, err
	}
	var epoch uint64 = 1
	if cur != nil {
		if cur.Holder != m.name && now < cur.ExpiresNs() {
			return nil, fmt.Errorf("%w (holder %s epoch %d until %dns)",
				ErrLeaseHeld, cur.Holder, cur.Epoch, cur.ExpiresNs())
		}
		epoch = cur.Epoch + 1
	}
	next := &statestore.Lease{Holder: m.name, Epoch: epoch, GrantedNs: now, TTLNs: uint64(m.ttl)}
	ok, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrLeaseRaced
	}
	m.mu.Lock()
	m.held = next
	m.mu.Unlock()
	return next, nil
}

// Renew extends the validity window of the current tenure at the same
// epoch. ErrDeposed means another replica acquired in between; the
// caller must stop driving switches (its fence already refuses).
func (m *LeaseManager) Renew() (*statestore.Lease, error) {
	m.mu.Lock()
	held := m.held
	m.mu.Unlock()
	if held == nil {
		return nil, ErrNotActive
	}
	raw, cur, err := m.readRecord()
	if err != nil {
		return nil, err
	}
	if cur == nil || cur.Holder != m.name || cur.Epoch != held.Epoch {
		m.mu.Lock()
		m.held = nil
		m.mu.Unlock()
		return nil, ErrDeposed
	}
	next := &statestore.Lease{Holder: m.name, Epoch: cur.Epoch, GrantedNs: uint64(m.clock.Now()), TTLNs: uint64(m.ttl)}
	ok, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrLeaseRaced
	}
	m.mu.Lock()
	m.held = next
	m.mu.Unlock()
	return next, nil
}

// Resign voluntarily ends the tenure by expiring the record in place
// (TTL 0), letting a standby acquire without waiting out the window.
func (m *LeaseManager) Resign() error {
	m.mu.Lock()
	held := m.held
	m.held = nil
	m.mu.Unlock()
	if held == nil {
		return nil
	}
	raw, cur, err := m.readRecord()
	if err != nil {
		return err
	}
	if cur == nil || cur.Holder != m.name || cur.Epoch != held.Epoch {
		return nil // already superseded; nothing to give up
	}
	next := &statestore.Lease{Holder: m.name, Epoch: cur.Epoch, GrantedNs: cur.GrantedNs, TTLNs: 0}
	if _, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode()); err != nil {
		return err
	}
	return nil
}

// HeldEpoch returns the epoch of the replica's current tenure (0 when
// not active).
func (m *LeaseManager) HeldEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held == nil {
		return 0
	}
	return m.held.Epoch
}

// FenceError is a classified fencing refusal. It unwraps to ErrNotActive
// (and through it to controller.ErrFenced), so transport-level callers
// see one error class while the audit trail keeps the precise cause.
type FenceError struct {
	// Cause is one of the Cause* fencing labels.
	Cause string
	// Detail is the human-readable specifics.
	Detail string
}

func (e *FenceError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v: %s", ErrNotActive, e.Cause)
	}
	return fmt.Sprintf("%v: %s (%s)", ErrNotActive, e.Cause, e.Detail)
}

// Unwrap chains into ErrNotActive -> controller.ErrFenced.
func (e *FenceError) Unwrap() error { return ErrNotActive }

// FenceCause maps a fencing error to its audit cause label.
func FenceCause(err error) string {
	var fe *FenceError
	if errors.As(err, &fe) {
		return fe.Cause
	}
	if err != nil {
		return CauseNeverActive
	}
	return ""
}

// Fence is the admit-or-refuse check run before every signed send and
// every durable persist: the STORED record must still name this replica
// at its acquired epoch, unexpired. Consulting the store (not the cached
// grant) is what catches supersession — a deposed-but-alive active reads
// the usurper's record and refuses itself. The returned error wraps
// controller.ErrFenced via ErrNotActive.
func (m *LeaseManager) Fence() error {
	m.mu.Lock()
	held := m.held
	m.mu.Unlock()
	if held == nil {
		return &FenceError{Cause: CauseNeverActive}
	}
	_, cur, err := m.readRecord()
	if err != nil {
		return &FenceError{Cause: CauseLeaseUnreadable, Detail: err.Error()}
	}
	if cur == nil {
		return &FenceError{Cause: CauseLeaseUnreadable}
	}
	if cur.Holder != m.name || cur.Epoch != held.Epoch {
		return &FenceError{Cause: CauseDeposed,
			Detail: fmt.Sprintf("holder %s epoch %d, ours %d", cur.Holder, cur.Epoch, held.Epoch)}
	}
	if now := uint64(m.clock.Now()); now >= cur.ExpiresNs() {
		return &FenceError{Cause: CauseLeaseExpired,
			Detail: fmt.Sprintf("at %dns, expired %dns", now, cur.ExpiresNs())}
	}
	return nil
}
