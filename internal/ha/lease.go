package ha

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p4auth/internal/statestore"
)

// LeaseManager is one replica's view of the controller-ownership lease.
// All mutations go through the store's compare-and-swap, so two managers
// racing over the same store serialize on the record itself — there is
// no other coordination channel, which is the point: whatever survives
// in the record IS the truth.
type LeaseManager struct {
	st    statestore.Store
	swap  statestore.Swapper
	clock Clock
	name  string
	ttl   time.Duration
	// grace is the bounded-staleness window: with the store unreadable,
	// a cached grant keeps admitting for at most this long past the last
	// successful read. Zero means strict fencing (any store error
	// refuses). skew is the assumed worst-case clock divergence between
	// replicas; grace + skew < ttl is enforced at configuration.
	grace time.Duration
	skew  time.Duration
	// onDegraded observes degraded-mode transitions and admissions (set
	// once at wiring time, before concurrent use).
	onDegraded func(ev DegradedEvent, detail string)

	mu sync.Mutex
	// held is the last grant this replica obtained (Holder == name);
	// nil before the first Acquire and after a detected deposition.
	held *statestore.Lease
	// cached is the record seen at the last successful store round trip
	// (read or CAS), with its clock time: the evidence degraded-mode
	// admission runs on while the store is unreadable.
	cached     *statestore.Lease
	cachedAtNs uint64
	cacheValid bool
	degraded   bool
}

// NewLeaseManager returns a manager for the named replica. The store
// must support compare-and-swap (both bundled backends do). The name
// must fit the PALS codec's 16-bit holder length — validated here so
// Encode's refusal is unreachable from this writer.
func NewLeaseManager(st statestore.Store, clock Clock, name string, ttl time.Duration) (*LeaseManager, error) {
	swap, ok := st.(statestore.Swapper)
	if !ok {
		return nil, fmt.Errorf("ha: store %T does not support CompareAndSwap", st)
	}
	if name == "" {
		return nil, fmt.Errorf("ha: replica needs a name")
	}
	if len(name) > statestore.MaxLeaseHolderLen {
		return nil, fmt.Errorf("ha: replica name is %d bytes, max %d (PALS holder field)",
			len(name), statestore.MaxLeaseHolderLen)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("ha: lease TTL must be positive")
	}
	return &LeaseManager{st: st, swap: swap, clock: clock, name: name, ttl: ttl}, nil
}

// ConfigureStaleness enables bounded-staleness fencing: while the store
// is unreadable, the last successfully read grant keeps admitting for
// up to grace past its read time, but never within skew of the grant's
// own expiry. The non-overlap argument requires grace + skew strictly
// less than the TTL (see PROTOCOL.md); configurations outside it are
// refused. grace == 0 restores strict fencing.
func (m *LeaseManager) ConfigureStaleness(grace, skew time.Duration) error {
	if grace < 0 || skew < 0 {
		return fmt.Errorf("ha: negative staleness bound (grace %v, skew %v)", grace, skew)
	}
	if grace > 0 && grace+skew >= m.ttl {
		return fmt.Errorf("ha: grace %v + skew %v must be strictly less than TTL %v", grace, skew, m.ttl)
	}
	m.mu.Lock()
	m.grace, m.skew = grace, skew
	m.mu.Unlock()
	return nil
}

// SetDegradedObserver installs the degraded-mode observer (metrics and
// audit wiring). Install before concurrent use.
func (m *LeaseManager) SetDegradedObserver(fn func(ev DegradedEvent, detail string)) {
	m.mu.Lock()
	m.onDegraded = fn
	m.mu.Unlock()
}

// Name returns the replica name the manager grants to.
func (m *LeaseManager) Name() string { return m.name }

// readRecord loads the current record. It returns the raw bytes for the
// CAS precondition and the decoded lease (nil when absent or corrupt —
// a corrupt record reads as "no lease" but its bytes still gate the
// swap, so two replicas cannot both claim over the same garbage).
func (m *LeaseManager) readRecord() ([]byte, *statestore.Lease, error) {
	raw, err := m.st.Load(statestore.LeaseKey)
	if errors.Is(err, statestore.ErrNotFound) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	l, derr := statestore.DecodeLease(raw)
	if derr != nil {
		return raw, nil, nil
	}
	return raw, l, nil
}

// Acquire claims the lease, incrementing the fencing epoch. It refuses
// with ErrLeaseHeld while another replica's grant is unexpired, with
// ErrLeaseRaced when the swap lost a concurrent update, and with
// ErrEpochExhausted when the stored epoch cannot be incremented without
// wrapping — a wrapped epoch would let a new tenure alias epoch 0 and
// break the fence's monotonicity.
func (m *LeaseManager) Acquire() (*statestore.Lease, error) {
	now := uint64(m.clock.Now())
	raw, cur, err := m.readRecord()
	if err != nil {
		return nil, err
	}
	var epoch uint64 = 1
	if cur != nil {
		if cur.Holder != m.name && now < cur.ExpiresNs() {
			return nil, fmt.Errorf("%w (holder %s epoch %d until %dns)",
				ErrLeaseHeld, cur.Holder, cur.Epoch, cur.ExpiresNs())
		}
		if cur.Epoch == ^uint64(0) {
			return nil, fmt.Errorf("%w (stored epoch %d)", ErrEpochExhausted, cur.Epoch)
		}
		epoch = cur.Epoch + 1
	}
	next := &statestore.Lease{Holder: m.name, Epoch: epoch, GrantedNs: now, TTLNs: uint64(m.ttl)}
	ok, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrLeaseRaced
	}
	m.mu.Lock()
	m.held = next
	m.mu.Unlock()
	m.noteHealthy(next, now)
	return next, nil
}

// Renew extends the validity window of the current tenure at the same
// epoch. ErrDeposed means another replica acquired in between; the
// caller must stop driving switches (its fence already refuses).
func (m *LeaseManager) Renew() (*statestore.Lease, error) {
	m.mu.Lock()
	held := m.held
	m.mu.Unlock()
	if held == nil {
		return nil, ErrNotActive
	}
	raw, cur, err := m.readRecord()
	if err != nil {
		return nil, err
	}
	if cur == nil || cur.Holder != m.name || cur.Epoch != held.Epoch {
		m.mu.Lock()
		m.held = nil
		m.mu.Unlock()
		return nil, ErrDeposed
	}
	now := uint64(m.clock.Now())
	next := &statestore.Lease{Holder: m.name, Epoch: cur.Epoch, GrantedNs: now, TTLNs: uint64(m.ttl)}
	ok, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrLeaseRaced
	}
	m.mu.Lock()
	m.held = next
	m.mu.Unlock()
	m.noteHealthy(next, now)
	return next, nil
}

// Resign voluntarily ends the tenure by expiring the record in place
// (TTL 0), letting a standby acquire without waiting out the window.
func (m *LeaseManager) Resign() error {
	m.mu.Lock()
	held := m.held
	m.held = nil
	m.mu.Unlock()
	if held == nil {
		return nil
	}
	raw, cur, err := m.readRecord()
	if err != nil {
		return err
	}
	if cur == nil || cur.Holder != m.name || cur.Epoch != held.Epoch {
		return nil // already superseded; nothing to give up
	}
	next := &statestore.Lease{Holder: m.name, Epoch: cur.Epoch, GrantedNs: cur.GrantedNs, TTLNs: 0}
	if _, err := m.swap.CompareAndSwap(statestore.LeaseKey, raw, next.Encode()); err != nil {
		return err
	}
	return nil
}

// HeldEpoch returns the epoch of the replica's current tenure (0 when
// not active).
func (m *LeaseManager) HeldEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.held == nil {
		return 0
	}
	return m.held.Epoch
}

// FenceError is a classified fencing refusal. It unwraps to ErrNotActive
// (and through it to controller.ErrFenced), so transport-level callers
// see one error class while the audit trail keeps the precise cause.
type FenceError struct {
	// Cause is one of the Cause* fencing labels.
	Cause string
	// Detail is the human-readable specifics.
	Detail string
}

func (e *FenceError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("%v: %s", ErrNotActive, e.Cause)
	}
	return fmt.Sprintf("%v: %s (%s)", ErrNotActive, e.Cause, e.Detail)
}

// Unwrap chains into ErrNotActive -> controller.ErrFenced.
func (e *FenceError) Unwrap() error { return ErrNotActive }

// FenceCause maps a fencing error to its audit cause label.
func FenceCause(err error) string {
	var fe *FenceError
	if errors.As(err, &fe) {
		return fe.Cause
	}
	if err != nil {
		return CauseNeverActive
	}
	return ""
}

// Fence is the admit-or-refuse check run before every signed send and
// every durable persist: the STORED record must still name this replica
// at its acquired epoch, unexpired. Consulting the store (not the cached
// grant) is what catches supersession — a deposed-but-alive active reads
// the usurper's record and refuses itself.
//
// When the store itself is unreadable (a real I/O error, not an absent
// or corrupt record), strict refusal would let a one-poll store blip
// fence a perfectly healthy active. With ConfigureStaleness enabled,
// the manager instead honors the grant seen at the last successful
// round trip, bounded two ways: no longer than grace past that read,
// and never within skew of the cached grant's own expiry. Both bounds
// keep degraded admission strictly inside the tenure window no
// successor can enter (see the non-overlap sketch in PROTOCOL.md), so
// the blip is survivable yet can never produce two writers. Once the
// grace is exhausted the replica fences itself — fail-safe, never
// fail-open. The returned error wraps controller.ErrFenced via
// ErrNotActive.
func (m *LeaseManager) Fence() error {
	m.mu.Lock()
	held := m.held
	m.mu.Unlock()
	if held == nil {
		return &FenceError{Cause: CauseNeverActive}
	}
	now := uint64(m.clock.Now())
	_, cur, err := m.readRecord()
	if err != nil {
		return m.fenceDegraded(held, now, err)
	}
	m.noteHealthy(cur, now)
	if cur == nil {
		return &FenceError{Cause: CauseLeaseUnreadable}
	}
	if cur.Holder != m.name || cur.Epoch != held.Epoch {
		return &FenceError{Cause: CauseDeposed,
			Detail: fmt.Sprintf("holder %s epoch %d, ours %d", cur.Holder, cur.Epoch, held.Epoch)}
	}
	if now >= cur.ExpiresNs() {
		return &FenceError{Cause: CauseLeaseExpired,
			Detail: fmt.Sprintf("at %dns, expired %dns", now, cur.ExpiresNs())}
	}
	return nil
}

// noteHealthy records a successful store round trip (read or CAS): the
// observed record becomes the degraded-mode evidence, and any degraded
// episode ends.
func (m *LeaseManager) noteHealthy(cur *statestore.Lease, now uint64) {
	m.mu.Lock()
	m.cached = cur
	m.cachedAtNs = now
	m.cacheValid = cur != nil
	exited := m.degraded
	m.degraded = false
	cb := m.onDegraded
	m.mu.Unlock()
	if exited && cb != nil {
		cb(DegradedExit, "store readable again")
	}
}

// fenceDegraded is the store-unreadable admission path. It admits only
// on cached evidence that (a) names this replica at its held epoch,
// (b) is younger than the grace window, and (c) is not within skew of
// its own expiry. Anything else refuses — a store outage can silence an
// active, never mint one.
func (m *LeaseManager) fenceDegraded(held *statestore.Lease, now uint64, rerr error) error {
	m.mu.Lock()
	cached, at, valid := m.cached, m.cachedAtNs, m.cacheValid
	grace, skew := m.grace, m.skew
	wasDegraded := m.degraded

	var ferr *FenceError
	switch {
	case grace <= 0:
		ferr = &FenceError{Cause: CauseStoreUnavailable, Detail: rerr.Error()}
	case !valid || cached == nil || cached.Holder != m.name || cached.Epoch != held.Epoch:
		ferr = &FenceError{Cause: CauseStoreUnavailable,
			Detail: "no admissible cached grant: " + rerr.Error()}
	case now < at:
		// The clock ran backwards relative to the cache; evidence age is
		// meaningless, so fail safe.
		ferr = &FenceError{Cause: CauseStoreUnavailable, Detail: "cached grant from the future"}
	case now-at > uint64(grace):
		ferr = &FenceError{Cause: CauseGraceExhausted,
			Detail: fmt.Sprintf("store unreadable for %dns, grace %dns: %v", now-at, grace, rerr)}
	case now+uint64(skew) >= cached.ExpiresNs():
		ferr = &FenceError{Cause: CauseLeaseExpired,
			Detail: fmt.Sprintf("degraded at %dns, within skew %dns of expiry %dns", now, skew, cached.ExpiresNs())}
	}
	if ferr != nil {
		m.degraded = false
		cb := m.onDegraded
		m.mu.Unlock()
		if wasDegraded && cb != nil {
			cb(DegradedExhausted, ferr.Cause)
		}
		return ferr
	}
	m.degraded = true
	cb := m.onDegraded
	m.mu.Unlock()
	if cb != nil {
		if !wasDegraded {
			cb(DegradedEnter, rerr.Error())
		}
		cb(DegradedAdmit, "")
	}
	return nil
}

// InDegraded reports whether the manager is currently admitting on
// cached evidence (the store was unreadable at the last fence check).
func (m *LeaseManager) InDegraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// CurrentLease reads the stored record: the decoded lease (nil when
// absent or corrupt) or the store's I/O error. Election logic uses it
// to distinguish a live holder from a dead one's unexpired grant.
func (m *LeaseManager) CurrentLease() (*statestore.Lease, error) {
	_, cur, err := m.readRecord()
	return cur, err
}
