package ha

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// tclock is a hand-advanced test clock.
type tclock struct{ d time.Duration }

func (c *tclock) Now() time.Duration { return c.d }

func TestLeaseLifecycle(t *testing.T) {
	st := statestore.NewMem()
	clk := &tclock{}
	a, err := NewLeaseManager(st, clk, "ctl-a", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLeaseManager(st, clk, "ctl-b", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	// Before any grant, both are fenced with never-active.
	if err := a.Fence(); FenceCause(err) != CauseNeverActive {
		t.Fatalf("pre-grant fence = %v", err)
	}

	l, err := a.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 1 || l.Holder != "ctl-a" {
		t.Fatalf("first grant = %+v", l)
	}
	if err := a.Fence(); err != nil {
		t.Fatalf("holder fenced: %v", err)
	}
	if err := b.Fence(); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("standby fence = %v, want ErrFenced chain", err)
	}

	// The standby cannot acquire while the grant is fresh.
	if _, err := b.Acquire(); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("standby acquire = %v, want ErrLeaseHeld", err)
	}

	// Renewal keeps the epoch.
	clk.d = 5 * time.Millisecond
	l2, err := a.Renew()
	if err != nil || l2.Epoch != 1 {
		t.Fatalf("renew = (%+v, %v)", l2, err)
	}

	// Expiry: the holder self-fences, the standby can take over at a
	// higher epoch, and the deposed holder's renew fails.
	clk.d = 20 * time.Millisecond
	if err := a.Fence(); FenceCause(err) != CauseLeaseExpired {
		t.Fatalf("expired fence = %v", err)
	}
	l3, err := b.Acquire()
	if err != nil || l3.Epoch != 2 {
		t.Fatalf("takeover = (%+v, %v)", l3, err)
	}
	if err := b.Fence(); err != nil {
		t.Fatalf("new holder fenced: %v", err)
	}
	if err := a.Fence(); FenceCause(err) != CauseDeposed {
		t.Fatalf("deposed fence = %v", err)
	}
	if _, err := a.Renew(); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed renew = %v, want ErrDeposed", err)
	}

	// Resign lets the peer in without waiting out the TTL.
	if err := b.Resign(); err != nil {
		t.Fatal(err)
	}
	l4, err := a.Acquire()
	if err != nil || l4.Epoch != 3 {
		t.Fatalf("acquire after resign = (%+v, %v)", l4, err)
	}
}

func TestLeaseCorruptRecordReadsAsAbsent(t *testing.T) {
	st := statestore.NewMem()
	clk := &tclock{}
	if err := st.Save(statestore.LeaseKey, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	m, err := NewLeaseManager(st, clk, "ctl-a", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Acquire()
	if err != nil {
		t.Fatalf("acquire over corrupt record: %v", err)
	}
	if l.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 (corrupt record carries no epoch)", l.Epoch)
	}
}

// haFleet builds n switches and two replicas (a bootstrap active and a
// fenced standby) over one shared store, observer, and clock.
type haFleet struct {
	st    *statestore.Mem
	clk   *tclock
	ob    *obs.Observer
	names []string
	sw    map[string]*deploy.Switch
	a, b  *Replica
}

func newHAFleet(t *testing.T, n int, ttl time.Duration) *haFleet {
	t.Helper()
	clk := &tclock{}
	f := newHAFleetWith(t, n, ttl, clk)
	f.clk = clk
	return f
}

// newHAFleetWith is the clock-parameterized fixture shared with the
// stress test.
func newHAFleetWith(t *testing.T, n int, ttl time.Duration, clk Clock) *haFleet {
	t.Helper()
	f := &haFleet{
		st: statestore.NewMem(),
		ob: obs.NewObserver(0),
		sw: map[string]*deploy.Switch{},
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.sw[name] = s
		f.names = append(f.names, name)
	}
	mk := func(replica string, seed uint64) *Replica {
		c := controller.New(crypto.NewSeededRand(seed))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		for _, nm := range f.names {
			s := f.sw[nm]
			if err := c.Register(nm, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		r, err := NewReplica(ReplicaConfig{
			Name: replica, Store: f.st, Clock: clk, TTL: ttl,
			Controller: c, Observer: f.ob,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	f.a = mk("ctl-a", 101)
	f.b = mk("ctl-b", 202)
	return f
}

func TestReplicaFailover(t *testing.T) {
	ttl := 50 * time.Millisecond
	f := newHAFleet(t, 3, ttl)
	if _, err := f.a.Activate(CauseBootstrap); err != nil {
		t.Fatal(err)
	}
	if _, err := f.a.Controller().InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	for _, nm := range f.names {
		if _, err := f.a.Controller().WriteRegister(nm, "lat", 1, 77); err != nil {
			t.Fatal(err)
		}
	}
	// The standby tails what the active persisted: one snapshot per
	// switch at least.
	n, err := f.b.TailOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n < len(f.names) {
		t.Fatalf("standby tailed %d records, want >= %d", n, len(f.names))
	}
	// The standby is fenced: its sends and persists are refused.
	if _, err := f.b.Controller().WriteRegister(f.names[0], "lat", 2, 1); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("standby write = %v, want ErrFenced", err)
	}

	// Active dies; the standby notices by lease expiry (the record is
	// the heartbeat) and promotes. It CANNOT acquire earlier — that is
	// the fencing guarantee, and the TTL bounds the detection time.
	f.a.Controller().Kill()
	if _, err := f.b.Activate(CausePromoted); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("takeover before expiry = %v, want ErrLeaseHeld", err)
	}
	f.clk.d += ttl + time.Millisecond
	warm, dur, err := f.b.Promote(CausePromoted)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if dur < 0 {
		t.Fatalf("failover duration %v", dur)
	}
	for _, nm := range f.names {
		if !warm[nm] {
			t.Fatalf("%s recovered cold (K_seed) after tailed snapshots", nm)
		}
		if u := f.b.Controller().SeedUses(nm); u != 0 {
			t.Fatalf("%s: promotion used K_seed %d times", nm, u)
		}
	}
	if f.b.Epoch() != 2 {
		t.Fatalf("post-promotion epoch = %d, want 2", f.b.Epoch())
	}

	// The new active serves; registers survived the failover.
	for _, nm := range f.names {
		v, _, err := f.b.Controller().ReadRegister(nm, "lat", 1)
		if err != nil || v != 77 {
			t.Fatalf("%s lat[1] after failover = (%d, %v), want 77", nm, v, err)
		}
	}

	// The deposed active (process alive again in the fenced sense — the
	// kill only models its crash; a restarted-but-stale instance would
	// look identical) cannot write: fence first, not luck.
	if err := f.a.Fence(); FenceCause(err) != CauseDeposed {
		t.Fatalf("deposed active fence = %v", err)
	}

	// Reconciliation: every fenced refusal audited, every failover too.
	m, a := f.ob.Metrics, f.ob.Audit
	fw := m.Counter("ha.fenced_writes").Load() + m.Counter("ha.fenced_persists").Load()
	if n := uint64(len(a.ByType(obs.EvFencedWrite))); n != fw {
		t.Fatalf("fenced refusals: %d counted, %d audited", fw, n)
	}
	if got := m.Counter("ha.failovers").Load(); got != uint64(len(a.ByType(obs.EvFailover))) || got != 2 {
		t.Fatalf("failovers = %d, audited %d, want 2", got, len(a.ByType(obs.EvFailover)))
	}
}

// TestReplicaSplitBrainAttempt: the active's lease lapses while it is
// alive; the standby takes over; the old active's in-flight writes are
// refused by the epoch fence and its renewal fails.
func TestReplicaSplitBrainAttempt(t *testing.T) {
	ttl := 10 * time.Millisecond
	f := newHAFleet(t, 2, ttl)
	if _, err := f.a.Activate(CauseBootstrap); err != nil {
		t.Fatal(err)
	}
	if _, err := f.a.Controller().InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.a.Controller().WriteRegister("s00", "lat", 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.b.TailOnce(); err != nil {
		t.Fatal(err)
	}

	// The active stalls past its TTL (GC pause, partition…).
	f.clk.d += ttl * 2
	warm, _, err := f.b.Promote(CausePromoted)
	if err != nil {
		t.Fatalf("promote after expiry: %v", err)
	}
	if !warm["s00"] || !warm["s01"] {
		t.Fatalf("promotion fell cold: %v", warm)
	}

	// Both replicas are alive. Only one can write.
	if _, err := f.a.Controller().WriteRegister("s00", "lat", 3, 666); !errors.Is(err, controller.ErrFenced) {
		t.Fatalf("old active write = %v, want ErrFenced", err)
	}
	if err := f.a.Renew(); !errors.Is(err, ErrDeposed) && !errors.Is(err, ErrNotActive) {
		t.Fatalf("old active renew = %v", err)
	}
	if _, err := f.b.Controller().WriteRegister("s00", "lat", 3, 42); err != nil {
		t.Fatalf("new active write: %v", err)
	}
	v, _, err := f.b.Controller().ReadRegister("s00", "lat", 3)
	if err != nil || v != 42 {
		t.Fatalf("lat[3] = (%d, %v), want 42 — the fenced 666 must never land", v, err)
	}

	// Every refused attempt by the old active is audited as deposed.
	for _, e := range f.ob.Audit.ByType(obs.EvFencedWrite) {
		if e.Actor == "ctl-a" && e.Cause != CauseDeposed && e.Cause != CauseLeaseExpired {
			t.Fatalf("old-active refusal cause = %q", e.Cause)
		}
	}
}
