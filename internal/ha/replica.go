package ha

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
)

// ReplicaConfig wires one controller replica into an HA pair (or group).
type ReplicaConfig struct {
	// Name identifies the replica in the lease record and the audit log.
	Name string
	// Store is the shared durable store both replicas attach to. It must
	// support compare-and-swap (statestore.Swapper).
	Store statestore.Store
	// Clock is the shared time base for lease grant/expiry decisions.
	Clock Clock
	// TTL is the lease validity window; the active must Renew within it.
	TTL time.Duration
	// Controller is this replica's controller, with all fleet switches
	// already registered. The replica takes over its crash-safety store
	// (wrapped in the fence) and its send fence.
	Controller *controller.Controller
	// Observer, when non-nil, is installed on the controller — the chaos
	// harness shares one across replicas so the audit trail and metrics
	// span the failover.
	Observer *obs.Observer
	// FenceGrace, when positive, arms bounded-staleness fencing: a store
	// read error inside the fence is answered from the last good read for
	// at most this long. FenceGrace+MaxSkew must be strictly less than
	// TTL, or NewReplica refuses (the non-overlap proof needs the margin;
	// see LeaseManager.ConfigureStaleness). Zero keeps the strict fence:
	// any store error refuses immediately.
	FenceGrace time.Duration
	// MaxSkew bounds the clock disagreement assumed between this replica
	// and any would-be successor when admitting on cached evidence.
	MaxSkew time.Duration
}

// haMetrics is the replica's pre-resolved ha.* instrument set.
type haMetrics struct {
	failovers      *obs.Counter
	leaseAcquire   *obs.Counter
	leaseRenew     *obs.Counter
	fencedWrites   *obs.Counter
	fencedPersists *obs.Counter
	tailRecords    *obs.Counter
	failoverNs     *obs.Histogram
	// Bounded-staleness fencing: episodes entered/resolved and the
	// admissions made on cached evidence while the store was dark.
	degradedEnters    *obs.Counter
	degradedExits     *obs.Counter
	degradedExhausted *obs.Counter
	degradedAdmits    *obs.Counter
}

// Replica is one controller in an active/standby group. A replica is
// born fenced: until Activate or Promote wins the lease, every signed
// send and every durable persist of its controller is refused. The
// standby's job while fenced is TailOnce — following the active's
// snapshots and WAL so promotion is a warm restart over known state.
type Replica struct {
	name  string
	mgr   *LeaseManager
	ctl   *controller.Controller
	clock Clock
	ob    *obs.Observer
	met   haMetrics
	// ctlTail / walTail follow the active's snapshots and journal.
	ctlTail *statestore.Tailer
	walTail *statestore.Tailer
}

// NewReplica builds a fenced replica around cfg.Controller: installs the
// send fence, reattaches crash safety through a FencedStore, and points
// the tailers at the shared store.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("ha: replica needs a controller")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("ha: replica needs a clock")
	}
	mgr, err := NewLeaseManager(cfg.Store, cfg.Clock, cfg.Name, cfg.TTL)
	if err != nil {
		return nil, err
	}
	if err := mgr.ConfigureStaleness(cfg.FenceGrace, cfg.MaxSkew); err != nil {
		return nil, err
	}
	ob := cfg.Observer
	if ob == nil {
		ob = cfg.Controller.Observer()
	} else {
		cfg.Controller.SetObserver(ob)
	}
	m := ob.Metrics
	r := &Replica{
		name:  cfg.Name,
		mgr:   mgr,
		ctl:   cfg.Controller,
		clock: cfg.Clock,
		ob:    ob,
		met: haMetrics{
			failovers:      m.Counter("ha.failovers"),
			leaseAcquire:   m.Counter("ha.lease_acquire"),
			leaseRenew:     m.Counter("ha.lease_renew"),
			fencedWrites:   m.Counter("ha.fenced_writes"),
			fencedPersists: m.Counter("ha.fenced_persists"),
			tailRecords:    m.Counter("ha.tail_records"),
			failoverNs:     m.Histogram("ha.failover_ns"),

			degradedEnters:    m.Counter("ha.degraded_enters"),
			degradedExits:     m.Counter("ha.degraded_exits"),
			degradedExhausted: m.Counter("ha.degraded_exhausted"),
			degradedAdmits:    m.Counter("ha.degraded_admits"),
		},
		ctlTail: statestore.NewTailer(cfg.Store, "ctl/"),
		walTail: statestore.NewTailer(cfg.Store, "wal/"),
	}
	fenced := NewFencedStore(cfg.Store, mgr.Fence, func(op, key string, ferr error) {
		r.met.fencedPersists.Inc()
		r.ob.Audit.Append(obs.EvFencedWrite, r.name, FenceCause(ferr), 0, mgr.HeldEpoch())
	})
	mgr.SetDegradedObserver(func(ev DegradedEvent, detail string) {
		switch ev {
		case DegradedAdmit:
			// High-frequency (one per admitted send); counted, not audited.
			r.met.degradedAdmits.Inc()
			return
		case DegradedEnter:
			r.met.degradedEnters.Inc()
		case DegradedExit:
			r.met.degradedExits.Inc()
		case DegradedExhausted:
			r.met.degradedExhausted.Inc()
		}
		r.ob.Audit.Append(obs.EvDegraded, r.name, string(ev), 0, mgr.HeldEpoch())
	})
	if err := cfg.Controller.EnableCrashSafety(fenced); err != nil {
		return nil, err
	}
	cfg.Controller.SetSendFence(r.sendFence)
	return r, nil
}

// sendFence is installed as the controller's wire-send fence: every
// refusal is counted and audited before the error reaches the transport.
func (r *Replica) sendFence() error {
	err := r.mgr.Fence()
	if err != nil {
		r.met.fencedWrites.Inc()
		r.ob.Audit.Append(obs.EvFencedWrite, r.name, FenceCause(err), 0, r.mgr.HeldEpoch())
	}
	return err
}

// Name returns the replica name.
func (r *Replica) Name() string { return r.name }

// Controller returns the replica's controller.
func (r *Replica) Controller() *controller.Controller { return r.ctl }

// Epoch returns the fencing epoch of the current tenure (0 if fenced).
func (r *Replica) Epoch() uint64 { return r.mgr.HeldEpoch() }

// IsActive reports whether the replica currently passes its own fence.
// Note this consults the store — it goes false the moment a usurper's
// record lands, even before this replica notices in any other way.
func (r *Replica) IsActive() bool { return r.mgr.Fence() == nil }

// Fence exposes the raw fence check (nil = active).
func (r *Replica) Fence() error { return r.mgr.Fence() }

// Activate claims the lease without recovery — the bootstrap path for
// the first active, which initializes keys itself afterwards. The grant
// is counted and audited as a failover with the given cause.
func (r *Replica) Activate(cause string) (*statestore.Lease, error) {
	l, err := r.mgr.Acquire()
	if err != nil {
		return nil, err
	}
	r.met.leaseAcquire.Inc()
	r.met.failovers.Inc()
	r.ob.Audit.Append(obs.EvFailover, r.name, cause, 0, l.Epoch)
	return l, nil
}

// Renew extends the active tenure; the lease record is the heartbeat.
func (r *Replica) Renew() error {
	if _, err := r.mgr.Renew(); err != nil {
		return err
	}
	r.met.leaseRenew.Inc()
	return nil
}

// Resign voluntarily expires the tenure (planned handoff).
func (r *Replica) Resign() error { return r.mgr.Resign() }

// Observer returns the replica's observer (shared across the group when
// ReplicaConfig.Observer was set).
func (r *Replica) Observer() *obs.Observer { return r.ob }

// CurrentLease reads the stored lease record through the replica's
// manager: (nil, nil) means no valid record (absent, corrupt, or torn).
// Election logic uses this to find the incumbent and its expiry.
func (r *Replica) CurrentLease() (*statestore.Lease, error) { return r.mgr.CurrentLease() }

// InDegraded reports whether the replica's fence is currently admitting
// on cached evidence (store unreadable, grace not yet exhausted).
func (r *Replica) InDegraded() bool { return r.mgr.InDegraded() }

// TailOnce polls the active's snapshots and WAL once, returning how many
// changed records were observed. The standby runs this continuously; the
// records themselves stay in the store (recovery reads them from there),
// tailing is about knowing how far behind the store the standby can be —
// which is zero, by construction, the moment Poll returns.
func (r *Replica) TailOnce() (int, error) {
	n := 0
	for _, t := range []*statestore.Tailer{r.ctlTail, r.walTail} {
		ch, err := t.Poll()
		if err != nil {
			return n, err
		}
		n += len(ch)
	}
	if n > 0 {
		r.met.tailRecords.Add(uint64(n))
	}
	return n, nil
}

// Promote is the failover: acquire the lease (fencing the deposed active
// from this instant), then warm-restart every switch from the tailed
// snapshots and journal — replay floors come back lease-bumped
// (core.FloorLease) and surviving write intents settle by authenticated
// read-back, exactly as a single-controller crash restart. The lease is
// renewed between switches: a fleet-sized recovery can outlast the TTL,
// and an active that let its own grant lapse mid-restart would fence
// itself half-recovered (the lease record doubles as the heartbeat).
// Returns the per-switch warm map, the failover duration on the replica
// clock, and any recovery error.
func (r *Replica) Promote(cause string) (map[string]bool, time.Duration, error) {
	t0 := r.clock.Now()
	if _, err := r.Activate(cause); err != nil {
		return nil, 0, err
	}
	names := r.ctl.SwitchNames()
	warm := make(map[string]bool, len(names))
	var errs []error
	for _, name := range names {
		if r.ctl.Killed() {
			// The replica died mid-promotion (chaos kill, crash). Stop at
			// once: the group's next candidate must see an abandoned, not a
			// half-driven, promotion.
			errs = append(errs, fmt.Errorf("ha: replica killed mid-promotion before %s: %w", name, controller.ErrKilled))
			break
		}
		w, err := r.ctl.WarmRestart(name)
		warm[name] = w
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
		if err := r.Renew(); err != nil {
			// Superseded mid-promotion: stop driving switches immediately —
			// the fence already refuses, finishing would only burn retries.
			errs = append(errs, fmt.Errorf("ha: lease lost mid-promotion after %s: %w", name, err))
			break
		}
	}
	d := r.clock.Now() - t0
	r.met.failoverNs.Observe(uint64(d))
	return warm, d, errors.Join(errs...)
}
