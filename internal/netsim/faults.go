package netsim

// Fault injection: deterministic packet loss and bit corruption built as
// link taps, for exercising protocol behaviour under unreliable links
// (KMP response loss, probe loss, garbled feedback).

import (
	"fmt"
	"math"
)

// NewLossTap returns a tap that drops every packet whose deterministic
// per-packet draw falls below rate (0 = never, 1 = always). The stream is
// reproducible from the seed. The rate must be a real number in [0, 1].
func NewLossTap(rate float64, seed uint64) (Tap, error) {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("netsim: loss rate %v outside [0,1]", rate)
	}
	state := seed
	return func(data []byte) []byte {
		state = splitmix(state)
		draw := float64(state>>11) / float64(1<<53)
		if draw < rate {
			return nil
		}
		return data
	}, nil
}

// LossTap is NewLossTap for static configurations; it panics on an invalid
// rate instead of returning an error.
func LossTap(rate float64, seed uint64) Tap {
	t, err := NewLossTap(rate, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// NewCorruptTap returns a tap that flips one deterministic bit in every
// Nth packet. The corrupted packet is a copy: the caller's buffer is never
// mutated, so a sender retransmitting the same bytes is unaffected. The
// period n must be >= 1 (1 corrupts every packet).
func NewCorruptTap(n int, seed uint64) (Tap, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: corruption period %d must be >= 1", n)
	}
	count := 0
	state := seed
	return func(data []byte) []byte {
		count++
		if count%n != 0 || len(data) == 0 {
			return data
		}
		state = splitmix(state)
		out := make([]byte, len(data))
		copy(out, data)
		byteIdx := int(state % uint64(len(out)))
		bit := byte(1) << ((state >> 8) % 8)
		out[byteIdx] ^= bit
		return out
	}, nil
}

// CorruptTap is NewCorruptTap for static configurations, keeping the
// historical behaviour of clamping n <= 1 to "corrupt every packet".
func CorruptTap(n int, seed uint64) Tap {
	if n < 1 {
		n = 1
	}
	t, err := NewCorruptTap(n, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// Reorderer reorders a packet stream with a deterministic three-slot
// pattern: packet 3k+1 is held (a copy) and dropped from its slot,
// packet 3k+2 passes through, and packet 3k+3 is replaced by the held
// packet. Against a pipelined sender this delivers later window members
// before earlier ones — the receiver's replay floor overtakes the held
// packet's sequence number, so its eventual delivery (or retransmission)
// draws a replay rejection and forces a re-sign with a fresh number.
// That is precisely the out-of-order hazard the windowed transport must
// absorb, produced without any randomness.
//
// A Reorderer owns a held slot, so its lifetime matters: tear the tap
// down with Close when its link goes away. A closed Reorderer drops the
// held packet and passes everything through verbatim — without Close, a
// tap that is re-invoked after link teardown would emit a packet from
// the torn-down stream into the new one.
type Reorderer struct {
	period int
	count  int
	held   []byte
	closed bool
}

// NewReorderer returns a Reorderer; the period must be >= 3 (3 reorders
// every triple). Install it with Reorderer.Tap.
func NewReorderer(period int) (*Reorderer, error) {
	if period < 3 {
		return nil, fmt.Errorf("netsim: reorder period %d must be >= 3", period)
	}
	return &Reorderer{period: period}, nil
}

// Tap is the Reorderer's link tap; the method value satisfies Tap.
func (r *Reorderer) Tap(data []byte) []byte {
	if r.closed {
		return data
	}
	r.count++
	switch r.count % r.period {
	case 1:
		r.held = append(r.held[:0], data...)
		return nil // held back: its slot goes empty
	case 0:
		if r.held == nil {
			return data
		}
		out := r.held
		r.held = nil
		return out // delivered late, after its successors
	default:
		return data
	}
}

// Close tears the reorderer down: the held slot (if any) is dropped, and
// every later Tap call passes its packet through unchanged. It reports
// whether a held packet was discarded, so a harness can account for the
// loss (the sender sees it as one more unacknowledged request). Close is
// idempotent.
func (r *Reorderer) Close() (droppedHeld bool) {
	droppedHeld = r.held != nil
	r.held = nil
	r.closed = true
	return droppedHeld
}

// Holding reports whether a packet is currently displaced into the held
// slot (always false once closed).
func (r *Reorderer) Holding() bool { return r.held != nil }

// NewReorderTap returns the tap of a new Reorderer. Use NewReorderer
// directly when the tap may outlive its link — only the Reorderer handle
// can Close the held slot.
func NewReorderTap(period int) (Tap, error) {
	r, err := NewReorderer(period)
	if err != nil {
		return nil, err
	}
	return r.Tap, nil
}

// ReorderTap is NewReorderTap with the minimum period of 3 (reorder every
// triple); it panics on an invalid period instead of returning an error.
func ReorderTap() Tap {
	t, err := NewReorderTap(3)
	if err != nil {
		panic(err)
	}
	return t
}

// NewLinkFlapTap returns a tap emulating a flapping link: it passes a
// seeded, deterministic run of packets (1..maxUp), then drops a seeded
// run (1..maxDown), and repeats with fresh draws — so consecutive flap
// cycles differ but the whole schedule replays bit-for-bit from the
// seed. Composable with loss/corrupt taps via ChainTaps; install the
// same constructor arguments on both directions of a link (with
// distinct seeds) to flap it symmetrically.
func NewLinkFlapTap(maxUp, maxDown int, seed uint64) (Tap, error) {
	if maxUp < 1 || maxDown < 1 {
		return nil, fmt.Errorf("netsim: flap phases must be >= 1 packet (got up=%d down=%d)", maxUp, maxDown)
	}
	state := seed
	draw := func(max int) int {
		state = splitmix(state)
		return 1 + int(state%uint64(max))
	}
	up := true
	left := draw(maxUp)
	return func(data []byte) []byte {
		pass := up
		left--
		if left == 0 {
			up = !up
			if up {
				left = draw(maxUp)
			} else {
				left = draw(maxDown)
			}
		}
		if pass {
			return data
		}
		return nil
	}, nil
}

// LinkFlapTap is NewLinkFlapTap for static configurations; it panics on
// invalid phase bounds instead of returning an error.
func LinkFlapTap(maxUp, maxDown int, seed uint64) Tap {
	t, err := NewLinkFlapTap(maxUp, maxDown, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// ChainTaps composes taps left to right; a nil result short-circuits.
func ChainTaps(taps ...Tap) Tap {
	return func(data []byte) []byte {
		for _, t := range taps {
			if t == nil {
				continue
			}
			data = t(data)
			if data == nil {
				return nil
			}
		}
		return data
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
