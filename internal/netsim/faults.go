package netsim

// Fault injection: deterministic packet loss and bit corruption built as
// link taps, for exercising protocol behaviour under unreliable links
// (KMP response loss, probe loss, garbled feedback).

// LossTap drops every packet whose deterministic per-packet draw falls
// below rate (0 = never, 1 = always). The stream is reproducible from the
// seed.
func LossTap(rate float64, seed uint64) Tap {
	state := seed
	return func(data []byte) []byte {
		state = splitmix(state)
		draw := float64(state>>11) / float64(1<<53)
		if draw < rate {
			return nil
		}
		return data
	}
}

// CorruptTap flips one deterministic bit in every Nth packet (n <= 1
// corrupts every packet).
func CorruptTap(n int, seed uint64) Tap {
	if n < 1 {
		n = 1
	}
	count := 0
	state := seed
	return func(data []byte) []byte {
		count++
		if count%n != 0 || len(data) == 0 {
			return data
		}
		state = splitmix(state)
		byteIdx := int(state % uint64(len(data)))
		bit := byte(1) << ((state >> 8) % 8)
		data[byteIdx] ^= bit
		return data
	}
}

// ChainTaps composes taps left to right; a nil result short-circuits.
func ChainTaps(taps ...Tap) Tap {
	return func(data []byte) []byte {
		for _, t := range taps {
			if t == nil {
				continue
			}
			data = t(data)
			if data == nil {
				return nil
			}
		}
		return data
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
