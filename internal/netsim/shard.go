// Sharded discrete-event execution: the fleet-scale load engine.
//
// A lockstep simulator executes one event at a time in global (time, seq)
// order — perfectly deterministic, but serial. EnableShards splits the
// event queue into N per-shard heaps (the fat-tree harness assigns one
// shard per pod) drained by N concurrent workers in fence-bounded
// windows:
//
//	window w = [base, base+fence)
//	every shard drains its own heap of events with at < base+fence,
//	in (time, seq) order, on its own goroutine;
//	barrier; base += fence; repeat.
//
// Within a window, shard-local causality is exact: a shard's events run
// in timestamp order on one goroutine, and same-shard sends scheduled
// inside the window still run inside it. Cross-shard effects are fenced:
// an event one shard schedules onto another is clamped to the receiving
// shard's local clock, which the fence keeps within one window of the
// sender's — so cross-shard skew is bounded by the fence. Choosing the
// fence at or below the minimum cross-shard link delay makes the clamp
// a no-op in the common case: a packet's propagation delay already
// carries it past the window boundary.
//
// Determinism contract: with shards <= 1 nothing here runs — every
// schedule and drain goes through the exact lockstep code path, so
// seeded runs stay bit-identical to the pre-shard engine (asserted by
// the chaos golden traces). With shards > 1, per-shard event order is
// still (time, seq)-deterministic, but cross-shard arrival interleaving
// depends on scheduling; parallel mode is for load sweeps, not for
// golden traces.
package netsim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// simShard is one event shard: its own heap, clock, and sequence space.
type simShard struct {
	mu  sync.Mutex
	now time.Duration
	pq  eventHeap
	seq uint64
}

// EnableShards switches the simulator into sharded mode with n shards
// and the given fence (the window length bounding cross-shard skew).
// It must be called on a pristine simulator — before any event is
// scheduled or the clock has moved. n <= 1 is a no-op: the simulator
// stays in lockstep mode and remains bit-identical to the serial
// engine.
func (s *Sim) EnableShards(n int, fence time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pq.Len() > 0 || s.now > 0 || s.seq > 0 {
		return fmt.Errorf("netsim: EnableShards requires a pristine simulator")
	}
	if len(s.shards) > 0 {
		return fmt.Errorf("netsim: shards already enabled")
	}
	if n <= 1 {
		return nil
	}
	if fence <= 0 {
		return fmt.Errorf("netsim: shard fence must be positive, got %v", fence)
	}
	s.shards = make([]*simShard, n)
	for i := range s.shards {
		s.shards[i] = &simShard{}
	}
	s.fence = fence
	return nil
}

// Shards reports the shard count (1 in lockstep mode).
func (s *Sim) Shards() int {
	if n := s.shardCount(); n > 1 {
		return n
	}
	return 1
}

// shardCount is the raw shard slice length. The slice is written once by
// EnableShards before the run starts and only read afterwards, so
// unlocked reads are safe.
func (s *Sim) shardCount() int { return len(s.shards) }

// AtShard schedules fn at absolute virtual time t on the given shard. In
// lockstep mode it is exactly At — same heap, same sequence counter —
// so lockstep traces are unaffected by callers migrating to AtShard.
// In sharded mode t is clamped to the shard's local clock.
func (s *Sim) AtShard(shard int, t time.Duration, fn func()) {
	if s.shardCount() <= 1 {
		s.At(t, fn)
		return
	}
	sh := s.shards[shard%len(s.shards)]
	sh.mu.Lock()
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	heap.Push(&sh.pq, &event{at: t, seq: sh.seq, fn: fn})
	sh.mu.Unlock()
}

// ShardNow returns the shard's local clock. In lockstep mode it is the
// global clock regardless of the shard argument.
func (s *Sim) ShardNow(shard int) time.Duration {
	if s.shardCount() <= 1 {
		return s.Now()
	}
	sh := s.shards[shard%len(s.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.now
}

// peekNext returns the earliest pending event time across all shards, or
// false when every heap is empty.
func (s *Sim) peekNext() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.pq.Len() > 0 {
			if !found || sh.pq[0].at < min {
				min = sh.pq[0].at
				found = true
			}
		}
		sh.mu.Unlock()
	}
	return min, found
}

// runSharded drives the windowed parallel drain. until < 0 means run to
// exhaustion (Run); otherwise execute events with at <= until and leave
// every clock at until (RunUntil).
func (s *Sim) runSharded(until time.Duration) {
	for {
		next, ok := s.peekNext()
		if !ok || (until >= 0 && next > until) {
			break
		}
		// Window base: skip idle gaps by starting at the earliest
		// pending event (never regressing the global clock).
		s.mu.Lock()
		base := s.now
		if next > base {
			base = next
		}
		windowEnd := base + s.fence
		s.mu.Unlock()

		var wg sync.WaitGroup
		for _, sh := range s.shards {
			wg.Add(1)
			go func(sh *simShard) {
				defer wg.Done()
				sh.drain(base, windowEnd, until)
			}(sh)
		}
		wg.Wait()

		s.mu.Lock()
		if windowEnd > s.now {
			s.now = windowEnd
		}
		if until >= 0 && s.now > until {
			s.now = until
		}
		s.mu.Unlock()
	}
	if until >= 0 {
		s.mu.Lock()
		if s.now < until {
			s.now = until
		}
		s.mu.Unlock()
		for _, sh := range s.shards {
			sh.mu.Lock()
			if sh.now < until {
				sh.now = until
			}
			sh.mu.Unlock()
		}
	}
}

// drain runs one shard's events due inside [base, windowEnd), in
// (time, seq) order, on the calling goroutine. Event functions run with
// the shard unlocked, so handlers re-enter AtShard/Send freely.
func (sh *simShard) drain(base, windowEnd, until time.Duration) {
	sh.mu.Lock()
	if sh.now < base {
		sh.now = base
	}
	for sh.pq.Len() > 0 {
		ev := sh.pq[0]
		if ev.at >= windowEnd || (until >= 0 && ev.at > until) {
			break
		}
		heap.Pop(&sh.pq)
		if ev.at > sh.now {
			sh.now = ev.at
		}
		sh.mu.Unlock()
		ev.fn()
		sh.mu.Lock()
	}
	sh.mu.Unlock()
}
