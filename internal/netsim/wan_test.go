package netsim

import (
	"testing"
	"time"
)

// twoNodes builds a-b connected on port 1 with the given delay and
// returns the network, the link, and per-node delivery logs.
func twoNodes(t *testing.T, delay time.Duration) (*Network, *Link, map[string]*[]string) {
	t.Helper()
	net := NewNetwork()
	got := map[string]*[]string{"a": {}, "b": {}}
	mk := func(name string) Handler {
		log := got[name]
		return HandlerFunc(func(_ *Network, _ *Node, _ int, data []byte) {
			*log = append(*log, string(data))
		})
	}
	net.AddNode("a", mk("a"))
	net.AddNode("b", mk("b"))
	l := net.MustConnect("a", 1, "b", 1, delay, 0)
	return net, l, got
}

func TestSetDirDownAsymmetric(t *testing.T) {
	net, l, got := twoNodes(t, time.Millisecond)
	if err := l.SetDirDown("b", true); err != nil {
		t.Fatalf("SetDirDown: %v", err)
	}
	// a -> b is cut; b -> a still flows.
	net.Send(net.Node("a"), 1, []byte("to-b"), 0)
	net.Send(net.Node("b"), 1, []byte("to-a"), 0)
	net.Sim.Run()
	if len(*got["b"]) != 0 {
		t.Fatalf("b received %v through a cut direction", *got["b"])
	}
	if len(*got["a"]) != 1 || (*got["a"])[0] != "to-a" {
		t.Fatalf("a received %v, want [to-a]", *got["a"])
	}
	if d, _ := l.DirDown("b"); !d {
		t.Fatalf("DirDown(b) = false after cut")
	}
	if d, _ := l.DirDown("a"); d {
		t.Fatalf("DirDown(a) = true, reverse direction must stay up")
	}
	// Restore and verify delivery resumes.
	if err := l.SetDirDown("b", false); err != nil {
		t.Fatalf("restore: %v", err)
	}
	net.Send(net.Node("a"), 1, []byte("again"), 0)
	net.Sim.Run()
	if len(*got["b"]) != 1 || (*got["b"])[0] != "again" {
		t.Fatalf("b received %v after heal, want [again]", *got["b"])
	}
}

func TestDirDownActsAtDeliveryTime(t *testing.T) {
	net, l, got := twoNodes(t, 10*time.Millisecond)
	// Packet departs now, direction cut before its delivery time: lost.
	net.Send(net.Node("a"), 1, []byte("in-flight"), 0)
	net.Sim.At(time.Millisecond, func() { l.SetDirDown("b", true) })
	net.Sim.Run()
	if len(*got["b"]) != 0 {
		t.Fatalf("in-flight packet survived a direction cut: %v", *got["b"])
	}
}

func TestPartitionAsym(t *testing.T) {
	net := NewNetwork()
	var gotA, gotB, gotC []string
	net.AddNode("a", HandlerFunc(func(_ *Network, _ *Node, _ int, d []byte) { gotA = append(gotA, string(d)) }))
	net.AddNode("b", HandlerFunc(func(_ *Network, _ *Node, _ int, d []byte) { gotB = append(gotB, string(d)) }))
	net.AddNode("c", HandlerFunc(func(_ *Network, _ *Node, _ int, d []byte) { gotC = append(gotC, string(d)) }))
	net.MustConnect("a", 1, "b", 1, time.Millisecond, 0)
	net.MustConnect("b", 2, "c", 1, time.Millisecond, 0)

	cut := net.PartitionAsym("b")
	if len(cut) != 2 {
		t.Fatalf("cut %d links, want 2", len(cut))
	}
	// b transmits out fine, hears nothing back.
	net.Send(net.Node("b"), 1, []byte("b-to-a"), 0)
	net.Send(net.Node("b"), 2, []byte("b-to-c"), 0)
	net.Send(net.Node("a"), 1, []byte("a-to-b"), 0)
	net.Send(net.Node("c"), 1, []byte("c-to-b"), 0)
	net.Sim.Run()
	if len(gotA) != 1 || gotA[0] != "b-to-a" {
		t.Fatalf("a got %v", gotA)
	}
	if len(gotC) != 1 || gotC[0] != "b-to-c" {
		t.Fatalf("c got %v", gotC)
	}
	if len(gotB) != 0 {
		t.Fatalf("partitioned b heard %v", gotB)
	}
	// Repeat cut is a no-op (idempotent, heals stay independent).
	if again := net.PartitionAsym("b"); len(again) != 0 {
		t.Fatalf("second PartitionAsym re-cut %d links", len(again))
	}
	// Heal restores the inbound directions.
	if healed := net.Heal(); healed != 2 {
		t.Fatalf("healed %d links, want 2", healed)
	}
	net.Send(net.Node("a"), 1, []byte("post-heal"), 0)
	net.Sim.Run()
	if len(gotB) != 1 || gotB[0] != "post-heal" {
		t.Fatalf("b got %v after heal", gotB)
	}
}

func TestLatencySpikeWindow(t *testing.T) {
	net, l, _ := twoNodes(t, time.Millisecond)
	var arrivals []time.Duration
	net.Node("b").Handler = HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {
		arrivals = append(arrivals, net.Sim.Now())
	})
	// Spike of +10ms on a->b for departures in [2ms, 4ms).
	if err := l.AddLatencySpike("b", 2*time.Millisecond, 4*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatalf("AddLatencySpike: %v", err)
	}
	send := func(at time.Duration) {
		net.Sim.At(at, func() { net.Send(net.Node("a"), 1, []byte("x"), 0) })
	}
	send(0)                    // before window: 0 + 1ms = 1ms
	send(3 * time.Millisecond) // inside: 3 + 1 + 10 = 14ms
	send(5 * time.Millisecond) // after: 5 + 1 = 6ms
	net.Sim.Run()
	want := []time.Duration{time.Millisecond, 6 * time.Millisecond, 14 * time.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i, w := range want {
		if arrivals[i] != w {
			t.Fatalf("arrival %d = %v, want %v (all: %v)", i, arrivals[i], w, arrivals)
		}
	}
	// Reverse direction is unaffected.
	var back []time.Duration
	net.Node("a").Handler = HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {
		back = append(back, net.Sim.Now())
	})
	t0 := net.Sim.Now()
	net.Sim.At(t0+3*time.Millisecond, func() { net.Send(net.Node("b"), 1, []byte("y"), 0) })
	net.Sim.Run()
	if len(back) != 1 {
		t.Fatalf("reverse delivery missing")
	}
	l.ClearLatencySpikes()
	if err := l.AddLatencySpike("b", 4*time.Millisecond, 2*time.Millisecond, time.Millisecond); err == nil {
		t.Fatalf("inverted spike window accepted")
	}
}

func TestLatencySpikesAccumulate(t *testing.T) {
	net, l, _ := twoNodes(t, 0)
	var arrival time.Duration
	net.Node("b").Handler = HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {
		arrival = net.Sim.Now()
	})
	l.AddLatencySpike("b", 0, 10*time.Millisecond, 2*time.Millisecond)
	l.AddLatencySpike("b", 0, 10*time.Millisecond, 3*time.Millisecond)
	net.Send(net.Node("a"), 1, []byte("x"), 0)
	net.Sim.Run()
	if arrival != 5*time.Millisecond {
		t.Fatalf("arrival = %v, want 5ms (overlapping spikes add)", arrival)
	}
}

func TestNextEventAt(t *testing.T) {
	s := NewSim()
	if _, ok := s.NextEventAt(); ok {
		t.Fatalf("empty sim reported a pending event")
	}
	s.At(7*time.Millisecond, func() {})
	s.At(3*time.Millisecond, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 3*time.Millisecond {
		t.Fatalf("NextEventAt = %v, %v; want 3ms, true", at, ok)
	}
	s.Step()
	if at, ok := s.NextEventAt(); !ok || at != 7*time.Millisecond {
		t.Fatalf("NextEventAt after step = %v, %v; want 7ms, true", at, ok)
	}
}
