package chaos

import (
	"fmt"
	"testing"
)

// runGroupClean executes one group chaos run and fails the test on any
// invariant violation, printing the trace for replay.
func runGroupClean(t *testing.T, o GroupOptions) *GroupResult {
	t.Helper()
	res, err := RunGroup(o)
	if err != nil {
		if res != nil {
			for _, line := range res.Trace {
				t.Log(line)
			}
		}
		t.Fatalf("harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		for _, line := range res.Trace {
			t.Log(line)
		}
		t.Fatalf("%d invariant violations, first: %s", len(res.Violations), res.Violations[0])
	}
	return res
}

// TestGroupShort is the fixed-seed group chaos gate wired into
// make group-chaos and scripts/check.sh: all three N-replica failure
// modes — rolling kills with chained succession, store outage against
// the bounded-staleness fence, and multi-way acquisition races — at both
// N=3 and N=5, two seeds each. Every run must end with exactly one warm
// active, zero forged or stale-fenced writes applied, bounded failover,
// and an exactly reconciled audit trail.
func TestGroupShort(t *testing.T) {
	for _, scenario := range []GroupScenario{GroupRollingKill, GroupStoreOutage, GroupAcquireRace} {
		for _, n := range []int{3, 5} {
			for _, seed := range []uint64{0xA1, 0xB2} {
				scenario, n, seed := scenario, n, seed
				t.Run(fmt.Sprintf("%s/n=%d/seed=%#x", scenario, n, seed), func(t *testing.T) {
					t.Parallel()
					res := runGroupClean(t, GroupOptions{Seed: seed, Scenario: scenario, Replicas: n})
					if !res.WarmAll {
						t.Fatal("final promotion was not warm everywhere")
					}
					if res.FencedAttempts == 0 || res.Landed == 0 {
						t.Fatalf("scenario did not bite: fenced=%d landed=%d",
							res.FencedAttempts, res.Landed)
					}
					switch scenario {
					case GroupRollingKill:
						if res.Chained != n-2 || res.Winner != fmt.Sprintf("ctl-%d", n-1) {
							t.Fatalf("chain = %d winner %s, want %d / ctl-%d",
								res.Chained, res.Winner, n-2, n-1)
						}
						if res.Epoch != uint64(n) {
							t.Fatalf("epoch = %d, want %d", res.Epoch, n)
						}
					case GroupStoreOutage:
						if res.DegradedAdmits == 0 {
							t.Fatal("no degraded admissions — the blip was not exercised")
						}
						if res.Winner != "ctl-1" || res.Epoch != 2 {
							t.Fatalf("winner %s epoch %d, want ctl-1 epoch 2", res.Winner, res.Epoch)
						}
					case GroupAcquireRace:
						if res.Winner != "ctl-2" || res.Epoch != 2 {
							t.Fatalf("winner %s epoch %d, want ctl-2 epoch 2", res.Winner, res.Epoch)
						}
					}
				})
			}
		}
	}
}

// TestGroupDeterminism re-executes one run per scenario at N=4 and
// requires bit-for-bit identical traces.
func TestGroupDeterminism(t *testing.T) {
	for _, scenario := range []GroupScenario{GroupRollingKill, GroupStoreOutage, GroupAcquireRace} {
		scenario := scenario
		t.Run(string(scenario), func(t *testing.T) {
			t.Parallel()
			o := GroupOptions{Seed: 42, Scenario: scenario, Replicas: 4}
			a, err := RunGroup(o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunGroup(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Trace) != len(b.Trace) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
			}
			for i := range a.Trace {
				if a.Trace[i] != b.Trace[i] {
					t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s",
						i, a.Trace[i], b.Trace[i])
				}
			}
		})
	}
}
