package chaos

// HA chaos: seeded controller-failover runs against the sharded control
// plane (internal/ha + controller.ShardSet). Where Run exercises crash
// recovery of a single controller and RunFabric exercises data-plane
// link supervision, RunHA exercises the active/standby pair: a fleet of
// 64+ switches is driven through per-switch shard queues while the
// active controller is killed mid-rollover (or stalls past its lease),
// and the standby must take over by epoch-fenced lease acquisition —
// warm, bounded, and without ever letting the deposed active's signed
// writes land.
//
// Invariants checked on every run:
//
//   - the standby CANNOT acquire before the active's lease expires
//     (the fencing guarantee: one epoch, one writer) and CAN acquire
//     after, within FailoverBudget of virtual time end to end;
//   - promotion is a warm restart on every switch: zero K_seed uses,
//     replay floors monotone across the handoff (lease-bumped, never
//     reset);
//   - every write the deposed active attempts after supersession is
//     refused by the fence — counted, audited, and absent from device
//     state (checked value by value against the shadow);
//   - forged writes (garbage-key signatures injected on-path) are never
//     applied, before, during, or after the failover window;
//   - no dangling journal intents survive the handoff;
//   - the audit trail reconciles exactly: ctl.write_dropped and
//     ctl.floor_bumps against their event counts, ha.fenced_writes +
//     ha.fenced_persists against EvFencedWrite, ha.failovers against
//     EvFailover (exactly two: bootstrap + promotion);
//   - two runs with equal HAOptions produce bit-identical traces.
//
// The run is single-threaded and scripted: concurrency of the sharded
// plane is covered by the -race stress tests (internal/ha,
// internal/controller); the chaos harness trades goroutines for a
// deterministic, replayable fault schedule.

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// HAScenario selects how the active controller fails.
type HAScenario string

const (
	// HAKill kills the active controller at an exact control-channel
	// packet count inside a local key rollover, with shard queues loaded.
	// The standby detects the death by lease expiry and promotes.
	HAKill HAScenario = "kill-active"
	// HASplitBrain keeps the active alive but stalls its renewals past
	// the TTL (GC pause, partition): the standby promotes at a higher
	// epoch while the deposed active keeps trying to write.
	HASplitBrain HAScenario = "split-brain"
)

// HAOptions fully determines an HA chaos run. Equal options must produce
// equal traces.
type HAOptions struct {
	// Seed drives every random choice (rollover victim, written values,
	// forged-key material).
	Seed uint64
	// Switches is the fleet size (default 64, minimum 2).
	Switches int
	// Window is the shard pipeline window (default 8).
	Window int
	// WritesPerSwitch is the per-phase write load per shard (default 3).
	WritesPerSwitch int
	// CrashAt is the 1-based control-channel packet count inside the
	// armed rollover at which an HAKill fires (default 3). If the
	// rollover uses fewer packets the kill fires right after it.
	CrashAt int
	// Scenario is the failure mode.
	Scenario HAScenario
	// TTL is the lease validity window in virtual time (default 5ms);
	// it bounds how long a dead active goes unnoticed.
	TTL time.Duration
	// FailoverBudget bounds, in virtual time, the span from the fault to
	// the standby serving. The default is TTL + 2ms + 5ms per switch:
	// detection is lease expiry (TTL), and the warm restart is linear in
	// fleet size (resync + floor-heal retries per switch), so the bound
	// scales with the fleet instead of silently loosening.
	FailoverBudget time.Duration
}

// HAResult is the outcome of one HA chaos run.
type HAResult struct {
	// Trace is the deterministic event log.
	Trace []string
	// Violations lists every invariant breach; empty means clean.
	Violations []string
	// Switches is the resolved fleet size.
	Switches int
	// FailoverTime is the virtual-time span from the fault to the
	// standby holding the lease with every switch warm-recovered.
	FailoverTime time.Duration
	// FencedAttempts counts refused writes+persists of fenced replicas
	// (ha.fenced_writes + ha.fenced_persists at the end of the run).
	FencedAttempts uint64
	// Landed is the fleet-wide count of shard writes confirmed applied.
	Landed int
	// WarmAll reports whether promotion recovered every switch warm.
	WarmAll bool
	// Epoch is the fencing epoch after the failover (2: bootstrap grant
	// plus one takeover).
	Epoch uint64
}

// HA-run defaults.
const (
	haDefaultSwitches = 64
	haDefaultWindow   = 8
	haDefaultWrites   = 3
	haDefaultCrashAt  = 3
	haDefaultTTL      = 5 * time.Millisecond
)

type haHarness struct {
	o   HAOptions
	res *HAResult
	rng rng
	sim *netsim.Sim
	st  *statestore.Mem
	ob  *obs.Observer

	names  []string
	sw     map[string]*deploy.Switch
	shadow map[string][]uint64
	floors map[string][]uint64

	a, b *ha.Replica
	ss   *controller.ShardSet

	tapN  int
	fired bool
}

func (h *haHarness) trace(format string, args ...interface{}) {
	h.res.Trace = append(h.res.Trace,
		fmt.Sprintf("t=%-12v ", h.sim.Now())+fmt.Sprintf(format, args...))
}

func (h *haHarness) violate(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	h.res.Violations = append(h.res.Violations, v)
	h.trace("VIOLATION: %s", v)
}

// RunHA executes one deterministic HA chaos run.
func RunHA(o HAOptions) (*HAResult, error) {
	switch o.Scenario {
	case HAKill, HASplitBrain:
	default:
		return nil, fmt.Errorf("chaos: unknown HA scenario %q", o.Scenario)
	}
	if o.Switches == 0 {
		o.Switches = haDefaultSwitches
	}
	if o.Switches < 2 {
		return nil, fmt.Errorf("chaos: HA run needs >= 2 switches, got %d", o.Switches)
	}
	if o.Window == 0 {
		o.Window = haDefaultWindow
	}
	if o.WritesPerSwitch == 0 {
		o.WritesPerSwitch = haDefaultWrites
	}
	if o.CrashAt == 0 {
		o.CrashAt = haDefaultCrashAt
	}
	if o.TTL == 0 {
		o.TTL = haDefaultTTL
	}
	if o.FailoverBudget == 0 {
		o.FailoverBudget = o.TTL + 2*time.Millisecond +
			time.Duration(o.Switches)*5*time.Millisecond
	}
	h := &haHarness{
		o:      o,
		res:    &HAResult{Switches: o.Switches, WarmAll: true},
		rng:    rng{s: o.Seed ^ 0x4AC0FFEE},
		sim:    newHarnessSim(),
		st:     statestore.NewMem(),
		ob:     obs.NewObserver(0),
		sw:     map[string]*deploy.Switch{},
		shadow: map[string][]uint64{},
		floors: map[string][]uint64{},
	}
	for i := 0; i < o.Switches; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: latEntries},
			},
		})
		if err != nil {
			return nil, err
		}
		h.sw[name] = s
		h.names = append(h.names, name)
		h.shadow[name] = make([]uint64, latEntries)
	}
	var err error
	if h.a, err = h.newReplica("ctl-a", 101); err != nil {
		return nil, err
	}
	if h.b, err = h.newReplica("ctl-b", 202); err != nil {
		return nil, err
	}

	if err := h.baseline(); err != nil {
		return h.res, err
	}
	if err := h.failover(); err != nil {
		return h.res, err
	}
	h.aftermath()
	h.finalChecks()
	return h.res, nil
}

// newReplica builds one fenced replica over the shared store, simulator
// clock, and observer, with the whole fleet registered and the single
// s00<->s01 adjacency connected. The replica installs the send fence and
// the fenced crash-safety store itself.
func (h *haHarness) newReplica(name string, seed uint64) (*ha.Replica, error) {
	c := controller.New(crypto.NewSeededRand(h.o.Seed*1000003 + seed))
	c.SetRetryPolicy(controller.ResilientRetryPolicy())
	c.UseClock(h.sim)
	for _, n := range h.names {
		s := h.sw[n]
		if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
			return nil, err
		}
	}
	if err := c.ConnectSwitches("s00", 1, "s01", 1, 5*time.Microsecond); err != nil {
		return nil, err
	}
	return ha.NewReplica(ha.ReplicaConfig{
		Name:       name,
		Store:      h.st,
		Clock:      h.sim,
		TTL:        h.o.TTL,
		Controller: c,
		Observer:   h.ob,
	})
}

// load submits writesPerSwitch seeded writes to every shard. Shadows are
// updated at submit time; drains that must succeed verify them later.
func (h *haHarness) load(label string) {
	for _, n := range h.names {
		for k := 0; k < h.o.WritesPerSwitch; k++ {
			idx := uint32(h.rng.intn(latEntries - 2)) // keep the forgery + journal slots clear
			v := h.rng.next() % 0xFFFF
			if err := h.ss.Submit(n, controller.RegWrite{Register: "lat", Index: idx, Value: v}); err != nil {
				h.violate("%s: submit %s lat[%d]: %v", label, n, idx, err)
				return
			}
			h.shadow[n][idx] = v
		}
	}
	h.trace("%s: %d writes queued across %d shards", label,
		h.o.WritesPerSwitch*len(h.names), len(h.names))
}

// baseline bootstraps replica A, initializes the fleet's keys, lands a
// first wave of sharded writes, lets the standby tail, and records the
// starting replay floors.
func (h *haHarness) baseline() error {
	if _, err := h.a.Activate(ha.CauseBootstrap); err != nil {
		return fmt.Errorf("chaos: bootstrap activate: %w", err)
	}
	if _, err := h.a.Controller().InitAllKeys(); err != nil {
		return fmt.Errorf("chaos: baseline key init: %w", err)
	}
	ss, err := h.a.Controller().NewShardSet(h.names, h.o.Window)
	if err != nil {
		return err
	}
	h.ss = ss
	h.trace("baseline: %d switches sharded, window=%d ttl=%v",
		len(h.names), h.o.Window, h.o.TTL)

	h.load("baseline")
	if err := h.ss.DrainSequential(); err != nil {
		h.violate("baseline drain: %v", err)
	}
	h.verifyShadows("baseline")

	// The standby tails the active's snapshots and WAL; it must observe
	// at least one record per switch before promotion can be warm.
	tailed, err := h.b.TailOnce()
	if err != nil {
		return fmt.Errorf("chaos: standby tail: %w", err)
	}
	if tailed < len(h.names) {
		h.violate("standby tailed %d records, want >= %d", tailed, len(h.names))
	}
	h.trace("baseline: standby tailed %d records", tailed)

	// The standby is fenced: a write through it must be refused before
	// it touches the wire, and counted.
	if _, err := h.b.Controller().WriteRegister(h.names[0], "lat", 0, 1); !errors.Is(err, controller.ErrFenced) {
		h.violate("fenced standby write = %v, want ErrFenced", err)
	} else {
		h.trace("baseline: standby write refused by fence (%s)", ha.FenceCause(err))
	}

	for _, n := range h.names {
		h.floors[n] = h.readHAFloors(n)
	}
	h.forgerySweep("baseline")
	return nil
}

// failover runs the scenario: fault the active mid-rollover under load,
// prove the standby is fenced out until the lease expires, then promote
// it and rebind the shard set — all on the virtual clock.
func (h *haHarness) failover() error {
	// Queue the next wave BEFORE the fault: these writes ride out the
	// failover in the shard queues and must land through the new active.
	h.load("in-flight")

	target := h.names[h.rng.intn(len(h.names))]
	faultAt := h.sim.Now()

	switch h.o.Scenario {
	case HAKill:
		h.armKill(target)
		_, err := h.a.Controller().LocalKeyUpdate(target)
		h.trace("armed rollover on %s: err=%v", target, err)
		if !h.fired {
			h.fire("post-op")
		}
	case HASplitBrain:
		// The active completes the rollover but then stalls: no renewals
		// until after the TTL. Nothing is killed — both replicas live.
		if _, err := h.a.Controller().LocalKeyUpdate(target); err != nil {
			h.violate("pre-stall rollover on %s: %v", target, err)
		}
		h.trace("active stalls after rollover on %s (no renewals)", target)
	}

	// The fencing guarantee, asserted: before the lease expires the
	// standby CANNOT take over, no matter that the active is dead.
	if _, err := h.b.Activate(ha.CausePromoted); !errors.Is(err, ha.ErrLeaseHeld) {
		h.violate("takeover before lease expiry = %v, want ErrLeaseHeld", err)
	} else {
		h.trace("pre-expiry takeover refused: lease held")
	}

	// Detection is lease expiry: advance the virtual clock past the TTL.
	h.sim.Advance(h.o.TTL + time.Millisecond)
	if _, err := h.b.TailOnce(); err != nil {
		h.violate("pre-promotion tail: %v", err)
	}
	warm, _, err := h.b.Promote(ha.CausePromoted)
	if err != nil {
		return fmt.Errorf("chaos: promote: %w", err)
	}
	for _, n := range h.names {
		if !warm[n] {
			h.res.WarmAll = false
			h.violate("%s: promotion recovered cold (fell back to K_seed)", n)
		}
		if u := h.b.Controller().SeedUses(n); u != 0 {
			h.violate("%s: promotion used K_seed %d times", n, u)
		}
	}
	h.res.FailoverTime = h.sim.Now() - faultAt
	h.trace("promoted ctl-b at epoch %d: %d switches warm, failover=%v (budget %v)",
		h.b.Epoch(), len(warm), h.res.FailoverTime, h.o.FailoverBudget)
	if h.res.FailoverTime > h.o.FailoverBudget {
		h.violate("failover took %v, budget %v", h.res.FailoverTime, h.o.FailoverBudget)
	}
	if h.b.Epoch() != 2 {
		h.violate("post-promotion epoch = %d, want 2", h.b.Epoch())
	}

	// The handoff: point every shard at the new active. Queued writes
	// survive and drain below.
	h.ss.Rebind(h.b.Controller())
	h.trace("shard set rebound to ctl-b")
	return nil
}

// armKill installs a counting control tap on the rollover target that
// kills the active controller at packet CrashAt.
func (h *haHarness) armKill(target string) {
	h.tapN, h.fired = 0, false
	tap := func(b []byte) []byte {
		h.tapN++
		if !h.fired && h.tapN == h.o.CrashAt {
			h.fire(fmt.Sprintf("at packet %d", h.tapN))
			return nil // the packet carrying the fault dies with it
		}
		return b
	}
	if err := h.a.Controller().SetControlTaps(target, tap, tap); err != nil {
		panic(err) // harness topology bug
	}
}

// fire kills the active controller.
func (h *haHarness) fire(where string) {
	h.fired = true
	h.trace("fault: active controller killed %s", where)
	h.a.Controller().Kill()
}

// aftermath drains the in-flight queues through the new active, retries
// the interrupted rollover, drives the deposed active into the fence,
// and lands a final wave.
func (h *haHarness) aftermath() {
	// In-flight writes queued before the fault must land now.
	if err := h.ss.DrainSequential(); err != nil {
		h.violate("post-failover drain: %v", err)
	}
	h.verifyShadows("post-failover")

	// The interrupted (or stalled-past) rollover retried through the new
	// active must succeed — keys reconverge under the new epoch.
	for _, n := range []string{h.names[0], h.names[len(h.names)-1]} {
		if _, err := h.b.Controller().LocalKeyUpdate(n); err != nil {
			h.violate("post-failover rollover on %s: %v", n, err)
		}
	}
	h.trace("post-failover rollovers ok")

	// The deposed active: every write it attempts is refused by the
	// fence and leaves no trace in device state. In the kill scenario
	// the process is dead (ErrKilled) — fencing still names the refusal.
	// In split-brain it is alive and fully fenced, the dangerous case.
	deposed := 0
	for i := 0; i < 3; i++ {
		n := h.names[h.rng.intn(len(h.names))]
		idx := uint32(h.rng.intn(latEntries - 2))
		before := h.shadow[n][idx]
		_, err := h.a.Controller().WriteRegister(n, "lat", idx, 0x666)
		switch {
		case errors.Is(err, controller.ErrFenced):
			deposed++
			h.trace("deposed write %s lat[%d] refused by fence", n, idx)
		case h.o.Scenario == HAKill && errors.Is(err, controller.ErrKilled):
			h.trace("deposed write %s lat[%d] refused (dead)", n, idx)
		default:
			h.violate("deposed write %s lat[%d] = %v, want fenced/killed refusal", n, idx, err)
		}
		got, _, rerr := h.b.Controller().ReadRegister(n, "lat", idx)
		if rerr != nil {
			h.violate("read-back of deposed slot %s lat[%d]: %v", n, idx, rerr)
		} else if got != before {
			h.violate("STALE WRITE APPLIED: %s lat[%d] %d -> %d past the fence",
				n, idx, before, got)
		}
	}
	if cause := ha.FenceCause(h.a.Fence()); cause != ha.CauseDeposed {
		h.violate("deposed active fence cause = %q, want %q", cause, ha.CauseDeposed)
	}
	if h.o.Scenario == HASplitBrain {
		if deposed != 3 {
			h.violate("alive deposed active: %d/3 writes fence-refused", deposed)
		}
		// A renewal attempt must fail too — and once the replica has seen
		// its own deposition, it drops the stale grant for good.
		if err := h.a.Renew(); !errors.Is(err, ha.ErrDeposed) && !errors.Is(err, ha.ErrNotActive) {
			h.violate("deposed renew = %v, want ErrDeposed", err)
		} else {
			h.trace("deposed renewal refused, stale grant dropped")
		}
	}

	// Final wave through the new active.
	h.load("final")
	if err := h.ss.DrainSequential(); err != nil {
		h.violate("final drain: %v", err)
	}
	h.verifyShadows("final")
}

// finalChecks is the post-run invariant sweep.
func (h *haHarness) finalChecks() {
	// Replay floors monotone across the whole run, every switch, every
	// slot: promotion restores them lease-bumped, never lower.
	for _, n := range h.names {
		cur := h.readHAFloors(n)
		old := h.floors[n]
		for i := range old {
			if i < len(cur) && cur[i] < old[i] {
				h.violate("%s: replay floor %d regressed %d -> %d across failover",
					n, i, old[i], cur[i])
			}
		}
		h.floors[n] = cur
	}

	// No dangling journal intents anywhere in the fleet.
	for _, n := range h.names {
		entries, err := h.b.Controller().JournalEntries(n)
		if err != nil {
			h.violate("%s: JournalEntries: %v", n, err)
			continue
		}
		for _, e := range entries {
			if e.State == core.WriteIntent {
				h.violate("%s: dangling journal intent after failover: %s", n, e.Dump())
			}
		}
	}

	h.forgerySweep("final")

	// Audit reconciliation across both replicas and the whole run.
	m, a := h.ob.Metrics, h.ob.Audit
	if a.Evicted() > 0 {
		h.violate("audit ring evicted %d events", a.Evicted())
	}
	if drops, n := m.Counter("ctl.write_dropped").Load(), uint64(len(a.ByType(obs.EvWriteDropped))); drops != n {
		h.violate("%d dropped writes counted, %d audited", drops, n)
	}
	if bumps, n := m.Counter("ctl.floor_bumps").Load(), uint64(len(a.ByType(obs.EvFloorBump))); bumps != n {
		h.violate("%d floor bumps counted, %d audited", bumps, n)
	}
	h.res.FencedAttempts = m.Counter("ha.fenced_writes").Load() + m.Counter("ha.fenced_persists").Load()
	if n := uint64(len(a.ByType(obs.EvFencedWrite))); n != h.res.FencedAttempts {
		h.violate("%d fencing refusals counted, %d audited", h.res.FencedAttempts, n)
	}
	if h.res.FencedAttempts == 0 {
		h.violate("run produced no fencing refusals — the scenario did not bite")
	}
	failovers := m.Counter("ha.failovers").Load()
	if n := uint64(len(a.ByType(obs.EvFailover))); failovers != n || failovers != 2 {
		h.violate("failovers = %d, audited %d, want exactly 2 (bootstrap + promotion)", failovers, n)
	}
	for _, e := range a.ByType(obs.EvFencedWrite) {
		if e.Cause == "" {
			h.violate("fenced-write audit event #%d (%s) names no cause", e.ID, e.Actor)
		}
	}

	h.res.Epoch = h.b.Epoch()
	tot, _ := h.ss.FleetTotals()
	h.res.Landed = tot.Landed
	if tot.Landed == 0 {
		h.violate("no shard writes landed at all")
	}
	h.trace("done: landed=%d failed=%d fenced=%d failover=%v epoch=%d violations=%d",
		tot.Landed, tot.Failed, h.res.FencedAttempts, h.res.FailoverTime,
		h.res.Epoch, len(h.res.Violations))
}

// verifyShadows reads every shadowed slot back through the currently
// active replica and requires device state to match.
func (h *haHarness) verifyShadows(label string) {
	c := h.a.Controller()
	if h.b.IsActive() {
		c = h.b.Controller()
	}
	for _, n := range h.names {
		for idx := 0; idx < latEntries-2; idx++ {
			want := h.shadow[n][idx]
			if want == 0 {
				continue
			}
			got, _, err := c.ReadRegister(n, "lat", uint32(idx))
			if err != nil {
				h.violate("%s: read %s lat[%d]: %v", label, n, idx, err)
				return
			}
			if got != want {
				h.violate("%s: %s lat[%d] = %d, want %d", label, n, idx, got, want)
			}
		}
	}
	h.trace("%s: fleet state verified against shadow", label)
}

// forgerySweep injects a garbage-key signed write into every switch and
// asserts nothing moved (shared probe; see forgery.go).
func (h *haHarness) forgerySweep(label string) {
	sweepForgeries(label, h.names, h.sw, &h.rng, h.violate, h.trace)
}

// readHAFloors returns the full RegSeq file of a switch.
func (h *haHarness) readHAFloors(n string) []uint64 {
	var out []uint64
	sw := h.sw[n].Host.SW
	for i := 0; i < 64; i++ {
		v, err := sw.RegisterRead(core.RegSeq, i)
		if err != nil {
			break
		}
		out = append(out, v)
	}
	return out
}
