package chaos

import (
	"fmt"
	"testing"
)

// runHAClean executes one HA chaos run and fails the test on any
// invariant violation, printing the trace for replay.
func runHAClean(t *testing.T, o HAOptions) *HAResult {
	t.Helper()
	res, err := RunHA(o)
	if err != nil {
		if res != nil {
			for _, line := range res.Trace {
				t.Log(line)
			}
		}
		t.Fatalf("harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		for _, line := range res.Trace {
			t.Log(line)
		}
		t.Fatalf("%d invariant violations, first: %s", len(res.Violations), res.Violations[0])
	}
	return res
}

// TestHAShort is the fixed-seed HA chaos gate wired into make ha-chaos
// and scripts/check.sh: both failure modes — active killed mid-rollover,
// split-brain lease lapse — against a 64-switch sharded fleet across two
// seeds each. Every run must promote the standby warm within the
// failover budget, with zero forged or stale-fenced writes applied and
// an exactly reconciled audit trail.
func TestHAShort(t *testing.T) {
	for _, scenario := range []HAScenario{HAKill, HASplitBrain} {
		for _, seed := range []uint64{0xD1, 0xE2} {
			scenario, seed := scenario, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", scenario, seed), func(t *testing.T) {
				t.Parallel()
				res := runHAClean(t, HAOptions{Seed: seed, Scenario: scenario})
				if res.Switches < 64 {
					t.Fatalf("fleet size %d, want >= 64", res.Switches)
				}
				if !res.WarmAll || res.Epoch != 2 {
					t.Fatalf("takeover not clean: warmAll=%v epoch=%d", res.WarmAll, res.Epoch)
				}
				if res.FencedAttempts == 0 || res.Landed == 0 {
					t.Fatalf("scenario did not bite: fenced=%d landed=%d",
						res.FencedAttempts, res.Landed)
				}
			})
		}
	}
}

// TestHADeterminism re-executes one run per scenario and requires
// bit-for-bit identical traces: a failover schedule that cannot be
// replayed cannot be debugged.
func TestHADeterminism(t *testing.T) {
	for _, scenario := range []HAScenario{HAKill, HASplitBrain} {
		scenario := scenario
		t.Run(string(scenario), func(t *testing.T) {
			t.Parallel()
			o := HAOptions{Seed: 42, Scenario: scenario}
			a, err := RunHA(o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunHA(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Trace) != len(b.Trace) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
			}
			for i := range a.Trace {
				if a.Trace[i] != b.Trace[i] {
					t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s",
						i, a.Trace[i], b.Trace[i])
				}
			}
		})
	}
}
