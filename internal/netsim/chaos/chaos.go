// Package chaos is a deterministic crash/restart fault-injection harness
// for the P4Auth control plane. It builds a two-switch fabric over the
// virtual-time simulator, schedules a controller kill or a switch-agent
// crash at an exact control-channel packet count inside a chosen protocol
// phase (key rollover, register write, port-key init), runs the recovery
// protocol, and checks the crash-safety invariants:
//
//   - no forged message is ever accepted (probed with garbage-key signed
//     writes before and after every recovery);
//   - replay floors never regress while key material survives (a cold
//     boot wipes keys WITH the floors, so old traffic cannot replay);
//   - keys reconverge: the interrupted operation retried after recovery
//     succeeds, as do rollovers, port-key updates, and authenticated
//     register round-trips on every switch;
//   - journaled register writes are applied exactly once or reported
//     failed — never duplicated, never silently lost, never left as a
//     dangling intent.
//
// Every run is driven by a seeded deterministic RNG and the virtual
// clock, and emits a trace of timestamped events. Two runs with equal
// Options must produce bit-for-bit identical traces — that property is
// itself asserted by the test suite, because a chaos bug you cannot
// replay is a chaos bug you cannot fix.
//
// The package lives beside netsim rather than inside it because the
// controller imports netsim; the harness sits one level up and closes
// the loop controller -> netsim -> (chaos).
package chaos

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// Scenario selects the protocol phase the fault lands in.
type Scenario string

const (
	// MidRollover crashes during a LocalKeyUpdate on s1.
	MidRollover Scenario = "rollover"
	// MidRegisterWrite crashes during a journaled WriteRegister on s1.
	MidRegisterWrite Scenario = "regwrite"
	// MidPortKeyInit crashes during PortKeyInit on the s1<->s2 link.
	MidPortKeyInit Scenario = "portinit"
)

// Victim selects what dies.
type Victim string

const (
	// KillController kills the controller process mid-operation; recovery
	// is a rebuilt controller warm-restarting from the durable store.
	KillController Victim = "controller"
	// CrashSwitch crashes the target switch agent mid-operation; recovery
	// is a reboot (warm or cold per Options.WarmDevice) plus ReviveSwitch.
	CrashSwitch Victim = "switch"
	// BackToBack runs a controller kill and then a switch crash in
	// sequence, each mid-operation, with recovery and invariant checks
	// after each — the compound failure the paper's operators actually
	// fear.
	BackToBack Victim = "back-to-back"
)

// Options fully determines a chaos run. Equal Options must produce equal
// traces.
type Options struct {
	// Seed drives every random choice (victim switch, written values,
	// rebuilt-controller key material).
	Seed uint64
	// Scenario is the protocol phase the fault interrupts.
	Scenario Scenario
	// Victim is what crashes.
	Victim Victim
	// CrashAt is the 1-based control-channel packet count (requests and
	// responses share the counter) at which the fault fires. If the
	// interrupted operation uses fewer packets, the fault fires right
	// after it instead — a run always contains its crash.
	CrashAt int
	// WarmDevice reboots a crashed switch from a device snapshot saved
	// at baseline; false models a cold boot to factory state.
	WarmDevice bool
}

// Result is the outcome of a run.
type Result struct {
	// Trace is the deterministic event log.
	Trace []string
	// Violations lists every invariant breach; empty means the run is
	// clean.
	Violations []string
	// CtlKills and SwCrashes count the faults injected.
	CtlKills, SwCrashes int
	// Warm reports whether the last controller recovery of each switch
	// was warm (no K_seed use).
	Warm map[string]bool
}

// newHarnessSim builds the simulator the harnesses run on. The golden
// suite swaps it for a shards<=1 sharded simulator to assert that the
// sharded engine's lockstep mode reproduces the recorded chaos traces
// bit-for-bit.
var newHarnessSim = netsim.NewSim

// latEntries mirrors the "lat" register the harness fabric declares.
const latEntries = 8

// forgeryIndex is the lat slot reserved for forged writes; the harness
// never writes it legitimately, so any non-zero value is a violation.
const forgeryIndex = latEntries - 1

// rng is splitmix64 — small, seedable, and stable across Go versions,
// which math/rand's shuffling is not guaranteed to be.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

type harness struct {
	o     Options
	res   *Result
	rng   rng
	sim   *netsim.Sim
	store *statestore.Mem
	// ob is the run's shared observer: controller generations come and
	// go, but the metrics registry and the audit trail persist across
	// them — the post-run audit sweep needs the whole story.
	ob    *obs.Observer
	c     *controller.Controller
	sw    map[string]*deploy.Switch
	names []string
	// shadow models the expected "lat" contents per switch; a reboot
	// wipes user registers (device snapshots persist only P4Auth state).
	shadow map[string][]uint64
	// floors holds the last observed RegSeq file per switch for the
	// no-regression check; nil after a cold boot (floors legitimately
	// reset together with the keys that made old traffic verifiable).
	floors map[string][]uint64
	ctlGen uint64
	tapN   int
	fired  bool
	// armed fault for the current round
	victim Victim
	target string
}

func (h *harness) trace(format string, args ...interface{}) {
	h.res.Trace = append(h.res.Trace,
		fmt.Sprintf("t=%-12v ", h.sim.Now())+fmt.Sprintf(format, args...))
}

func (h *harness) violate(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	h.res.Violations = append(h.res.Violations, v)
	h.trace("VIOLATION: %s", v)
}

// Run executes one deterministic chaos run.
func Run(o Options) (*Result, error) {
	if o.CrashAt < 1 {
		return nil, fmt.Errorf("chaos: CrashAt must be >= 1")
	}
	h := &harness{
		o:      o,
		res:    &Result{Warm: map[string]bool{}},
		rng:    rng{s: o.Seed ^ 0xC4A05AFE},
		sim:    newHarnessSim(),
		store:  statestore.NewMem(),
		ob:     obs.NewObserver(0),
		sw:     map[string]*deploy.Switch{},
		names:  []string{"s1", "s2"},
		shadow: map[string][]uint64{},
		floors: map[string][]uint64{},
	}
	for _, n := range h.names {
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  n,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: latEntries},
			},
		})
		if err != nil {
			return nil, err
		}
		h.sw[n] = s
		h.shadow[n] = make([]uint64, latEntries)
	}
	if err := h.newController(); err != nil {
		return nil, err
	}
	if err := h.baseline(); err != nil {
		return nil, err
	}

	victims := []Victim{o.Victim}
	if o.Victim == BackToBack {
		victims = []Victim{KillController, CrashSwitch}
	}
	for round, v := range victims {
		h.trace("round %d: arming %s fault, scenario=%s crashAt=%d",
			round, v, o.Scenario, o.CrashAt)
		target := h.armFault(v)
		h.runArmedOp(round)
		if err := h.recover(v, target); err != nil {
			return h.res, err
		}
		rebooted := ""
		if v == CrashSwitch {
			rebooted = target
		}
		h.checkInvariants(fmt.Sprintf("round %d", round), rebooted)
		h.retryArmedOp(round)
	}
	h.finalExercise()
	h.checkAudit("final")
	return h.res, nil
}

// newController builds (or rebuilds, after a kill) the controller over
// the existing switches and attaches the shared durable store. The key
// material of each incarnation is derived deterministically from the run
// seed and the generation counter.
func (h *harness) newController() error {
	h.ctlGen++
	c := controller.New(crypto.NewSeededRand(h.o.Seed*1000003 + h.ctlGen))
	c.SetRetryPolicy(controller.ResilientRetryPolicy())
	c.UseClock(h.sim)
	for _, n := range h.names {
		s := h.sw[n]
		if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
			return err
		}
	}
	if err := c.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
		return err
	}
	if err := c.EnableCrashSafety(h.store); err != nil {
		return err
	}
	c.SetObserver(h.ob)
	h.c = c
	return nil
}

// baseline establishes all keys, seeds some register state, saves the
// device snapshots warm reboots will use, and records the initial replay
// floors.
func (h *harness) baseline() error {
	if _, err := h.c.InitAllKeys(); err != nil {
		return fmt.Errorf("chaos: baseline key init: %w", err)
	}
	for _, n := range h.names {
		for idx := uint32(0); idx < 3; idx++ {
			v := h.rng.next() % 0xFFFF
			if _, err := h.c.WriteRegister(n, "lat", idx, v); err != nil {
				return fmt.Errorf("chaos: baseline write: %w", err)
			}
			h.shadow[n][idx] = v
		}
	}
	if h.o.WarmDevice {
		for _, n := range h.names {
			if err := h.sw[n].SaveState(h.store, "dev/"+n, 1); err != nil {
				return err
			}
		}
	}
	for _, n := range h.names {
		h.floors[n] = h.readFloors(n)
	}
	h.trace("baseline established, warmDevice=%v", h.o.WarmDevice)
	h.forgeryProbe("baseline")
	return nil
}

// armFault installs counting taps on the scenario's control channels and
// returns the name of the switch a CrashSwitch fault will hit.
func (h *harness) armFault(v Victim) string {
	target := "s1"
	channels := []string{"s1"}
	if h.o.Scenario == MidPortKeyInit {
		channels = []string{"s1", "s2"}
		target = h.names[h.rng.intn(len(h.names))]
	}
	h.tapN, h.fired = 0, false
	h.victim, h.target = v, target
	tap := func(b []byte) []byte {
		h.tapN++
		if !h.fired && h.tapN == h.o.CrashAt {
			h.fire(fmt.Sprintf("at packet %d", h.tapN))
			return nil // the packet carrying the fault dies with it
		}
		return b
	}
	for _, ch := range channels {
		// Requests and responses share the counter, so odd CrashAt values
		// land on requests and even ones on responses.
		if err := h.c.SetControlTaps(ch, tap, tap); err != nil {
			panic(err) // topology bug in the harness itself
		}
	}
	// If the operation completes in fewer packets than CrashAt, fire the
	// fault immediately after it: every run must contain its crash.
	return target
}

// disarm clears all control taps (on a live controller).
func (h *harness) disarm() {
	for _, ch := range h.names {
		_ = h.c.SetControlTaps(ch, nil, nil)
	}
}

// runArmedOp executes the scenario operation that the armed fault will
// interrupt, then guarantees the fault has fired.
func (h *harness) runArmedOp(round int) {
	var err error
	switch h.o.Scenario {
	case MidRollover:
		_, err = h.c.LocalKeyUpdate("s1")
	case MidRegisterWrite:
		v := h.rng.next() % 0xFFFF
		_, err = h.c.WriteRegister("s1", "lat", 4, v)
		if err == nil {
			h.shadow["s1"][4] = v
		}
	case MidPortKeyInit:
		_, err = h.c.PortKeyInit("s1", 1, "s2", 1)
	}
	h.trace("armed op round %d: err=%v", round, err)
	if !h.fired {
		// The op was too short for CrashAt; crash now, between ops.
		h.fire("post-op")
	}
}

// fire triggers the armed fault.
func (h *harness) fire(where string) {
	h.fired = true
	if h.victim == KillController {
		h.res.CtlKills++
		h.trace("fault: controller killed %s", where)
		h.c.Kill()
	} else {
		h.res.SwCrashes++
		h.trace("fault: switch %s crashed %s", h.target, where)
		h.sw[h.target].Crash()
	}
}

// recover runs the recovery protocol for the given victim.
func (h *harness) recover(v Victim, target string) error {
	if v == KillController {
		if err := h.newController(); err != nil {
			return err
		}
		warm, err := h.c.RecoverAll()
		if err != nil {
			h.violate("RecoverAll: %v", err)
		}
		for _, n := range h.names {
			h.res.Warm[n] = warm[n]
			h.trace("recovered controller: %s warm=%v seedUses=%d",
				n, warm[n], h.c.SeedUses(n))
			if warm[n] && h.c.SeedUses(n) != 0 {
				h.violate("%s: warm restart used K_seed %d times", n, h.c.SeedUses(n))
			}
		}
		return nil
	}
	// Switch crash: the (live) controller keeps its state; clear the
	// fault taps, reboot the agent, revive.
	h.disarm()
	s := h.sw[target]
	var warm bool
	var err error
	if h.o.WarmDevice {
		warm, err = s.RebootFromStore(h.store, "dev/"+target)
	} else {
		err = s.Reboot(nil)
	}
	if err != nil {
		return fmt.Errorf("chaos: reboot %s: %w", target, err)
	}
	// Any reboot wipes user registers; a cold one also wipes keys and
	// replay floors (old traffic is unverifiable, so that is sound).
	h.shadow[target] = make([]uint64, latEntries)
	if !warm {
		h.floors[target] = nil
	}
	revWarm, err := h.c.ReviveSwitch(target)
	h.trace("rebooted %s warmDevice=%v: revive warm=%v err=%v", target, warm, revWarm, err)
	if err != nil {
		h.violate("ReviveSwitch(%s): %v", target, err)
	}
	if warm && !revWarm {
		h.violate("%s: warm device snapshot but revival fell back to re-seed", target)
	}
	if !warm {
		// Cold boot loses the port keys on this switch; re-establish the
		// link before the invariant sweep expects port traffic to work.
		if _, err := h.c.PortKeyInit("s1", 1, "s2", 1); err != nil {
			h.violate("PortKeyInit after cold boot of %s: %v", target, err)
		}
	}
	return nil
}

// retryArmedOp re-issues the interrupted operation — the operator's
// natural next step — and requires it to succeed on a recovered fabric.
func (h *harness) retryArmedOp(round int) {
	var err error
	switch h.o.Scenario {
	case MidRollover:
		_, err = h.c.LocalKeyUpdate("s1")
	case MidRegisterWrite:
		v := h.rng.next() % 0xFFFF
		if _, err = h.c.WriteRegister("s1", "lat", 4, v); err == nil {
			h.shadow["s1"][4] = v
		}
	case MidPortKeyInit:
		_, err = h.c.PortKeyInit("s1", 1, "s2", 1)
	}
	if err != nil {
		h.violate("retry of interrupted %s op after recovery round %d: %v",
			h.o.Scenario, round, err)
	} else {
		h.trace("retried %s op round %d: ok", h.o.Scenario, round)
	}
}

// checkInvariants is the post-recovery sweep.
func (h *harness) checkInvariants(label, rebooted string) {
	// 1. The journal holds no dangling intents, on any switch.
	for _, n := range h.names {
		entries, err := h.c.JournalEntries(n)
		if err != nil {
			h.violate("%s: %s: JournalEntries: %v", label, n, err)
			continue
		}
		for _, e := range entries {
			if e.State == core.WriteIntent {
				h.violate("%s: dangling journal intent: %s", label, e.Dump())
			}
		}
		h.trace("%s: %s journal entries=%d", label, n, len(entries))
	}
	// 2. Register-write exactly-once: the interrupted write's slot holds
	// a value the harness actually asked for (its shadow, or — when the
	// journal replay re-drove or confirmed the in-flight value — that
	// value). It must never hold anything else.
	if h.o.Scenario == MidRegisterWrite && rebooted == "" {
		got, _, err := h.c.ReadRegister("s1", "lat", 4)
		if err != nil {
			h.violate("%s: read of journaled slot: %v", label, err)
		} else {
			h.trace("%s: journaled slot lat[4]=%d", label, got)
			h.shadow["s1"][4] = got // settled by recovery; adopt it
		}
	}
	// 3. Replay floors never regress while keys survive.
	for _, n := range h.names {
		cur := h.readFloors(n)
		if old := h.floors[n]; old != nil {
			for i := range old {
				if i < len(cur) && cur[i] < old[i] {
					h.violate("%s: %s seq floor %d regressed %d -> %d",
						label, n, i, old[i], cur[i])
				}
			}
		}
		h.floors[n] = cur
	}
	// 4. Forgery still bounces off every switch.
	h.forgeryProbe(label)
	// 5. The audit log explains everything the metrics counted.
	h.checkAudit(label)
}

// finalExercise proves full reconvergence: rollovers, port-key update,
// authenticated round-trips on every switch, port slots in agreement.
func (h *harness) finalExercise() {
	h.disarm()
	for _, n := range h.names {
		if _, err := h.c.LocalKeyUpdate(n); err != nil {
			h.violate("final rollover on %s: %v", n, err)
		}
	}
	if _, err := h.c.PortKeyUpdate("s1", 1); err != nil {
		h.violate("final port-key update: %v", err)
	}
	for _, n := range h.names {
		for idx := uint32(0); idx < 3; idx++ {
			v := h.rng.next() % 0xFFFF
			if _, err := h.c.WriteRegister(n, "lat", idx, v); err != nil {
				h.violate("final write %s lat[%d]: %v", n, idx, err)
				continue
			}
			h.shadow[n][idx] = v
			got, _, err := h.c.ReadRegister(n, "lat", idx)
			if err != nil {
				h.violate("final read %s lat[%d]: %v", n, idx, err)
			} else if got != v {
				h.violate("final round-trip %s lat[%d]: wrote %d read %d", n, idx, v, got)
			}
		}
	}
	h.checkPortSync()
	h.forgeryProbe("final")
	for _, n := range h.names {
		h.trace("final: %s floors=%v shadow=%v", n, h.readFloors(n), h.shadow[n])
	}
}

// checkAudit is the observability completeness sweep: every floor bump
// and every dropped write the metrics counted must be explained by an
// audit event naming a non-empty cause. Counters and the audit ring are
// shared across controller generations, so the comparison covers the
// whole run so far.
func (h *harness) checkAudit(label string) {
	m, a := h.ob.Metrics, h.ob.Audit
	if a.Evicted() > 0 {
		// The ring wrapped; counts can no longer be reconciled. A chaos
		// run should never come close to the default capacity.
		h.violate("%s: audit ring evicted %d events", label, a.Evicted())
		return
	}
	bumps := m.Counter("ctl.floor_bumps").Load()
	drops := m.Counter("ctl.write_dropped").Load()
	if n := uint64(len(a.ByType(obs.EvFloorBump))); n != bumps {
		h.violate("%s: %d floor bumps counted but %d audit events explain them", label, bumps, n)
	}
	if n := uint64(len(a.ByType(obs.EvWriteDropped))); n != drops {
		h.violate("%s: %d dropped writes counted but %d audit events explain them", label, drops, n)
	}
	for _, e := range a.Events() {
		switch e.Type {
		case obs.EvFloorBump, obs.EvWriteDropped, obs.EvDigestMismatch,
			obs.EvReplayRejected, obs.EvRolloverRollback, obs.EvWALSettle:
			if e.Cause == "" {
				h.violate("%s: audit event #%d (%s on %s) names no cause",
					label, e.ID, e.Type, e.Actor)
			}
		}
	}
	h.trace("%s: audit reconciled: floor_bumps=%d write_dropped=%d events=%d",
		label, bumps, drops, a.Len())
}

// checkPortSync requires both ends of the s1<->s2 link to agree on the
// port slot's install counter and active key.
func (h *harness) checkPortSync() {
	a, b := h.sw["s1"].Host.SW, h.sw["s2"].Host.SW
	verA, errA := a.RegisterRead(core.RegVer, 1)
	verB, errB := b.RegisterRead(core.RegVer, 1)
	if errA != nil || errB != nil {
		h.violate("port ver read: %v / %v", errA, errB)
		return
	}
	if verA != verB {
		h.violate("port install counters diverged: s1=%d s2=%d", verA, verB)
		return
	}
	reg := core.RegKeysV0
	if verA&1 == 1 {
		reg = core.RegKeysV1
	}
	keyA, _ := a.RegisterRead(reg, 1)
	keyB, _ := b.RegisterRead(reg, 1)
	if keyA != keyB || keyA == 0 {
		h.violate("port keys diverged at version %d: %#x vs %#x", verA, keyA, keyB)
	}
	h.trace("port slot in sync: ver=%d", verA)
}

// forgeryProbe injects a register write signed under a garbage key into
// every live switch and asserts nothing changed: neither the target
// register nor the key-version table moved, and the replay floor did not
// advance (the data plane checks the digest before the floor, so a
// forgery must not even touch it).
func (h *harness) forgeryProbe(label string) {
	for _, n := range h.names {
		s := h.sw[n]
		if s.Host.Down() {
			continue
		}
		ri, err := s.Host.Info.RegisterByName("lat")
		if err != nil {
			h.violate("%s: forgery probe setup: %v", label, err)
			return
		}
		dig, err := s.Cfg.Digester()
		if err != nil {
			h.violate("%s: forgery probe digester: %v", label, err)
			return
		}
		before, _ := s.Host.SW.RegisterRead("lat", forgeryIndex)
		verBefore, _ := s.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
		floorBefore, _ := s.Host.SW.RegisterRead(core.RegSeq, 0)
		m := &core.Message{
			Header: core.Header{
				HdrType: core.HdrRegister, MsgType: core.MsgWriteReq,
				SeqNum: uint32(floorBefore) + 1000, KeyVersion: uint8(verBefore),
			},
			Reg: &core.RegPayload{RegID: ri.ID, Index: forgeryIndex, Value: 0xDEAD},
		}
		if err := m.Sign(dig, 0xBAD0_0BAD^h.rng.next()); err != nil {
			h.violate("%s: forgery sign: %v", label, err)
			return
		}
		b, err := m.Encode()
		if err != nil {
			h.violate("%s: forgery encode: %v", label, err)
			return
		}
		if _, err := s.Host.PacketOut(b); err != nil {
			h.trace("%s: forgery toward %s rejected at injection: %v", label, n, err)
		}
		after, _ := s.Host.SW.RegisterRead("lat", forgeryIndex)
		verAfter, _ := s.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
		floorAfter, _ := s.Host.SW.RegisterRead(core.RegSeq, 0)
		if after != before {
			h.violate("%s: FORGERY ACCEPTED on %s: lat[%d] %d -> %d",
				label, n, forgeryIndex, before, after)
		}
		if verAfter != verBefore {
			h.violate("%s: forgery moved key version on %s: %d -> %d",
				label, n, verBefore, verAfter)
		}
		if floorAfter != floorBefore {
			h.violate("%s: forgery advanced replay floor on %s: %d -> %d",
				label, n, floorBefore, floorAfter)
		}
		h.trace("%s: forgery bounced off %s", label, n)
	}
}

// readFloors returns the full RegSeq file of a switch (replay floors for
// every slot and stream).
func (h *harness) readFloors(n string) []uint64 {
	var out []uint64
	sw := h.sw[n].Host.SW
	for i := 0; i < 64; i++ {
		v, err := sw.RegisterRead(core.RegSeq, i)
		if err != nil {
			break
		}
		out = append(out, v)
	}
	return out
}
