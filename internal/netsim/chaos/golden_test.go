package chaos

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

// Golden-trace regression gate for the parallel data plane work: the
// chaos harnesses must keep producing *the same bytes* as the serial
// switch did before the worker pool existed, not merely be internally
// deterministic. TestChaosDeterminism and friends catch
// run-to-run divergence; this test catches commit-to-commit divergence
// by pinning a SHA-256 of each representative trace in
// testdata/trace_goldens.txt, captured from the pre-parallel tree.
//
// Regenerate (only when a trace change is intended and reviewed) with:
//
//	CHAOS_GOLDEN_UPDATE=1 go test -run TestTraceGoldens ./internal/netsim/chaos/
const goldenPath = "testdata/trace_goldens.txt"

// goldenRun is one pinned harness invocation. The set spans all four
// chaos gates so every seeded code path through the switch (C-DP
// writes, rollovers, DP-DP probes, HA failover load) is covered.
type goldenRun struct {
	name string
	run  func() ([]string, error)
}

func goldenRuns() []goldenRun {
	return []goldenRun{
		{"chaos/rollover-controller", func() ([]string, error) {
			r, err := Run(Options{Seed: 42, Scenario: MidRollover, Victim: KillController, CrashAt: 2, WarmDevice: true})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"chaos/regwrite-switch-cold", func() ([]string, error) {
			r, err := Run(Options{Seed: 42, Scenario: MidRegisterWrite, Victim: CrashSwitch, CrashAt: 2, WarmDevice: false})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"chaos/portinit-back-to-back", func() ([]string, error) {
			r, err := Run(Options{Seed: 7, Scenario: MidPortKeyInit, Victim: BackToBack, CrashAt: 3, WarmDevice: true})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"fabric/flap", func() ([]string, error) {
			r, err := RunFabric(FabricOptions{Seed: 11, Scenario: FabricFlap})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"fabric/skew", func() ([]string, error) {
			r, err := RunFabric(FabricOptions{Seed: 11, Scenario: FabricSkew})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"ha/kill-active", func() ([]string, error) {
			r, err := RunHA(HAOptions{Seed: 5, Switches: 4, Scenario: HAKill, TTL: 5 * time.Millisecond})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
		{"group/rolling-kill", func() ([]string, error) {
			r, err := RunGroup(GroupOptions{Seed: 9, Replicas: 3, Switches: 4, Scenario: GroupRollingKill, TTL: 5 * time.Millisecond})
			if err != nil {
				return nil, err
			}
			return r.Trace, nil
		}},
	}
}

func traceHash(trace []string) string {
	h := sha256.New()
	for _, line := range trace {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func loadGoldens(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("open goldens (run with CHAOS_GOLDEN_UPDATE=1 to create): %v", err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line: %q", line)
		}
		out[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceGoldens pins the chaos traces to their pre-parallel bytes.
// The default (workers=1) switch mode must reproduce these forever.
func TestTraceGoldens(t *testing.T) {
	runs := goldenRuns()
	got := make(map[string]string, len(runs))
	for _, gr := range runs {
		trace, err := gr.run()
		if err != nil {
			t.Fatalf("%s: %v", gr.name, err)
		}
		got[gr.name] = traceHash(trace)
	}

	if os.Getenv("CHAOS_GOLDEN_UPDATE") != "" {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("# SHA-256 of each pinned chaos trace (lines joined by \\n).\n")
		b.WriteString("# Captured from the serial (pre-worker-pool) switch; workers=1\n")
		b.WriteString("# must stay byte-identical. Regenerate: CHAOS_GOLDEN_UPDATE=1\n")
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s\n", n, got[n])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(got), goldenPath)
		return
	}

	want := loadGoldens(t)
	for name, hash := range got {
		pinned, ok := want[name]
		if !ok {
			t.Errorf("%s: no pinned golden (regenerate with CHAOS_GOLDEN_UPDATE=1)", name)
			continue
		}
		if pinned != hash {
			t.Errorf("%s: trace diverged from pre-parallel golden\n  pinned %s\n  got    %s", name, pinned, hash)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden %s has no matching run", name)
		}
	}
}
