package chaos

// Forgery injection shared by the failover harnesses (RunHA, RunGroup):
// a garbage-key signed write is thrown at every switch and absolutely
// nothing may move — not the target register, not the key version, not
// the replay floor. The sweep is seeded through the harness rng so the
// forged key material is part of the deterministic schedule.

import (
	"p4auth/internal/core"
	"p4auth/internal/deploy"
)

// sweepForgeries runs the forgery probe across the fleet. violate and
// trace are the harness's reporting hooks; the draw from rnd keeps the
// schedule deterministic per seed.
func sweepForgeries(label string, names []string, sw map[string]*deploy.Switch,
	rnd *rng, violate, trace func(format string, args ...interface{})) {
	for _, n := range names {
		s := sw[n]
		ri, err := s.Host.Info.RegisterByName("lat")
		if err != nil {
			violate("%s: forgery setup on %s: %v", label, n, err)
			return
		}
		dig, err := s.Cfg.Digester()
		if err != nil {
			violate("%s: forgery digester on %s: %v", label, n, err)
			return
		}
		before, _ := s.Host.SW.RegisterRead("lat", forgeryIndex)
		verBefore, _ := s.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
		floorBefore, _ := s.Host.SW.RegisterRead(core.RegSeq, 0)
		m := &core.Message{
			Header: core.Header{
				HdrType: core.HdrRegister, MsgType: core.MsgWriteReq,
				SeqNum: uint32(floorBefore) + 1000, KeyVersion: uint8(verBefore),
			},
			Reg: &core.RegPayload{RegID: ri.ID, Index: forgeryIndex, Value: 0xDEAD},
		}
		if err := m.Sign(dig, 0xBAD0_0BAD^rnd.next()); err != nil {
			violate("%s: forgery sign: %v", label, err)
			return
		}
		b, err := m.Encode()
		if err != nil {
			violate("%s: forgery encode: %v", label, err)
			return
		}
		_, _ = s.Host.PacketOut(b)
		after, _ := s.Host.SW.RegisterRead("lat", forgeryIndex)
		verAfter, _ := s.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
		floorAfter, _ := s.Host.SW.RegisterRead(core.RegSeq, 0)
		if after != before {
			violate("%s: FORGERY ACCEPTED on %s: lat[%d] %d -> %d",
				label, n, forgeryIndex, before, after)
		}
		if verAfter != verBefore {
			violate("%s: forgery moved key version on %s: %d -> %d",
				label, n, verBefore, verAfter)
		}
		if floorAfter != floorBefore {
			violate("%s: forgery advanced replay floor on %s: %d -> %d",
				label, n, floorBefore, floorAfter)
		}
	}
	trace("%s: forgery bounced off all %d switches", label, len(names))
}
