package chaos

// Fabric chaos: seeded fault schedules against the self-healing DP-DP
// fabric (internal/fabric supervising a Fig. 3 HULA deployment). Where
// Run exercises crash recovery of the control plane, RunFabric exercises
// link-health supervision of the data plane: flap storms, two-way
// partitions, and one-sided port-key rollovers, each overlaid with an
// on-path probe forger so the authentication invariant is under attack
// for the whole degraded window.
//
// Invariants checked on every run:
//
//   - the forged utilization is never applied to best-path state
//     (fail-closed for authentication);
//   - while a link is quarantined, HULA's best hop never points at it
//     (degraded routing), yet data keeps being delivered over the
//     surviving paths (fail-open for reachability);
//   - after the fault clears, the fabric reconverges to all-links-Healthy
//     with correctly paired port keys on every adjacency;
//   - every link state transition is audited: the fabric.transitions
//     counter reconciles exactly against the link_state audit trail, with
//     zero ring evictions and a machine-matchable cause on each event.
//
// Runs are deterministic in virtual time: the same seed yields a
// bit-identical trace.

import (
	"fmt"
	"time"

	"p4auth/internal/fabric"
	"p4auth/internal/hula"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
)

// FabricScenario selects the fault class injected on the s1-s2 link.
type FabricScenario string

const (
	// FabricFlap flaps the s1-s2 link in both directions with seeded
	// up/down phases, and forges every probe that survives the flap.
	FabricFlap FabricScenario = "flap"
	// FabricPartition cuts every link touching s2 (a two-way partition
	// of the fabric), then heals it.
	FabricPartition FabricScenario = "partition"
	// FabricSkew bumps s2's port-key version one-sidedly — the aftermath
	// of a rollover that installed on one end only.
	FabricSkew FabricScenario = "skew"
)

// FabricOptions configures one deterministic fabric-chaos run.
type FabricOptions struct {
	// Seed drives the fault schedule (flap phases, injection jitter).
	Seed uint64
	// Scenario is the fault class; see the FabricScenario constants.
	Scenario FabricScenario
}

// FabricResult is the outcome of one fabric-chaos run.
type FabricResult struct {
	// Trace is the deterministic event log: fault injections plus every
	// audited link state transition, in order.
	Trace []string
	// Violations lists every invariant breach; empty means clean.
	Violations []string
	// Transitions is the final fabric.transitions counter value.
	Transitions uint64
	// Quarantines counts transitions into the Quarantined state.
	Quarantines int
	// Repairs counts successful epoch-fenced port-key repairs.
	Repairs uint64
	// Delivered counts data packets that reached the destination host.
	Delivered uint64
}

// forgedUtil is the attacker's magic utilization value; it must never
// appear in best-path state.
const forgedUtil = 0x7A57

// Fabric-run timeline (virtual time).
const (
	fabricDur     = 60 * time.Millisecond
	fabricFaultAt = 8 * time.Millisecond
	fabricHealAt  = 30 * time.Millisecond
)

type fabricHarness struct {
	o   FabricOptions
	res *FabricResult
	rng rng
	n   *hula.Network
	sup *fabric.Supervisor
}

func (h *fabricHarness) trace(format string, args ...interface{}) {
	h.res.Trace = append(h.res.Trace,
		fmt.Sprintf("t=%-12v ", h.n.Net.Sim.Now())+fmt.Sprintf(format, args...))
}

func (h *fabricHarness) violate(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	h.res.Violations = append(h.res.Violations, v)
	h.trace("VIOLATION: %s", v)
}

// fabricSupCfg is the supervision config for chaos runs: millisecond
// windows against the 200µs probe cadence, aggressive quarantine, short
// hold-down so repair/probation cycles fit the degraded window.
func fabricSupCfg() fabric.Config {
	return fabric.Config{
		SuspectBad:        1,
		QuarantineStrikes: 1,
		SilenceWindows:    3,
		CleanWindows:      2,
		ProbationWindows:  2,
		HoldDown:          2 * time.Millisecond,
		RepairBackoff:     1 * time.Millisecond,
		RepairBackoffMax:  4 * time.Millisecond,
	}
}

// RunFabric executes one deterministic fabric-chaos run.
func RunFabric(o FabricOptions) (*FabricResult, error) {
	switch o.Scenario {
	case FabricFlap, FabricPartition, FabricSkew:
	default:
		return nil, fmt.Errorf("chaos: unknown fabric scenario %q", o.Scenario)
	}
	n, err := hula.NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		return nil, err
	}
	sup, err := n.NewSupervisor(fabricSupCfg())
	if err != nil {
		return nil, err
	}
	h := &fabricHarness{
		o:   o,
		res: &FabricResult{},
		rng: rng{s: o.Seed ^ 0xFAB41C},
		n:   n,
		sup: sup,
	}

	n.ScheduleProbes("s5", 5, 200*time.Microsecond, fabricDur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, fabricDur)
	n.ScheduleSupervisor(sup, time.Millisecond, fabricDur)
	var pkt uint64
	for at := 2 * time.Millisecond; at < fabricDur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
		})
	}

	// The forger rides the s3->s1 direction for the whole degraded
	// window, in every scenario: each probe it touches carries the magic
	// utilization with a digest the key can't have produced.
	forgeLink := n.Net.LinkBetween("s1", "s3")
	n.Net.Sim.At(fabricFaultAt, func() {
		h.trace("inject forger on s1<-s3 (util=%#x)", forgedUtil)
		_ = forgeLink.SetTap("s1", hula.ForgeUtilTap(true, forgedUtil))
	})
	n.Net.Sim.At(fabricHealAt, func() {
		h.trace("clear forger on s1<-s3")
		_ = forgeLink.SetTap("s1", nil)
	})

	h.scheduleScenario()
	h.scheduleSamples()

	n.Net.Sim.Run()

	h.finalChecks()
	return h.res, nil
}

// scheduleScenario arms the scenario-specific fault on the s1-s2 link,
// jittered by the seed inside the first millisecond of the window.
func (h *fabricHarness) scheduleScenario() {
	jitter := time.Duration(h.rng.intn(1000)) * time.Microsecond
	at := fabricFaultAt + jitter
	link := h.n.Net.LinkBetween("s1", "s2")
	switch h.o.Scenario {
	case FabricFlap:
		// Short phases toward s1 (probe direction), long phases toward
		// s2 (data + reverse probes); both seeded from the run seed.
		upA, downA := 4+h.rng.intn(8), 16+h.rng.intn(16)
		upB, downB := 40+h.rng.intn(40), 160+h.rng.intn(80)
		seedA, seedB := h.rng.next(), h.rng.next()
		h.n.Net.Sim.At(at, func() {
			h.trace("inject flap on s1-s2 (toward s1 %d/%d, toward s2 %d/%d)",
				upA, downA, upB, downB)
			_ = link.SetTap("s1", netsim.ChainTaps(
				netsim.LinkFlapTap(upA, downA, seedA),
				hula.ForgeUtilTap(true, forgedUtil),
			))
			_ = link.SetTap("s2", netsim.LinkFlapTap(upB, downB, seedB))
		})
		h.n.Net.Sim.At(fabricHealAt, func() {
			h.trace("clear flap on s1-s2")
			_ = link.SetTap("s1", nil)
			_ = link.SetTap("s2", nil)
		})
	case FabricPartition:
		h.n.Net.Sim.At(at, func() {
			cut := h.n.Net.Partition("s2")
			h.trace("partition {s2} (%d links cut)", len(cut))
		})
		h.n.Net.Sim.At(fabricHealAt, func() {
			healed := h.n.Net.Heal()
			h.trace("heal partition (%d links restored)", healed)
		})
	case FabricSkew:
		// A port-key update loses its DP-DP leg toward s1's end: one side
		// installs the new key pair, the other never hears about it — the
		// physically-realizable one-sided rollover.
		h.n.Net.Sim.At(at, func() {
			if err := h.n.Ctrl.SetLinkTap("s1", 1, func([]byte) []byte { return nil }); err != nil {
				h.violate("arm link tap: %v", err)
				return
			}
			_, _ = h.n.Ctrl.PortKeyUpdate("s2", 1) // interrupted on purpose
			if err := h.n.Ctrl.SetLinkTap("s1", 1, nil); err != nil {
				h.violate("clear link tap: %v", err)
				return
			}
			skew, err := h.n.Ctrl.PortKeySkew("s2", 1)
			if err != nil || skew == nil {
				h.violate("sabotage produced no skew (skew=%v err=%v)", skew, err)
				return
			}
			h.trace("inject one-sided rollover on s1:1<->s2:1 (pa_ver %d vs %d)",
				skew.VerA, skew.VerB)
		})
	}
}

// scheduleSamples registers the mid-run invariant probes: once per
// millisecond through the degraded window and the recovery tail, check
// that the forged utilization never reached best-path state and that the
// best hop never points at a quarantined port.
func (h *fabricHarness) scheduleSamples() {
	s1 := h.n.Switches["s1"].Host.SW
	for at := fabricFaultAt + 2*time.Millisecond; at < fabricDur; at += time.Millisecond {
		at := at
		h.n.Net.Sim.At(at, func() {
			util, err := s1.RegisterRead(hula.RegBestUtil, 5)
			if err != nil {
				h.violate("best-util read: %v", err)
				return
			}
			if util == forgedUtil {
				h.violate("forged utilization %#x applied to best-path state at t=%v",
					forgedUtil, h.n.Net.Sim.Now())
			}
			hop, err := s1.RegisterRead(hula.RegBestHop, 5)
			if err != nil {
				h.violate("best-hop read: %v", err)
				return
			}
			for _, st := range h.sup.Snapshot() {
				if st.State != fabric.Quarantined {
					continue
				}
				var port int
				switch {
				case st.Link.A == "s1":
					port = st.Link.PA
				case st.Link.B == "s1":
					port = st.Link.PB
				default:
					continue
				}
				// Grace: a quarantine from the tick later this same
				// millisecond hasn't happened yet; one landed earlier has
				// had at least one probe round to re-steer.
				if int(hop) == port && h.n.Net.Sim.Now()-st.Since >= time.Millisecond {
					h.violate("best hop %d points at quarantined port s1:%d at t=%v",
						hop, port, h.n.Net.Sim.Now())
				}
			}
		})
	}
}

// finalChecks runs the post-run invariant sweep and fills the result
// summary.
func (h *fabricHarness) finalChecks() {
	if !h.sup.AllHealthy() {
		for _, st := range h.sup.Snapshot() {
			if st.State != fabric.Healthy {
				h.violate("link %v ended %v (cause %s)", st.Link, st.State, st.Cause)
			}
		}
	}
	for _, l := range h.n.Ctrl.Links() {
		skew, err := h.n.Ctrl.PortKeySkew(l[0].Switch, l[0].Port)
		if err != nil {
			h.violate("skew check %s:%d: %v", l[0].Switch, l[0].Port, err)
			continue
		}
		if skew != nil {
			h.violate("port keys not paired after recovery: %v", skew)
		}
	}

	o := h.n.Ctrl.Observer()
	events := o.Audit.ByType(obs.EvLinkState)
	for _, e := range events {
		from, to := fabric.TransitionPair(e.Value)
		h.trace("link %s %v->%v cause=%s epoch=%d", e.Actor, from, to, e.Cause, e.Seq)
		if e.Cause == "" {
			h.violate("link_state event for %s has no cause", e.Actor)
		}
		if from == to {
			h.violate("link_state event for %s is not a transition (%v->%v)", e.Actor, from, to)
		}
		if to == fabric.Quarantined {
			h.res.Quarantines++
		}
	}
	h.res.Transitions = o.Metrics.Counter("fabric.transitions").Load()
	if got := uint64(len(events)); got != h.res.Transitions {
		h.violate("audit has %d link_state events, transitions counter says %d",
			got, h.res.Transitions)
	}
	if ev := o.Audit.Evicted(); ev != 0 {
		h.violate("audit ring evicted %d events", ev)
	}
	if h.res.Quarantines == 0 {
		h.violate("scenario %s never quarantined a link", h.o.Scenario)
	}
	h.res.Repairs = o.Metrics.Counter("fabric.repairs_ok").Load()
	if h.res.Repairs == 0 {
		h.violate("no successful port-key repair in the whole run")
	}
	if h.n.TotalAlerts() == 0 {
		h.violate("forged probes raised no alerts")
	}
	h.res.Delivered = h.n.DstDelivered
	if h.res.Delivered == 0 {
		h.violate("no data delivered across the degraded fabric")
	}
	h.trace("done: transitions=%d quarantines=%d repairs=%d delivered=%d violations=%d",
		h.res.Transitions, h.res.Quarantines, h.res.Repairs,
		h.res.Delivered, len(h.res.Violations))
}
