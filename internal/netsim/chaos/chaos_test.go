package chaos

import (
	"fmt"
	"testing"
)

// runClean executes one chaos run and fails the test on any invariant
// violation, printing the trace for replay.
func runClean(t *testing.T, o Options) *Result {
	t.Helper()
	res, err := Run(o)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		for _, line := range res.Trace {
			t.Log(line)
		}
		t.Fatalf("%d invariant violations, first: %s", len(res.Violations), res.Violations[0])
	}
	if res.CtlKills+res.SwCrashes == 0 {
		t.Fatal("run injected no fault")
	}
	return res
}

// sweep runs the full victim x crash-point x seed grid for one scenario.
// Each scenario accumulates at least 20 controller kills and 20 switch
// crashes across the grid (5 seeds x 2 crash points x 2 warm modes).
func sweep(t *testing.T, scenario Scenario, crashAts []int) {
	ctlKills, swCrashes := 0, 0
	for _, victim := range []Victim{KillController, CrashSwitch} {
		for _, warm := range []bool{true, false} {
			for _, at := range crashAts {
				for seed := uint64(1); seed <= 5; seed++ {
					o := Options{
						Seed: seed, Scenario: scenario, Victim: victim,
						CrashAt: at, WarmDevice: warm,
					}
					t.Run(fmt.Sprintf("%s/warm=%v/at=%d/seed=%d", victim, warm, at, seed),
						func(t *testing.T) {
							res := runClean(t, o)
							ctlKills += res.CtlKills
							swCrashes += res.SwCrashes
						})
				}
			}
		}
	}
	if ctlKills < 20 || swCrashes < 20 {
		t.Fatalf("scenario %s: only %d controller kills and %d switch crashes (want >= 20 each)",
			scenario, ctlKills, swCrashes)
	}
}

func TestChaosMidRollover(t *testing.T) {
	sweep(t, MidRollover, []int{1, 3})
}

func TestChaosMidRegisterWrite(t *testing.T) {
	sweep(t, MidRegisterWrite, []int{1, 2})
}

func TestChaosMidPortKeyInit(t *testing.T) {
	sweep(t, MidPortKeyInit, []int{2, 5})
}

// TestChaosBackToBack kills the controller mid-operation, recovers, then
// crashes a switch mid-operation and recovers again — the compound
// failure, for every scenario.
func TestChaosBackToBack(t *testing.T) {
	count := 0
	for _, scenario := range []Scenario{MidRollover, MidRegisterWrite, MidPortKeyInit} {
		for _, warm := range []bool{true, false} {
			for seed := uint64(10); seed <= 13; seed++ {
				o := Options{
					Seed: seed, Scenario: scenario, Victim: BackToBack,
					CrashAt: 2, WarmDevice: warm,
				}
				t.Run(fmt.Sprintf("%s/warm=%v/seed=%d", scenario, warm, seed),
					func(t *testing.T) {
						res := runClean(t, o)
						if res.CtlKills != 1 || res.SwCrashes != 1 {
							t.Fatalf("want 1 kill + 1 crash, got %d + %d",
								res.CtlKills, res.SwCrashes)
						}
						count++
					})
			}
		}
	}
	if count < 20 {
		t.Fatalf("only %d back-to-back runs", count)
	}
}

// TestChaosDeterminism re-executes representative runs and requires
// bit-for-bit identical traces: a chaos schedule that cannot be replayed
// cannot be debugged.
func TestChaosDeterminism(t *testing.T) {
	for _, scenario := range []Scenario{MidRollover, MidRegisterWrite, MidPortKeyInit} {
		for _, victim := range []Victim{KillController, CrashSwitch, BackToBack} {
			o := Options{
				Seed: 42, Scenario: scenario, Victim: victim,
				CrashAt: 2, WarmDevice: true,
			}
			t.Run(fmt.Sprintf("%s/%s", scenario, victim), func(t *testing.T) {
				a, err := Run(o)
				if err != nil {
					t.Fatal(err)
				}
				b, err := Run(o)
				if err != nil {
					t.Fatal(err)
				}
				if len(a.Trace) != len(b.Trace) {
					t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
				}
				for i := range a.Trace {
					if a.Trace[i] != b.Trace[i] {
						t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s",
							i, a.Trace[i], b.Trace[i])
					}
				}
			})
		}
	}
}

// TestChaosShort is the fixed-seed smoke subset wired into scripts/check.sh:
// one run per scenario/victim pair, fast enough for every CI invocation.
func TestChaosShort(t *testing.T) {
	for _, scenario := range []Scenario{MidRollover, MidRegisterWrite, MidPortKeyInit} {
		for _, victim := range []Victim{KillController, CrashSwitch} {
			o := Options{
				Seed: 7, Scenario: scenario, Victim: victim,
				CrashAt: 2, WarmDevice: true,
			}
			t.Run(fmt.Sprintf("%s/%s", scenario, victim), func(t *testing.T) {
				runClean(t, o)
			})
		}
	}
}
