package chaos

import (
	"testing"
	"time"

	"p4auth/internal/netsim"
)

// TestShardOneGoldenBitIdentical reruns the recorded chaos seeds with
// the harness simulator built in sharded mode at shards<=1. The sharded
// engine's contract is that this configuration takes the exact lockstep
// code path, so every pinned golden trace must still match — a sharding
// regression that leaks into serial execution fails here, not in a
// fleet-scale run where it cannot be bisected.
func TestShardOneGoldenBitIdentical(t *testing.T) {
	orig := newHarnessSim
	defer func() { newHarnessSim = orig }()
	newHarnessSim = func() *netsim.Sim {
		s := netsim.NewSim()
		if err := s.EnableShards(1, 0); err != nil {
			t.Fatalf("EnableShards(1): %v", err)
		}
		return s
	}

	want := loadGoldens(t)
	for _, gr := range goldenRuns() {
		// The fabric runs build their simulator through the hula network
		// constructor, outside the seam; the remaining runs cover the
		// chaos, HA, and group harnesses.
		trace, err := gr.run()
		if err != nil {
			t.Fatalf("%s: %v", gr.name, err)
		}
		pinned, ok := want[gr.name]
		if !ok {
			t.Fatalf("%s: no pinned golden", gr.name)
		}
		if got := traceHash(trace); got != pinned {
			t.Errorf("%s: shards<=1 trace diverged from lockstep golden\n  pinned %s\n  got    %s",
				gr.name, pinned, got)
		}
	}
}

// The fleet harness schedules its probe and load loops through
// AtShard; at shards<=1 those must interleave exactly like At. This
// pins the equivalence at the netsim layer for a chain that mixes both
// APIs under a seeded schedule.
func TestShardAPIMixedScheduleLockstepEquivalence(t *testing.T) {
	run := func(sharded bool) []time.Duration {
		s := netsim.NewSim()
		if sharded {
			if err := s.EnableShards(1, 0); err != nil {
				t.Fatalf("EnableShards: %v", err)
			}
		}
		var order []time.Duration
		r := rng{s: 0xFEED}
		for i := 0; i < 64; i++ {
			at := time.Duration(r.intn(500)) * time.Microsecond
			rec := func() { order = append(order, s.Now()) }
			if r.intn(2) == 0 {
				s.At(at, rec)
			} else {
				s.AtShard(r.intn(8), at, rec)
			}
		}
		s.Run()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d ran at %v lockstep vs %v shards<=1", i, a[i], b[i])
		}
	}
}
