package chaos

import (
	"fmt"
	"testing"
)

// runFabricClean executes one fabric-chaos run and fails the test on any
// invariant violation, printing the trace for replay.
func runFabricClean(t *testing.T, o FabricOptions) *FabricResult {
	t.Helper()
	res, err := RunFabric(o)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		for _, line := range res.Trace {
			t.Log(line)
		}
		t.Fatalf("%d invariant violations, first: %s", len(res.Violations), res.Violations[0])
	}
	return res
}

// TestFabricShort is the fixed-seed fabric-chaos gate wired into
// scripts/check.sh: every scenario — flap storm, two-way partition,
// one-sided rollover — across three seeds must reconverge to
// all-links-Healthy with paired port keys and a fully reconciled audit
// trail, with the forger on-path for the whole degraded window.
func TestFabricShort(t *testing.T) {
	for _, scenario := range []FabricScenario{FabricFlap, FabricPartition, FabricSkew} {
		for _, seed := range []uint64{0xA1, 0xB2, 0xC3} {
			scenario, seed := scenario, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", scenario, seed), func(t *testing.T) {
				t.Parallel()
				res := runFabricClean(t, FabricOptions{Seed: seed, Scenario: scenario})
				if res.Quarantines == 0 || res.Repairs == 0 {
					t.Fatalf("scenario did not bite: quarantines=%d repairs=%d",
						res.Quarantines, res.Repairs)
				}
			})
		}
	}
}

// TestFabricDeterminism re-executes one run per scenario and requires
// bit-for-bit identical traces: a fault schedule that cannot be replayed
// cannot be debugged.
func TestFabricDeterminism(t *testing.T) {
	for _, scenario := range []FabricScenario{FabricFlap, FabricPartition, FabricSkew} {
		scenario := scenario
		t.Run(string(scenario), func(t *testing.T) {
			t.Parallel()
			o := FabricOptions{Seed: 42, Scenario: scenario}
			a, err := RunFabric(o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunFabric(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Trace) != len(b.Trace) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
			}
			for i := range a.Trace {
				if a.Trace[i] != b.Trace[i] {
					t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s",
						i, a.Trace[i], b.Trace[i])
				}
			}
		})
	}
}
