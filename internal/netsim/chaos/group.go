package chaos

// Group chaos: seeded N-replica controller-group runs (internal/ha.Group)
// against a fault-injecting store. Where RunHA exercises the 2-replica
// pair through one failover, RunGroup exercises the ranked group through
// the failure modes that only exist past N=2:
//
//   - rolling-kill: the active dies; the rank-1 successor dies
//     mid-promotion (and at N=5 so do ranks 2 and 3); each successor
//     takes over from tailed state at the next epoch — chained
//     succession with the chain depth recorded and audited;
//   - store-outage: the active's store goes dark mid-tenure. A blip
//     shorter than the bounded-staleness grace is ridden out on cached
//     evidence (degraded admission, observable); an outage past the
//     grace fences the active fail-safe BEFORE its lease even expires,
//     and a successor is elected once the store returns;
//   - acquire-race: multiple standbys race one election over the CAS
//     record; exactly one wins, every loser sees a held lease or a lost
//     swap, and the group resolves to the winner as incumbent.
//
// Invariants on every run: at most one replica passes its fence at any
// sampled instant; no forged write lands (before/during/after); no write
// of a fenced or dead replica reaches device state; replay floors stay
// monotone across every succession; audit reconciles exactly against
// metrics (fencing refusals, failovers, elections, degraded
// transitions); and two runs with equal options are bit-identical.
//
// Single-threaded and scripted, like every harness in this package:
// concurrency is modeled through pre-op store hooks on the virtual
// clock, so every race has one deterministic interleaving per seed.

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// GroupScenario selects the group failure mode.
type GroupScenario string

const (
	// GroupRollingKill kills the active, then each successor
	// mid-promotion, until the last rank survives: chained succession.
	GroupRollingKill GroupScenario = "rolling-kill"
	// GroupStoreOutage takes the shared store down mid-tenure: a short
	// blip is survived on the bounded-staleness fence, a long outage
	// fences the active fail-safe and a successor is elected after.
	GroupStoreOutage GroupScenario = "store-outage"
	// GroupAcquireRace races every standby over one vacant lease;
	// exactly one may win.
	GroupAcquireRace GroupScenario = "acquire-race"
)

// GroupOptions fully determines a group chaos run. Equal options must
// produce equal traces.
type GroupOptions struct {
	// Seed drives every random choice.
	Seed uint64
	// Replicas is the group size (default 3, minimum 3, maximum 8).
	Replicas int
	// Switches is the fleet size (default 16, minimum 2).
	Switches int
	// WritesPerSwitch is the per-wave write load (default 3).
	WritesPerSwitch int
	// TTL is the lease validity window in virtual time (default 5ms).
	TTL time.Duration
	// FenceGrace is the bounded-staleness window (default TTL/4).
	FenceGrace time.Duration
	// MaxSkew is the assumed clock divergence (default TTL/16).
	MaxSkew time.Duration
	// Scenario is the failure mode.
	Scenario GroupScenario
	// FailoverBudget bounds, in virtual time, the span from the fault to
	// the final winner serving. The default scales with group and fleet
	// size: each dead incumbent costs one TTL wait-out plus warm-restart
	// time linear in the fleet.
	FailoverBudget time.Duration
}

// GroupResult is the outcome of one group chaos run.
type GroupResult struct {
	// Trace is the deterministic event log.
	Trace []string
	// Violations lists every invariant breach; empty means clean.
	Violations []string
	// Replicas and Switches are the resolved sizes.
	Replicas, Switches int
	// Winner is the replica serving at the end of the run.
	Winner string
	// Epoch is the fencing epoch at the end of the run.
	Epoch uint64
	// Chained counts successors that died mid-promotion.
	Chained int
	// WaitOuts counts dead incumbents' grants waited out in full.
	WaitOuts uint64
	// FailoverTime spans the fault to the final winner serving.
	FailoverTime time.Duration
	// DegradedAdmits counts fence admissions on cached evidence.
	DegradedAdmits uint64
	// FencedAttempts counts refused sends+persists of fenced replicas.
	FencedAttempts uint64
	// Landed counts writes confirmed applied across the run.
	Landed int
	// WarmAll reports whether the final promotion was warm everywhere.
	WarmAll bool
}

// Group-run defaults.
const (
	groupDefaultReplicas = 3
	groupMaxReplicas     = 8
	groupDefaultSwitches = 16
	groupDefaultWrites   = 3
	groupDefaultTTL      = 5 * time.Millisecond
)

type groupHarness struct {
	o   GroupOptions
	res *GroupResult
	rng rng
	sim *netsim.Sim
	st  *statestore.FaultStore
	ob  *obs.Observer

	names  []string
	sw     map[string]*deploy.Switch
	shadow map[string][]uint64
	floors map[string][]uint64

	grp  *ha.Group
	reps []*ha.Replica
}

func (h *groupHarness) trace(format string, args ...interface{}) {
	h.res.Trace = append(h.res.Trace,
		fmt.Sprintf("t=%-12v ", h.sim.Now())+fmt.Sprintf(format, args...))
}

func (h *groupHarness) violate(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	h.res.Violations = append(h.res.Violations, v)
	h.trace("VIOLATION: %s", v)
}

// RunGroup executes one deterministic N-replica group chaos run.
func RunGroup(o GroupOptions) (*GroupResult, error) {
	switch o.Scenario {
	case GroupRollingKill, GroupStoreOutage, GroupAcquireRace:
	default:
		return nil, fmt.Errorf("chaos: unknown group scenario %q", o.Scenario)
	}
	if o.Replicas == 0 {
		o.Replicas = groupDefaultReplicas
	}
	if o.Replicas < 3 || o.Replicas > groupMaxReplicas {
		return nil, fmt.Errorf("chaos: group run needs 3..%d replicas, got %d", groupMaxReplicas, o.Replicas)
	}
	if o.Switches == 0 {
		o.Switches = groupDefaultSwitches
	}
	if o.Switches < 2 {
		return nil, fmt.Errorf("chaos: group run needs >= 2 switches, got %d", o.Switches)
	}
	if o.WritesPerSwitch == 0 {
		o.WritesPerSwitch = groupDefaultWrites
	}
	if o.TTL == 0 {
		o.TTL = groupDefaultTTL
	}
	if o.FenceGrace == 0 {
		o.FenceGrace = o.TTL / 4
	}
	if o.MaxSkew == 0 {
		o.MaxSkew = o.TTL / 16
	}
	if o.FailoverBudget == 0 {
		o.FailoverBudget = time.Duration(o.Replicas-1)*(o.TTL+2*time.Millisecond) +
			time.Duration((o.Replicas-1)*o.Switches)*5*time.Millisecond
	}
	h := &groupHarness{
		o:      o,
		res:    &GroupResult{Replicas: o.Replicas, Switches: o.Switches, WarmAll: true},
		rng:    rng{s: o.Seed ^ 0x6E0C0DE5},
		sim:    newHarnessSim(),
		ob:     obs.NewObserver(0),
		sw:     map[string]*deploy.Switch{},
		shadow: map[string][]uint64{},
		floors: map[string][]uint64{},
	}
	h.st = statestore.NewFaultStore(statestore.NewMem(), h.sim, statestore.FaultConfig{Seed: o.Seed})
	for i := 0; i < o.Switches; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: latEntries},
			},
		})
		if err != nil {
			return nil, err
		}
		h.sw[name] = s
		h.names = append(h.names, name)
		h.shadow[name] = make([]uint64, latEntries)
	}
	for i := 0; i < o.Replicas; i++ {
		r, err := h.newReplica(fmt.Sprintf("ctl-%d", i), uint64(i))
		if err != nil {
			return nil, err
		}
		h.reps = append(h.reps, r)
	}
	grp, err := ha.NewGroup(h.sim, h.reps...)
	if err != nil {
		return nil, err
	}
	h.grp = grp

	if err := h.baseline(); err != nil {
		return h.res, err
	}
	var winner *ha.Replica
	switch o.Scenario {
	case GroupRollingKill:
		winner = h.rollingKill()
	case GroupStoreOutage:
		winner = h.storeOutage()
	case GroupAcquireRace:
		winner = h.acquireRace()
	}
	if winner == nil {
		return h.res, fmt.Errorf("chaos: %s produced no serving replica (violations: %d)",
			o.Scenario, len(h.res.Violations))
	}
	h.aftermath(winner)
	h.finalChecks(winner)
	return h.res, nil
}

// newReplica builds one ranked replica over the shared fault store,
// simulator clock, and observer, with the whole fleet registered.
func (h *groupHarness) newReplica(name string, rank uint64) (*ha.Replica, error) {
	c := controller.New(crypto.NewSeededRand(h.o.Seed*1000003 + 7001*rank + 101))
	c.SetRetryPolicy(controller.ResilientRetryPolicy())
	c.UseClock(h.sim)
	for _, n := range h.names {
		s := h.sw[n]
		if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
			return nil, err
		}
	}
	return ha.NewReplica(ha.ReplicaConfig{
		Name:       name,
		Store:      h.st,
		Clock:      h.sim,
		TTL:        h.o.TTL,
		Controller: c,
		Observer:   h.ob,
		FenceGrace: h.o.FenceGrace,
		MaxSkew:    h.o.MaxSkew,
	})
}

// load lands one seeded write wave through the given controller,
// tracking shadows and the landed count. Slots latEntries-2 (outage
// probe) and latEntries-1 (forgery) stay clear.
func (h *groupHarness) load(label string, c *controller.Controller) {
	for _, n := range h.names {
		for k := 0; k < h.o.WritesPerSwitch; k++ {
			idx := uint32(h.rng.intn(latEntries - 2))
			v := h.rng.next() % 0xFFFF
			if _, err := c.WriteRegister(n, "lat", idx, v); err != nil {
				h.violate("%s: write %s lat[%d]: %v", label, n, idx, err)
				return
			}
			h.shadow[n][idx] = v
			h.res.Landed++
		}
	}
	h.trace("%s: %d writes landed across %d switches", label,
		h.o.WritesPerSwitch*len(h.names), len(h.names))
}

// sampleActives asserts at most one replica passes its fence right now.
func (h *groupHarness) sampleActives(label string) {
	active := 0
	holders := ""
	for _, r := range h.reps {
		if r.IsActive() {
			active++
			holders += " " + r.Name()
		}
	}
	if active > 1 {
		h.violate("%s: TWO ACTIVES at one instant:%s", label, holders)
	}
	h.trace("%s: %d replica(s) pass the fence%s", label, active, holders)
}

// baseline bootstraps rank 0, lands the first wave, lets every standby
// tail, and probes the fence on a standby.
func (h *groupHarness) baseline() error {
	act, err := h.grp.Bootstrap()
	if err != nil {
		return fmt.Errorf("chaos: group bootstrap: %w", err)
	}
	if _, err := act.Controller().InitAllKeys(); err != nil {
		return fmt.Errorf("chaos: baseline key init: %w", err)
	}
	h.trace("baseline: %d replicas ranked, %d switches, ttl=%v grace=%v skew=%v",
		h.o.Replicas, len(h.names), h.o.TTL, h.o.FenceGrace, h.o.MaxSkew)

	h.load("baseline", act.Controller())
	tailed, err := h.grp.TailStandbys()
	if err != nil {
		return fmt.Errorf("chaos: standby tail: %w", err)
	}
	if tailed < (h.o.Replicas-1)*len(h.names) {
		h.violate("standbys tailed %d records, want >= %d", tailed, (h.o.Replicas-1)*len(h.names))
	}
	h.trace("baseline: standbys tailed %d records", tailed)

	if _, err := h.reps[1].Controller().WriteRegister(h.names[0], "lat", 0, 1); !errors.Is(err, controller.ErrFenced) {
		h.violate("fenced standby write = %v, want ErrFenced", err)
	}
	for _, n := range h.names {
		h.floors[n] = h.readFloors(n)
	}
	h.forgerySweep("baseline")
	h.sampleActives("baseline")
	return nil
}

// rollingKill: kill the active, then each successor mid-promotion (via a
// lease-CAS counting hook), leaving only the last rank to finish. The
// chain depth, epochs, and wait-outs are all deterministic functions of
// the group size.
func (h *groupHarness) rollingKill() *ha.Replica {
	faultAt := h.sim.Now()
	h.reps[0].Controller().Kill()
	h.trace("fault: active %s killed", h.reps[0].Name())

	// The fencing guarantee: no successor can acquire pre-expiry.
	if _, err := h.reps[1].Activate(ha.CausePromoted); !errors.Is(err, ha.ErrLeaseHeld) {
		h.violate("takeover before lease expiry = %v, want ErrLeaseHeld", err)
	} else {
		h.trace("pre-expiry takeover refused: lease held")
	}

	// Each successor k dies at its first post-acquire renewal — lease CAS
	// number 2k counting from the election start (odd CASes are acquires,
	// even ones renewals, while the chain is rolling).
	midKills := h.o.Replicas - 2
	cas := 0
	h.st.SetHook(func(op statestore.Op, key string) {
		if op != statestore.OpCAS || key != statestore.LeaseKey {
			return
		}
		cas++
		if cas%2 == 0 {
			if k := cas / 2; k <= midKills && !h.reps[k].Controller().Killed() {
				h.reps[k].Controller().Kill()
				h.trace("fault: successor %s killed mid-promotion (lease CAS %d)", h.reps[k].Name(), cas)
			}
		}
	})
	el, err := h.grp.Elect(ha.CauseElected)
	h.st.SetHook(nil)
	if err != nil {
		h.violate("rolling-kill election: %v", err)
		return nil
	}
	h.res.FailoverTime = h.sim.Now() - faultAt
	h.res.Chained = el.Chained

	want := h.reps[h.o.Replicas-1]
	if el.Winner != want {
		h.violate("rolling-kill winner = %s, want %s (last rank)", el.Winner.Name(), want.Name())
	}
	if el.Chained != midKills {
		h.violate("chained promotions = %d, want %d", el.Chained, midKills)
	}
	// Epochs: bootstrap 1, then one per successor (aborted or not).
	if got, wantE := el.Winner.Epoch(), uint64(h.o.Replicas); got != wantE {
		h.violate("winner epoch = %d, want %d", got, wantE)
	}
	h.checkWarm(el.Winner, el.Warm)
	h.trace("elected %s at epoch %d: chained=%d failover=%v (budget %v)",
		el.Winner.Name(), el.Winner.Epoch(), el.Chained, h.res.FailoverTime, h.o.FailoverBudget)
	if h.res.FailoverTime > h.o.FailoverBudget {
		h.violate("failover took %v, budget %v", h.res.FailoverTime, h.o.FailoverBudget)
	}
	if wo := h.ob.Metrics.Counter("ha.election_waitouts").Load(); wo < uint64(midKills+1) {
		h.violate("wait-outs = %d, want >= %d (every dead grant waited out in full)", wo, midKills+1)
	}
	h.sampleActives("post-election")
	return el.Winner
}

// storeOutage: a blip shorter than the grace is survived on cached
// evidence; an outage past the grace fences the active fail-safe BEFORE
// lease expiry; the wedged node fail-stops and a successor is elected
// once the store returns.
func (h *groupHarness) storeOutage() *ha.Replica {
	act := h.grp.Active()
	if err := act.Renew(); err != nil {
		h.violate("pre-blip renew: %v", err)
		return nil
	}

	// Phase 1: blip < grace. Signed reads keep flowing on the degraded
	// fence (writes would need the journal, which IS the store — reads
	// are the operation a store blip must not take down).
	blipFrom := h.sim.Now() + 50*time.Microsecond
	blipTo := blipFrom + h.o.FenceGrace/2
	if err := h.st.ScheduleOutage(blipFrom, blipTo); err != nil {
		h.violate("blip schedule: %v", err)
		return nil
	}
	h.sim.Advance(100 * time.Microsecond)
	probe := h.names[h.rng.intn(len(h.names))]
	if _, _, err := act.Controller().ReadRegister(probe, "lat", 0); err != nil {
		h.violate("read during blip (inside grace) = %v, want served on cached grant", err)
	} else {
		h.trace("blip: read on %s served on cached evidence", probe)
	}
	if !act.InDegraded() {
		h.violate("active not in degraded mode during blip")
	}
	h.sim.Advance(blipTo - h.sim.Now() + 100*time.Microsecond)
	if _, _, err := act.Controller().ReadRegister(probe, "lat", 0); err != nil {
		h.violate("read after blip = %v", err)
	}
	if act.InDegraded() {
		h.violate("active still degraded after the store recovered")
	}
	m := h.ob.Metrics
	if a := m.Counter("ha.degraded_admits").Load(); a == 0 {
		h.violate("blip produced no degraded admissions")
	}
	if x := m.Counter("ha.degraded_exits").Load(); x == 0 {
		h.violate("blip recovery produced no degraded exit")
	}
	h.trace("blip survived: admits=%d exits=%d", m.Counter("ha.degraded_admits").Load(),
		m.Counter("ha.degraded_exits").Load())

	// Phase 2: outage > grace. The fence must exhaust and refuse BEFORE
	// the lease itself expires — fail-safe, never fail-open.
	if err := act.Renew(); err != nil {
		h.violate("pre-outage renew: %v", err)
		return nil
	}
	renewedAt := h.sim.Now()
	outFrom := h.sim.Now() + 50*time.Microsecond
	outTo := outFrom + h.o.TTL + 2*time.Millisecond
	if err := h.st.ScheduleOutage(outFrom, outTo); err != nil {
		h.violate("outage schedule: %v", err)
		return nil
	}
	// Inside the grace the active still serves — this is the episode the
	// exhaustion below ends.
	h.sim.Advance(200 * time.Microsecond)
	if _, _, err := act.Controller().ReadRegister(probe, "lat", 0); err != nil {
		h.violate("read inside outage grace = %v, want served on cached grant", err)
	}
	h.sim.Advance(renewedAt + h.o.FenceGrace + 200*time.Microsecond - h.sim.Now())
	if h.sim.Now() >= renewedAt+h.o.TTL {
		h.violate("harness bug: grace probe past lease expiry")
	}
	if _, _, err := act.Controller().ReadRegister(probe, "lat", 0); !errors.Is(err, controller.ErrFenced) {
		h.violate("read past grace = %v, want ErrFenced (fail-safe before expiry)", err)
	} else {
		h.trace("outage past grace: active self-fenced (%s) with lease still unexpired", ha.FenceCause(err))
	}
	if x := m.Counter("ha.degraded_exhausted").Load(); x == 0 {
		h.violate("long outage produced no grace exhaustion")
	}
	// A write attempt by the self-fenced active must die without a trace.
	if _, err := act.Controller().WriteRegister(h.names[0], "lat", latEntries-2, 0x666); err == nil {
		h.violate("write by self-fenced active succeeded during outage")
	}

	// The wedged node fail-stops; the store comes back; succession.
	faultAt := h.sim.Now()
	act.Controller().Kill()
	h.trace("fault: self-fenced active %s fail-stops", act.Name())
	h.sim.Advance(outTo - h.sim.Now() + 100*time.Microsecond)
	el, err := h.grp.Elect(ha.CauseElected)
	if err != nil {
		h.violate("post-outage election: %v", err)
		return nil
	}
	h.res.FailoverTime = h.sim.Now() - faultAt
	h.res.Chained = el.Chained
	if el.Winner != h.reps[1] || el.Chained != 0 {
		h.violate("post-outage winner = %s chained %d, want %s chained 0",
			el.Winner.Name(), el.Chained, h.reps[1].Name())
	}
	if got := el.Winner.Epoch(); got != 2 {
		h.violate("post-outage epoch = %d, want 2", got)
	}
	h.checkWarm(el.Winner, el.Warm)
	h.trace("elected %s at epoch %d after outage: failover=%v (budget %v)",
		el.Winner.Name(), el.Winner.Epoch(), h.res.FailoverTime, h.o.FailoverBudget)
	if h.res.FailoverTime > h.o.FailoverBudget {
		h.violate("failover took %v, budget %v", h.res.FailoverTime, h.o.FailoverBudget)
	}
	// The 0x666 probe slot must hold anything but the fenced value.
	if v, _, err := el.Winner.Controller().ReadRegister(h.names[0], "lat", latEntries-2); err != nil {
		h.violate("outage probe read-back: %v", err)
	} else if v == 0x666 {
		h.violate("FENCED WRITE LANDED: outage probe slot = 0x666")
	}
	h.sampleActives("post-election")
	return el.Winner
}

// acquireRace: the lease falls vacant and every standby from rank 2 down
// races the rank-1 candidate over the CAS record, modeled by a one-shot
// pre-CAS hook. Exactly one acquirer may win; the group resolves to that
// winner as the incumbent.
func (h *groupHarness) acquireRace() *ha.Replica {
	faultAt := h.sim.Now()
	h.reps[0].Controller().Kill()
	h.trace("fault: active %s killed", h.reps[0].Name())

	var winner *ha.Replica
	var raceWarm map[string]bool
	losers := 0
	armed, inHook := false, false
	h.st.SetHook(func(op statestore.Op, key string) {
		if inHook || armed || op != statestore.OpCAS || key != statestore.LeaseKey {
			return
		}
		armed = true // fire once: on the rank-1 candidate's acquire CAS
		inHook = true
		defer func() { inHook = false }()
		for _, rv := range h.reps[2:] {
			if _, err := rv.TailOnce(); err != nil {
				h.violate("racer %s tail: %v", rv.Name(), err)
				continue
			}
			warm, _, err := rv.Promote(ha.CausePromoted)
			switch {
			case err == nil:
				if winner != nil {
					h.violate("TWO RACE WINNERS: %s and %s", winner.Name(), rv.Name())
				}
				winner = rv
				raceWarm = warm
				h.trace("race: %s acquired and promoted at epoch %d", rv.Name(), rv.Epoch())
			case errors.Is(err, ha.ErrLeaseHeld), errors.Is(err, ha.ErrLeaseRaced):
				losers++
				h.trace("race: %s lost (%v)", rv.Name(), errors.Unwrap(err))
			default:
				h.violate("racer %s promote = %v, want win or clean loss", rv.Name(), err)
			}
		}
	})
	el, err := h.grp.Elect(ha.CauseElected)
	h.st.SetHook(nil)
	if err != nil {
		h.violate("race election: %v", err)
		return nil
	}
	h.res.FailoverTime = h.sim.Now() - faultAt

	if !armed {
		h.violate("race hook never fired; the scenario exercised nothing")
	}
	if winner != h.reps[2] {
		h.violate("race winner = %v, want %s (first racer, deterministic)", winner, h.reps[2].Name())
		return nil
	}
	if wantLosers := h.o.Replicas - 3; losers != wantLosers {
		h.violate("race losers = %d, want %d", losers, wantLosers)
	}
	// The group resolved the raced election to the incumbent winner: the
	// rank-1 candidate lost its swap and nobody was double-granted.
	if !el.Incumbent || el.Winner != winner {
		h.violate("election = winner %s incumbent %v, want incumbent %s",
			el.Winner.Name(), el.Incumbent, winner.Name())
	}
	if got := winner.Epoch(); got != 2 {
		h.violate("race winner epoch = %d, want 2", got)
	}
	if err := h.reps[1].Fence(); !errors.Is(err, controller.ErrFenced) {
		h.violate("raced-out candidate %s passes the fence", h.reps[1].Name())
	}
	h.checkWarm(winner, raceWarm)
	h.trace("race resolved: %s serving at epoch %d, %d loser(s), failover=%v",
		winner.Name(), winner.Epoch(), losers, h.res.FailoverTime)
	if h.res.FailoverTime > h.o.FailoverBudget {
		h.violate("failover took %v, budget %v", h.res.FailoverTime, h.o.FailoverBudget)
	}
	h.sampleActives("post-race")
	return winner
}

// checkWarm asserts the winner recovered every switch warm with zero
// K_seed uses.
func (h *groupHarness) checkWarm(w *ha.Replica, warm map[string]bool) {
	for _, n := range h.names {
		if !warm[n] {
			h.res.WarmAll = false
			h.violate("%s: promotion recovered cold (fell back to K_seed)", n)
		}
		if u := w.Controller().SeedUses(n); u != 0 {
			h.violate("%s: promotion used K_seed %d times", n, u)
		}
	}
}

// aftermath probes every non-winner for fencing, lands a final wave
// through the winner, and verifies the fleet against the shadow.
func (h *groupHarness) aftermath(w *ha.Replica) {
	for _, r := range h.reps {
		if r == w {
			continue
		}
		n := h.names[h.rng.intn(len(h.names))]
		idx := uint32(h.rng.intn(latEntries - 2))
		before, _, rerr := w.Controller().ReadRegister(n, "lat", idx)
		if rerr != nil {
			h.violate("aftermath read %s lat[%d]: %v", n, idx, rerr)
			continue
		}
		_, err := r.Controller().WriteRegister(n, "lat", idx, 0x777)
		switch {
		case errors.Is(err, controller.ErrFenced):
			h.trace("deposed %s write %s lat[%d] refused by fence", r.Name(), n, idx)
		case errors.Is(err, controller.ErrKilled):
			h.trace("deposed %s write %s lat[%d] refused (dead)", r.Name(), n, idx)
		default:
			h.violate("deposed %s write = %v, want fenced/killed refusal", r.Name(), err)
		}
		got, _, rerr := w.Controller().ReadRegister(n, "lat", idx)
		if rerr != nil {
			h.violate("aftermath re-read %s lat[%d]: %v", n, idx, rerr)
		} else if got != before {
			h.violate("STALE WRITE APPLIED: %s lat[%d] %d -> %d past the fence", n, idx, before, got)
		}
	}
	h.load("final", w.Controller())
	h.verifyShadows("final", w.Controller())
	h.forgerySweep("final")
}

// finalChecks is the post-run invariant sweep: floors monotone, no
// dangling intents, audit reconciled exactly.
func (h *groupHarness) finalChecks(w *ha.Replica) {
	for _, n := range h.names {
		cur := h.readFloors(n)
		old := h.floors[n]
		for i := range old {
			if i < len(cur) && cur[i] < old[i] {
				h.violate("%s: replay floor %d regressed %d -> %d across succession", n, i, old[i], cur[i])
			}
		}
	}
	for _, n := range h.names {
		entries, err := w.Controller().JournalEntries(n)
		if err != nil {
			h.violate("%s: JournalEntries: %v", n, err)
			continue
		}
		for _, e := range entries {
			if e.State == core.WriteIntent {
				h.violate("%s: dangling journal intent after succession: %s", n, e.Dump())
			}
		}
	}

	m, a := h.ob.Metrics, h.ob.Audit
	if a.Evicted() > 0 {
		h.violate("audit ring evicted %d events", a.Evicted())
	}
	h.res.FencedAttempts = m.Counter("ha.fenced_writes").Load() + m.Counter("ha.fenced_persists").Load()
	if n := uint64(len(a.ByType(obs.EvFencedWrite))); n != h.res.FencedAttempts {
		h.violate("%d fencing refusals counted, %d audited", h.res.FencedAttempts, n)
	}
	if h.res.FencedAttempts == 0 {
		h.violate("run produced no fencing refusals — the scenario did not bite")
	}
	if fo, n := m.Counter("ha.failovers").Load(), uint64(len(a.ByType(obs.EvFailover))); fo != n {
		h.violate("failovers = %d, audited %d", fo, n)
	}
	if el, n := m.Counter("ha.elections").Load(), uint64(len(a.ByType(obs.EvElection))); el != n {
		h.violate("elections = %d, audited %d", el, n)
	}
	trans := m.Counter("ha.degraded_enters").Load() +
		m.Counter("ha.degraded_exits").Load() +
		m.Counter("ha.degraded_exhausted").Load()
	if n := uint64(len(a.ByType(obs.EvDegraded))); n != trans {
		h.violate("degraded transitions = %d, audited %d", trans, n)
	}
	if drops, n := m.Counter("ctl.write_dropped").Load(), uint64(len(a.ByType(obs.EvWriteDropped))); drops != n {
		h.violate("%d dropped writes counted, %d audited", drops, n)
	}
	if bumps, n := m.Counter("ctl.floor_bumps").Load(), uint64(len(a.ByType(obs.EvFloorBump))); bumps != n {
		h.violate("%d floor bumps counted, %d audited", bumps, n)
	}
	for _, e := range a.ByType(obs.EvFencedWrite) {
		if e.Cause == "" {
			h.violate("fenced-write audit event #%d (%s) names no cause", e.ID, e.Actor)
		}
	}

	h.res.Winner = w.Name()
	h.res.Epoch = w.Epoch()
	h.res.WaitOuts = m.Counter("ha.election_waitouts").Load()
	h.res.DegradedAdmits = m.Counter("ha.degraded_admits").Load()
	h.trace("done: winner=%s epoch=%d chained=%d waitouts=%d degraded_admits=%d fenced=%d landed=%d violations=%d",
		h.res.Winner, h.res.Epoch, h.res.Chained, h.res.WaitOuts,
		h.res.DegradedAdmits, h.res.FencedAttempts, h.res.Landed, len(h.res.Violations))
}

// verifyShadows reads every shadowed slot back through the winner.
func (h *groupHarness) verifyShadows(label string, c *controller.Controller) {
	for _, n := range h.names {
		for idx := 0; idx < latEntries-2; idx++ {
			want := h.shadow[n][idx]
			if want == 0 {
				continue
			}
			got, _, err := c.ReadRegister(n, "lat", uint32(idx))
			if err != nil {
				h.violate("%s: read %s lat[%d]: %v", label, n, idx, err)
				return
			}
			if got != want {
				h.violate("%s: %s lat[%d] = %d, want %d", label, n, idx, got, want)
			}
		}
	}
	h.trace("%s: fleet state verified against shadow", label)
}

// forgerySweep runs the shared forgery probe (forgery.go).
func (h *groupHarness) forgerySweep(label string) {
	sweepForgeries(label, h.names, h.sw, &h.rng, h.violate, h.trace)
}

// readFloors returns the full RegSeq file of a switch.
func (h *groupHarness) readFloors(n string) []uint64 {
	var out []uint64
	sw := h.sw[n].Host.SW
	for i := 0; i < 64; i++ {
		v, err := sw.RegisterRead(core.RegSeq, i)
		if err != nil {
			break
		}
		out = append(out, v)
	}
	return out
}
