// Package netsim is a deterministic virtual-time network simulator: an
// event queue, nodes, and duplex links with propagation delay, bandwidth
// (serialization + queueing), utilization accounting, and per-direction
// taps where a man-in-the-middle can observe, rewrite, or drop packets in
// flight.
//
// The simulator replaces the paper's physical testbed links; a link tap
// gives an adversary exactly the capability of the paper's on-link MitM
// (§II-A): it sees the bytes a switch put on the wire and decides what the
// next switch receives.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Sim is a discrete-event simulator. The zero value is not usable; call
// NewSim.
//
// Scheduling (At/After/Send) is safe to call from any goroutine — the
// parallel switch's ingress workers emit packets concurrently — but event
// EXECUTION stays single-threaded: one goroutine drives Step/Run/RunUntil
// and event functions run on it with no simulator lock held, so handlers
// re-enter Send freely. Serial users see the exact pre-lock behavior:
// identical event order (time, then schedule sequence) and identical
// traces.
type Sim struct {
	mu  sync.Mutex
	now time.Duration
	pq  eventHeap
	seq uint64

	// Sharded mode (EnableShards): per-shard event heaps drained by
	// parallel workers in fence-bounded windows. nil/len<=1 = lockstep.
	shards []*simShard
	fence  time.Duration
}

// NewSim returns an empty simulator at virtual time zero.
func NewSim() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn at absolute virtual time t (clamped to now). In
// sharded mode the event lands on shard 0 (the control shard); use
// AtShard to target a specific shard.
func (s *Sim) At(t time.Duration, fn func()) {
	if s.shardCount() > 1 {
		s.AtShard(0, t, fn)
		return
	}
	s.mu.Lock()
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
	s.mu.Unlock()
}

// After schedules fn d after the current virtual time.
func (s *Sim) After(d time.Duration, fn func()) {
	if s.shardCount() > 1 {
		s.AtShard(0, s.Now()+d, fn)
		return
	}
	s.mu.Lock()
	t := s.now + d
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
	s.mu.Unlock()
}

// Step executes the next event; it reports false when the queue is empty.
// The event function runs with the simulator unlocked. Step is a
// lockstep-only primitive; it panics on a sharded simulator, where
// single-event interleaving across concurrent shards is not meaningful.
func (s *Sim) Step() bool {
	if s.shardCount() > 1 {
		panic("netsim: Step requires lockstep mode (shards <= 1)")
	}
	s.mu.Lock()
	if s.pq.Len() == 0 {
		s.mu.Unlock()
		return false
	}
	ev := heap.Pop(&s.pq).(*event)
	s.now = ev.at
	s.mu.Unlock()
	ev.fn()
	return true
}

// NextEventAt reports the timestamp of the earliest pending event, or
// false when the queue is empty. Like Step it is a lockstep-only
// primitive (it panics on a sharded simulator): blocking RPC loops use
// it to run the simulator forward event-by-event up to a deadline
// without overshooting it.
func (s *Sim) NextEventAt() (time.Duration, bool) {
	if s.shardCount() > 1 {
		panic("netsim: NextEventAt requires lockstep mode (shards <= 1)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pq.Len() == 0 {
		return 0, false
	}
	return s.pq[0].at, true
}

// Run drains the event queue.
func (s *Sim) Run() {
	if s.shardCount() > 1 {
		s.runSharded(-1)
		return
	}
	for s.Step() {
	}
}

// Advance executes events within the next d of virtual time and moves the
// clock forward by d — a virtual sleep, used by protocol engines (e.g. the
// controller's retransmission backoff) that wait on the simulated clock.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	t := s.now + d
	s.mu.Unlock()
	s.RunUntil(t)
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t.
func (s *Sim) RunUntil(t time.Duration) {
	if s.shardCount() > 1 {
		s.runSharded(t)
		return
	}
	for {
		s.mu.Lock()
		if s.pq.Len() == 0 || s.pq[0].at > t {
			s.mu.Unlock()
			break
		}
		ev := heap.Pop(&s.pq).(*event)
		s.now = ev.at
		s.mu.Unlock()
		ev.fn()
	}
	s.mu.Lock()
	if s.now < t {
		s.now = t
	}
	s.mu.Unlock()
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Handler consumes packets delivered to a node.
type Handler interface {
	// HandlePacket is invoked at delivery time; port is the receiving
	// node's port the packet arrived on.
	HandlePacket(net *Network, node *Node, port int, data []byte)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, node *Node, port int, data []byte)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(net *Network, node *Node, port int, data []byte) {
	f(net, node, port, data)
}

// Node is a network element (switch, controller host, traffic endpoint).
type Node struct {
	Name    string
	Handler Handler
	ports   map[int]*linkEnd
	// shard is the event shard this node's deliveries run on when the
	// simulator is sharded (EnableShards); 0 — and irrelevant — in
	// lockstep mode. Assigned via Network.SetShard before the run starts.
	shard int
}

// Shard reports the node's event-shard assignment.
func (n *Node) Shard() int { return n.shard }

// Tap observes and optionally rewrites a packet crossing a link direction.
// Returning nil drops the packet.
type Tap func(data []byte) []byte

// Link is a duplex link between two node ports.
type Link struct {
	sim   *Sim
	a, b  *linkEnd
	Delay time.Duration
	// Bandwidth in bits per second; 0 = infinite (no serialization).
	Bandwidth float64
	// mu guards down and both ends' queueing/utilization accounting so
	// concurrent Send calls (parallel switch workers) stay race-free. Never
	// held across tap, handler, or simulator calls.
	mu sync.Mutex
	// down cuts the link (both directions) administratively; checked at
	// delivery time, so packets in flight when the link drops are lost.
	// Kept separate from taps: user-installed fault taps compose on top.
	down bool
}

type linkEnd struct {
	link      *Link
	node      *Node
	port      int
	peer      *linkEnd
	busyUntil time.Duration
	tap       Tap
	// dirDown cuts only the direction of the link that delivers INTO
	// this end's node — the asymmetric half of a WAN partition. Checked
	// at delivery time like Link.down; guarded by link.mu.
	dirDown bool
	// spikes are latency-spike windows on the direction delivering into
	// this end's node: a packet departing inside [from,to) is delayed by
	// an additional extra. Guarded by link.mu.
	spikes []latencySpike
	// utilization accounting (bytes entering the link from this end)
	ewmaBps    float64
	ewmaAt     time.Duration
	totalBytes uint64
	totalPkts  uint64
	dropped    uint64
}

// utilHalfLife is the decay constant for link utilization estimates.
const utilHalfLife = 10 * time.Millisecond

// Network owns the simulator, nodes, and links.
type Network struct {
	Sim   *Sim
	nodes map[string]*Node
	links []*Link
}

// NewNetwork returns an empty network over a fresh simulator.
func NewNetwork() *Network {
	return &Network{Sim: NewSim(), nodes: make(map[string]*Node)}
}

// AddNode registers a node; it panics on duplicate names (topology
// construction bugs should fail loudly at build time).
func (n *Network) AddNode(name string, h Handler) *Node {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	node := &Node{Name: name, Handler: h, ports: make(map[int]*linkEnd)}
	n.nodes[name] = node
	return node
}

// Node returns a registered node or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// SetShard assigns the named node to an event shard (EnableShards).
// Call it during topology construction, before the simulation runs;
// shard assignments are not safe to change mid-run.
func (n *Network) SetShard(name string, shard int) error {
	node, ok := n.nodes[name]
	if !ok {
		return fmt.Errorf("netsim: unknown node %q", name)
	}
	if shard < 0 {
		return fmt.Errorf("netsim: negative shard %d", shard)
	}
	node.shard = shard
	return nil
}

// Nodes returns the number of registered nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// Connect links nodeA's portA with nodeB's portB.
func (n *Network) Connect(nodeA string, portA int, nodeB string, portB int, delay time.Duration, bandwidthBps float64) (*Link, error) {
	a, ok := n.nodes[nodeA]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %q", nodeA)
	}
	b, ok := n.nodes[nodeB]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %q", nodeB)
	}
	if _, used := a.ports[portA]; used {
		return nil, fmt.Errorf("netsim: %s port %d already connected", nodeA, portA)
	}
	if _, used := b.ports[portB]; used {
		return nil, fmt.Errorf("netsim: %s port %d already connected", nodeB, portB)
	}
	l := &Link{sim: n.Sim, Delay: delay, Bandwidth: bandwidthBps}
	l.a = &linkEnd{link: l, node: a, port: portA}
	l.b = &linkEnd{link: l, node: b, port: portB}
	l.a.peer, l.b.peer = l.b, l.a
	a.ports[portA] = l.a
	b.ports[portB] = l.b
	n.links = append(n.links, l)
	return l, nil
}

// MustConnect is Connect that panics on error, for topology builders.
func (n *Network) MustConnect(nodeA string, portA int, nodeB string, portB int, delay time.Duration, bandwidthBps float64) *Link {
	l, err := n.Connect(nodeA, portA, nodeB, portB, delay, bandwidthBps)
	if err != nil {
		panic(err)
	}
	return l
}

// SetTap installs (or clears, with nil) a tap on the direction of the link
// that *enters* the named node: the tap sees packets just before delivery.
func (l *Link) SetTap(towardNode string, t Tap) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch towardNode {
	case l.a.node.Name:
		l.a.tap = t
	case l.b.node.Name:
		l.b.tap = t
	default:
		return fmt.Errorf("netsim: link does not touch node %q", towardNode)
	}
	return nil
}

// Ends returns the two node names the link connects.
func (l *Link) Ends() (string, string) { return l.a.node.Name, l.b.node.Name }

// SetDown cuts (true) or restores (false) the link in both directions.
// Packets already in flight are lost when the link is down at their
// delivery time — a cut severs the fiber, not the send queue.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
}

// Down reports whether the link is administratively cut.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// latencySpike is one extra-delay window on a link direction.
type latencySpike struct {
	from, to time.Duration // [from, to) in departure time
	extra    time.Duration
}

func (e *linkEnd) spikeExtra(depart time.Duration) time.Duration {
	var extra time.Duration
	for _, s := range e.spikes {
		if depart >= s.from && depart < s.to {
			extra += s.extra
		}
	}
	return extra
}

// end returns the link end that delivers into the named node.
func (l *Link) end(towardNode string) (*linkEnd, error) {
	switch towardNode {
	case l.a.node.Name:
		return l.a, nil
	case l.b.node.Name:
		return l.b, nil
	}
	return nil, fmt.Errorf("netsim: link does not touch node %q", towardNode)
}

// SetDirDown cuts (true) or restores (false) only the direction of the
// link that delivers INTO the named node, leaving the reverse direction
// untouched — the asymmetric half of a WAN partition: the victim keeps
// transmitting but hears nothing back. Like SetDown, the cut acts at
// delivery time, so packets in flight are lost.
func (l *Link) SetDirDown(towardNode string, down bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, err := l.end(towardNode)
	if err != nil {
		return err
	}
	e.dirDown = down
	return nil
}

// DirDown reports whether the direction delivering into the named node
// is administratively cut (SetDirDown; a full SetDown is reported by
// Down, not here).
func (l *Link) DirDown(towardNode string) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, err := l.end(towardNode)
	if err != nil {
		return false, err
	}
	return e.dirDown, nil
}

// AddLatencySpike injects a WAN latency spike on the direction of the
// link that delivers into the named node: every packet departing in
// [from, to) is delayed by an additional extra on top of propagation,
// serialization, and queueing. Spikes accumulate; overlapping windows
// add. Packets already scheduled keep their original delivery times —
// a spike stretches the path, it does not reorder history.
func (l *Link) AddLatencySpike(towardNode string, from, to, extra time.Duration) error {
	if to <= from || extra < 0 {
		return fmt.Errorf("netsim: invalid latency spike window [%v,%v) extra %v", from, to, extra)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, err := l.end(towardNode)
	if err != nil {
		return err
	}
	e.spikes = append(e.spikes, latencySpike{from: from, to: to, extra: extra})
	return nil
}

// ClearLatencySpikes removes all spike windows in both directions.
func (l *Link) ClearLatencySpikes() {
	l.mu.Lock()
	l.a.spikes = nil
	l.b.spikes = nil
	l.mu.Unlock()
}

// Send transmits data from node's port after delay extraDelay (the sender's
// local processing time). It returns an error if the port is unconnected.
func (n *Network) Send(node *Node, port int, data []byte, extraDelay time.Duration) error {
	end, ok := node.ports[port]
	if !ok {
		return fmt.Errorf("netsim: %s port %d not connected", node.Name, port)
	}
	l := end.link
	d := make([]byte, len(data))
	copy(d, data)

	// In lockstep mode this is the global clock (the exact pre-shard
	// behavior); in sharded mode it is the sending node's shard-local
	// clock, so per-shard timing stays self-consistent.
	now := n.Sim.ShardNow(node.shard)
	ready := now + extraDelay
	ser := time.Duration(0)
	if l.Bandwidth > 0 {
		ser = time.Duration(float64(len(d)*8) / l.Bandwidth * float64(time.Second))
	}
	// FIFO queueing on this direction of the link.
	l.mu.Lock()
	start := ready
	if end.busyUntil > start {
		start = end.busyUntil
	}
	depart := start + ser
	end.busyUntil = depart
	end.recordBytes(now, len(d))
	dst := end.peer
	// Latency spikes stretch this direction of the path for packets
	// departing inside a spike window (WAN fault injection).
	spike := dst.spikeExtra(depart)
	l.mu.Unlock()

	n.Sim.AtShard(dst.node.shard, depart+l.Delay+spike, func() {
		l.mu.Lock()
		down, tap := l.down || dst.dirDown, dst.tap
		if down {
			dst.dropped++
		}
		l.mu.Unlock()
		if down {
			return
		}
		payload := d
		if tap != nil {
			payload = tap(payload)
			if payload == nil {
				l.mu.Lock()
				dst.dropped++
				l.mu.Unlock()
				return
			}
		}
		if dst.node.Handler != nil {
			dst.node.Handler.HandlePacket(n, dst.node, dst.port, payload)
		}
	})
	return nil
}

func (e *linkEnd) recordBytes(now time.Duration, n int) {
	e.totalBytes += uint64(n)
	e.totalPkts++
	// Exponentially decayed rate estimate.
	if e.ewmaAt == 0 && e.ewmaBps == 0 {
		e.ewmaAt = now
	}
	dt := now - e.ewmaAt
	if dt > 0 {
		e.ewmaBps *= math.Pow(0.5, float64(dt)/float64(utilHalfLife))
		e.ewmaAt = now
	}
	// The ln2 factor makes the steady-state estimate equal the true rate.
	e.ewmaBps += float64(n*8) * math.Ln2 / utilHalfLife.Seconds()
}

// TxStats reports bytes/packets transmitted from the named node onto this
// link, and packets dropped by a tap in the opposite direction before
// delivery to that node.
func (l *Link) TxStats(fromNode string) (bytes, packets uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch fromNode {
	case l.a.node.Name:
		return l.a.totalBytes, l.a.totalPkts, nil
	case l.b.node.Name:
		return l.b.totalBytes, l.b.totalPkts, nil
	}
	return 0, 0, fmt.Errorf("netsim: link does not touch node %q", fromNode)
}

// Utilization returns the decayed transmit rate from the named node as a
// fraction of link bandwidth (0 when bandwidth is infinite).
func (l *Link) Utilization(fromNode string) (float64, error) {
	var e *linkEnd
	switch fromNode {
	case l.a.node.Name:
		e = l.a
	case l.b.node.Name:
		e = l.b
	default:
		return 0, fmt.Errorf("netsim: link does not touch node %q", fromNode)
	}
	if l.Bandwidth <= 0 {
		return 0, nil
	}
	now := l.sim.Now()
	// Apply decay up to now without recording traffic.
	l.mu.Lock()
	rate := e.ewmaBps
	if dt := now - e.ewmaAt; dt > 0 {
		rate *= math.Pow(0.5, float64(dt)/float64(utilHalfLife))
	}
	l.mu.Unlock()
	u := rate / l.Bandwidth
	if u > 1 {
		u = 1
	}
	return u, nil
}

// LinkBetween returns the first link connecting the two named nodes, or
// nil.
func (n *Network) LinkBetween(a, b string) *Link {
	for _, l := range n.links {
		x, y := l.Ends()
		if (x == a && y == b) || (x == b && y == a) {
			return l
		}
	}
	return nil
}

// Partition cuts every link with exactly one end inside the named group,
// splitting the network two ways, and returns the links it cut (already
// -down links are not re-cut and not returned, so interleaved partitions
// heal independently). Heal the split by calling SetDown(false) on the
// returned links, or Heal to restore the whole network.
func (n *Network) Partition(group ...string) []*Link {
	in := make(map[string]bool, len(group))
	for _, name := range group {
		in[name] = true
	}
	var cut []*Link
	for _, l := range n.links {
		a, b := l.Ends()
		if in[a] != in[b] && !l.Down() {
			l.SetDown(true)
			cut = append(cut, l)
		}
	}
	return cut
}

// Heal restores every administratively-cut link — full cuts and
// asymmetric direction cuts alike — and reports how many links it
// brought back up.
func (n *Network) Heal() int {
	healed := 0
	for _, l := range n.links {
		touched := false
		if l.Down() {
			l.SetDown(false)
			touched = true
		}
		l.mu.Lock()
		if l.a.dirDown || l.b.dirDown {
			l.a.dirDown, l.b.dirDown = false, false
			touched = true
		}
		l.mu.Unlock()
		if touched {
			healed++
		}
	}
	return healed
}

// PartitionAsym cuts only the INBOUND direction of every link with
// exactly one end inside the named group: group members keep
// transmitting into the rest of the network, but hear nothing back — the
// classic asymmetric WAN failure (one-way fiber cut, unidirectional
// filtering). It returns the links it cut; heal them with
// SetDirDown(member, false) per link, or Network.Heal.
func (n *Network) PartitionAsym(group ...string) []*Link {
	in := make(map[string]bool, len(group))
	for _, name := range group {
		in[name] = true
	}
	var cut []*Link
	for _, l := range n.links {
		a, b := l.Ends()
		if in[a] == in[b] {
			continue
		}
		member := a
		if in[b] {
			member = b
		}
		if d, _ := l.DirDown(member); d {
			continue
		}
		l.SetDirDown(member, true)
		cut = append(cut, l)
	}
	return cut
}
