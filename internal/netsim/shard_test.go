package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEnableShardsValidation(t *testing.T) {
	s := NewSim()
	s.At(time.Millisecond, func() {})
	if err := s.EnableShards(4, time.Microsecond); err == nil {
		t.Fatal("EnableShards on a non-pristine sim must fail")
	}

	s = NewSim()
	if err := s.EnableShards(4, 0); err == nil {
		t.Fatal("EnableShards with zero fence must fail")
	}
	if err := s.EnableShards(1, 0); err != nil {
		t.Fatalf("EnableShards(1) must be a lockstep no-op, got %v", err)
	}
	if s.Shards() != 1 {
		t.Fatalf("lockstep Shards() = %d, want 1", s.Shards())
	}
	if err := s.EnableShards(4, time.Microsecond); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	if err := s.EnableShards(2, time.Microsecond); err == nil {
		t.Fatal("double EnableShards must fail")
	}
}

// With shards <= 1 every AtShard/ShardNow call must hit the exact
// lockstep path: identical event order, identical trace.
func TestShardOneBitIdenticalToLockstep(t *testing.T) {
	run := func(useShardAPI bool) []string {
		s := NewSim()
		if useShardAPI {
			if err := s.EnableShards(1, 0); err != nil {
				t.Fatalf("EnableShards: %v", err)
			}
		}
		var trace []string
		var rec func(shard int, at time.Duration, label string, depth int)
		rec = func(shard int, at time.Duration, label string, depth int) {
			s.AtShard(shard, at, func() {
				trace = append(trace, fmt.Sprintf("%v %s now=%v", at, label, s.ShardNow(shard)))
				if depth > 0 {
					rec((shard+1)%3, at+time.Microsecond, label+"'", depth-1)
				}
			})
		}
		for i := 0; i < 5; i++ {
			rec(i%3, time.Duration(5-i)*time.Microsecond, fmt.Sprintf("e%d", i), 2)
		}
		s.Run()
		return trace
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace[%d] differs:\n lockstep: %s\n shards=1: %s", i, a[i], b[i])
		}
	}
}

func TestShardedStepPanics(t *testing.T) {
	s := NewSim()
	if err := s.EnableShards(2, time.Microsecond); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a sharded sim must panic")
		}
	}()
	s.Step()
}

// Per-shard event order is (time, seq) even when the heaps drain in
// parallel, and clocks never regress.
func TestShardedPerShardOrderAndClockMonotone(t *testing.T) {
	s := NewSim()
	const shards = 4
	if err := s.EnableShards(shards, 10*time.Microsecond); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	var mu sync.Mutex
	seen := make([][]time.Duration, shards)
	for sh := 0; sh < shards; sh++ {
		sh := sh
		for i := 0; i < 50; i++ {
			at := time.Duration((i*7)%40+1) * time.Microsecond
			s.AtShard(sh, at, func() {
				now := s.ShardNow(sh)
				mu.Lock()
				seen[sh] = append(seen[sh], now)
				mu.Unlock()
			})
		}
	}
	s.Run()
	for sh := 0; sh < shards; sh++ {
		if len(seen[sh]) != 50 {
			t.Fatalf("shard %d ran %d events, want 50", sh, len(seen[sh]))
		}
		for i := 1; i < len(seen[sh]); i++ {
			if seen[sh][i] < seen[sh][i-1] {
				t.Fatalf("shard %d clock regressed: %v after %v", sh, seen[sh][i], seen[sh][i-1])
			}
		}
	}
}

// RunUntil semantics carry over: events at <= t run, clocks end at t,
// and a later RunUntil resumes.
func TestShardedRunUntil(t *testing.T) {
	s := NewSim()
	if err := s.EnableShards(2, 5*time.Microsecond); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	var ran atomic.Int64
	for sh := 0; sh < 2; sh++ {
		for _, at := range []time.Duration{3, 10, 17, 30} {
			s.AtShard(sh, at*time.Microsecond, func() { ran.Add(1) })
		}
	}
	s.RunUntil(10 * time.Microsecond)
	if got := ran.Load(); got != 4 {
		t.Fatalf("events run by t=10µs: %d, want 4", got)
	}
	if now := s.Now(); now != 10*time.Microsecond {
		t.Fatalf("Now() = %v, want 10µs", now)
	}
	if now := s.ShardNow(1); now != 10*time.Microsecond {
		t.Fatalf("ShardNow(1) = %v, want 10µs", now)
	}
	s.RunUntil(40 * time.Microsecond)
	if got := ran.Load(); got != 8 {
		t.Fatalf("events run by t=40µs: %d, want 8", got)
	}
}

// Cross-shard sends through a Network land on the destination node's
// shard, and the fence bounds skew: with fence <= link delay, delivery
// times are never clamped, so per-packet latency is exact.
func TestShardedNetworkDelivery(t *testing.T) {
	n := NewNetwork()
	const delay = 10 * time.Microsecond
	if err := n.Sim.EnableShards(2, delay); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	var got atomic.Int64
	var deliveredAt atomic.Int64
	n.AddNode("a", nil)
	n.AddNode("b", HandlerFunc(func(net *Network, node *Node, port int, data []byte) {
		got.Add(int64(len(data)))
		deliveredAt.Store(int64(net.Sim.ShardNow(node.Shard())))
	}))
	if err := n.SetShard("a", 0); err != nil {
		t.Fatalf("SetShard: %v", err)
	}
	if err := n.SetShard("b", 1); err != nil {
		t.Fatalf("SetShard: %v", err)
	}
	if n.Node("b").Shard() != 1 {
		t.Fatal("shard assignment lost")
	}
	n.MustConnect("a", 1, "b", 1, delay, 0)
	n.Sim.AtShard(0, time.Microsecond, func() {
		if err := n.Send(n.Node("a"), 1, []byte{1, 2, 3}, 0); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	n.Sim.Run()
	if got.Load() != 3 {
		t.Fatalf("delivered %d bytes, want 3", got.Load())
	}
	if at := time.Duration(deliveredAt.Load()); at != time.Microsecond+delay {
		t.Fatalf("delivered at %v, want %v", at, time.Microsecond+delay)
	}
}

// The -race stress of the satellite: concurrent shard drains while the
// control plane mutates links (SetDown flaps, Partition/Heal) and taps
// from a shard-0 control loop, with cross-shard traffic flowing the
// whole time. The assertions are liveness and conservation; the race
// detector asserts the rest.
func TestShardedEngineRaceStress(t *testing.T) {
	n := NewNetwork()
	const (
		shards = 4
		nodes  = 8
		fence  = 5 * time.Microsecond
		delay  = 5 * time.Microsecond
	)
	if err := n.Sim.EnableShards(shards, fence); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	var delivered atomic.Int64
	names := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		names[i] = fmt.Sprintf("n%d", i)
		n.AddNode(names[i], HandlerFunc(func(net *Network, node *Node, port int, data []byte) {
			delivered.Add(1)
			// Bounce a few packets onward to keep cross-shard traffic up.
			if len(data) > 1 {
				_ = net.Send(node, port, data[:len(data)-1], time.Microsecond)
			}
		}))
		if err := n.SetShard(names[i], i%shards); err != nil {
			t.Fatalf("SetShard: %v", err)
		}
	}
	// Ring wiring: node i port 2 -> node i+1 port 1.
	links := make([]*Link, 0, nodes)
	for i := 0; i < nodes; i++ {
		links = append(links, n.MustConnect(names[i], 2, names[(i+1)%nodes], 1, delay, 1e9))
	}
	// Seed traffic on every node.
	for i := 0; i < nodes; i++ {
		node := n.Node(names[i])
		for k := 0; k < 20; k++ {
			at := time.Duration(k+1) * 3 * time.Microsecond
			n.Sim.AtShard(node.Shard(), at, func() {
				_ = n.Send(node, 2, make([]byte, 8), 0)
			})
		}
	}
	// Control plane on shard 0: flap links, install/clear taps, partition
	// and heal — all while other shards drain concurrently.
	flap := 0
	var control func()
	start := 7 * time.Microsecond
	control = func() {
		l := links[flap%len(links)]
		l.SetDown(flap%2 == 0)
		_ = l.SetTap(names[(flap+1)%nodes], func(d []byte) []byte { return d })
		if flap%3 == 0 {
			cut := n.Partition(names[0], names[1])
			_ = cut
		} else {
			n.Heal()
		}
		flap++
		if flap < 40 {
			n.Sim.AtShard(0, n.Sim.ShardNow(0)+2*time.Microsecond, control)
		} else {
			n.Heal()
			for _, l := range links {
				_ = l.SetTap(names[0], nil)
			}
		}
	}
	n.Sim.AtShard(0, start, control)
	n.Sim.Run()
	if delivered.Load() == 0 {
		t.Fatal("no packets delivered under stress")
	}
	// All links healed at the end; stats must be readable and coherent.
	var totalTx uint64
	for i, l := range links {
		if l.Down() {
			t.Fatalf("link %d still down after final heal", i)
		}
		b, p, err := l.TxStats(names[i])
		if err != nil {
			t.Fatalf("TxStats: %v", err)
		}
		if p > 0 && b == 0 {
			t.Fatalf("link %d: packets without bytes", i)
		}
		totalTx += p
	}
	if totalTx == 0 {
		t.Fatal("no transmissions recorded")
	}
}

// Parallel mode must still respect the same-shard schedule: an event
// chain that reschedules itself on its own shard within the window runs
// to completion in timestamp order.
func TestShardedSameShardChainWithinWindow(t *testing.T) {
	s := NewSim()
	if err := s.EnableShards(2, 100*time.Microsecond); err != nil {
		t.Fatalf("EnableShards: %v", err)
	}
	var order []int
	var chain func(i int)
	chain = func(i int) {
		order = append(order, i)
		if i < 10 {
			s.AtShard(1, s.ShardNow(1)+time.Microsecond, func() { chain(i + 1) })
		}
	}
	s.AtShard(1, time.Microsecond, func() { chain(0) })
	s.Run()
	if len(order) != 11 {
		t.Fatalf("chain ran %d steps, want 11", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain out of order at %d: %v", i, order)
		}
	}
}
