package netsim

import (
	"bytes"
	"testing"
)

// TestReorderTapPattern checks the deterministic three-slot reorder: the
// first packet of each triple is held and delivered in the third slot
// (displacing that slot's packet), the second passes straight through.
func TestReorderTapPattern(t *testing.T) {
	tap := ReorderTap()
	send := func(b byte) []byte { return tap([]byte{b}) }

	if got := send(1); got != nil {
		t.Fatalf("packet 1 must be held, got %v", got)
	}
	if got := send(2); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("packet 2 must pass, got %v", got)
	}
	if got := send(3); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("packet 3's slot must deliver held packet 1, got %v", got)
	}
	// Second triple behaves identically.
	if got := send(4); got != nil {
		t.Fatalf("packet 4 must be held, got %v", got)
	}
	if got := send(5); !bytes.Equal(got, []byte{5}) {
		t.Fatalf("packet 5 must pass, got %v", got)
	}
	if got := send(6); !bytes.Equal(got, []byte{4}) {
		t.Fatalf("packet 6's slot must deliver held packet 4, got %v", got)
	}
}

// TestReorderTapCopiesHeldPacket ensures the held packet is a copy: a
// sender reusing its buffer between sends must not corrupt the delayed
// delivery.
func TestReorderTapCopiesHeldPacket(t *testing.T) {
	tap := ReorderTap()
	buf := []byte{0xAA}
	tap(buf)
	buf[0] = 0xFF // sender reuses its buffer
	tap([]byte{2})
	if got := tap([]byte{3}); !bytes.Equal(got, []byte{0xAA}) {
		t.Fatalf("held packet mutated: got %v, want [0xAA]", got)
	}
}

func TestNewReorderTapRejectsBadPeriod(t *testing.T) {
	if _, err := NewReorderTap(2); err == nil {
		t.Fatal("period 2 accepted")
	}
}
