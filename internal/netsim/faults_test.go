package netsim

import (
	"bytes"
	"testing"
)

// TestReorderTapPattern checks the deterministic three-slot reorder: the
// first packet of each triple is held and delivered in the third slot
// (displacing that slot's packet), the second passes straight through.
func TestReorderTapPattern(t *testing.T) {
	tap := ReorderTap()
	send := func(b byte) []byte { return tap([]byte{b}) }

	if got := send(1); got != nil {
		t.Fatalf("packet 1 must be held, got %v", got)
	}
	if got := send(2); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("packet 2 must pass, got %v", got)
	}
	if got := send(3); !bytes.Equal(got, []byte{1}) {
		t.Fatalf("packet 3's slot must deliver held packet 1, got %v", got)
	}
	// Second triple behaves identically.
	if got := send(4); got != nil {
		t.Fatalf("packet 4 must be held, got %v", got)
	}
	if got := send(5); !bytes.Equal(got, []byte{5}) {
		t.Fatalf("packet 5 must pass, got %v", got)
	}
	if got := send(6); !bytes.Equal(got, []byte{4}) {
		t.Fatalf("packet 6's slot must deliver held packet 4, got %v", got)
	}
}

// TestReorderTapCopiesHeldPacket ensures the held packet is a copy: a
// sender reusing its buffer between sends must not corrupt the delayed
// delivery.
func TestReorderTapCopiesHeldPacket(t *testing.T) {
	tap := ReorderTap()
	buf := []byte{0xAA}
	tap(buf)
	buf[0] = 0xFF // sender reuses its buffer
	tap([]byte{2})
	if got := tap([]byte{3}); !bytes.Equal(got, []byte{0xAA}) {
		t.Fatalf("held packet mutated: got %v, want [0xAA]", got)
	}
}

func TestNewReorderTapRejectsBadPeriod(t *testing.T) {
	if _, err := NewReorderTap(2); err == nil {
		t.Fatal("period 2 accepted")
	}
	if _, err := NewReorderer(2); err == nil {
		t.Fatal("NewReorderer accepted period 2")
	}
}

// TestReordererCloseDropsHeldPacket is the regression test for the
// held-slot leak: a reorderer whose link was torn down while a packet
// sat in the held slot used to emit that stale packet into whatever
// stream next invoked the tap. Close must drop the slot and neuter the
// displacement pattern.
func TestReordererCloseDropsHeldPacket(t *testing.T) {
	r, err := NewReorderer(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Tap([]byte{1}); got != nil {
		t.Fatalf("packet 1 must be held, got %v", got)
	}
	if !r.Holding() {
		t.Fatal("Holding() false with a packet in the held slot")
	}
	if !r.Close() {
		t.Fatal("Close did not report the dropped held packet")
	}
	if r.Holding() {
		t.Fatal("Holding() true after Close")
	}
	// The link comes back and the same tap value is invoked again: the
	// pre-teardown packet must never surface, and no new displacement
	// may start.
	for b := byte(2); b < 8; b++ {
		if got := r.Tap([]byte{b}); !bytes.Equal(got, []byte{b}) {
			t.Fatalf("packet %d after Close: got %v, want pass-through", b, got)
		}
	}
	if r.Close() {
		t.Fatal("idempotent Close reported a held packet")
	}
}

// TestReordererLinkTeardown replays the leak at the netsim layer: hold a
// packet on a tapped link, tear the tap down (SetTap nil + Close), then
// re-tap the link for a fresh stream and verify the receiver sees only
// the new stream's packets — the displaced pre-teardown packet stays
// gone.
func TestReordererLinkTeardown(t *testing.T) {
	net := NewNetwork()
	var rcvd [][]byte
	net.AddNode("tx", nil)
	net.AddNode("rx", HandlerFunc(func(_ *Network, _ *Node, _ int, data []byte) {
		rcvd = append(rcvd, append([]byte(nil), data...))
	}))
	link := net.MustConnect("tx", 0, "rx", 0, 0, 0)
	tx := net.Node("tx")

	r, err := NewReorderer(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.SetTap("rx", r.Tap); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(tx, 0, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run()
	if len(rcvd) != 0 || !r.Holding() {
		t.Fatalf("packet 1 must sit in the held slot (rcvd=%v)", rcvd)
	}

	// Link teardown: clear the tap and close the reorderer.
	if err := link.SetTap("rx", nil); err != nil {
		t.Fatal(err)
	}
	if !r.Close() {
		t.Fatal("Close did not drain the held slot")
	}

	// The link is re-tapped with the same (now closed) reorderer — e.g. a
	// chaos schedule that re-applies its stored tap set after healing.
	if err := link.SetTap("rx", r.Tap); err != nil {
		t.Fatal(err)
	}
	for b := byte(10); b < 13; b++ {
		if err := net.Send(tx, 0, []byte{b}, 0); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run()
	want := [][]byte{{10}, {11}, {12}}
	if len(rcvd) != len(want) {
		t.Fatalf("received %v, want %v", rcvd, want)
	}
	for i := range want {
		if !bytes.Equal(rcvd[i], want[i]) {
			t.Fatalf("received %v, want %v (stale held packet leaked?)", rcvd, want)
		}
	}
}

// TestLinkFlapTapDeterministic checks the flap schedule replays from the
// seed: two taps with equal arguments produce identical pass/drop
// patterns, the pattern alternates bounded runs, and a different seed
// yields a different schedule.
func TestLinkFlapTapDeterministic(t *testing.T) {
	const n = 2000
	pattern := func(seed uint64) []bool {
		tap := LinkFlapTap(7, 4, seed)
		out := make([]bool, n)
		for i := range out {
			out[i] = tap([]byte{1}) != nil
		}
		return out
	}
	p1, p2 := pattern(42), pattern(42)
	passed, dropped := 0, 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("flap schedule diverged at packet %d under equal seeds", i)
		}
		if p1[i] {
			passed++
		} else {
			dropped++
		}
	}
	if passed == 0 || dropped == 0 {
		t.Fatalf("degenerate flap schedule: %d passed, %d dropped", passed, dropped)
	}
	// Run lengths stay inside the configured phase bounds.
	run, up := 1, p1[0]
	for i := 1; i < len(p1); i++ {
		if p1[i] == up {
			run++
			continue
		}
		if up && run > 7 {
			t.Fatalf("up-run of %d exceeds maxUp=7", run)
		}
		if !up && run > 4 {
			t.Fatalf("down-run of %d exceeds maxDown=4", run)
		}
		run, up = 1, p1[i]
	}
	other := pattern(43)
	same := true
	for i := range p1 {
		if p1[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the same flap schedule")
	}
}

// TestLinkFlapTapComposable chains a flap tap with a corrupt tap: packets
// dropped by the flap short-circuit the chain, surviving packets still
// pass through the corruption stage.
func TestLinkFlapTapComposable(t *testing.T) {
	chain := ChainTaps(LinkFlapTap(3, 3, 9), CorruptTap(1, 10))
	in := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	delivered, corrupted := 0, 0
	for i := 0; i < 100; i++ {
		out := chain(in)
		if out == nil {
			continue
		}
		delivered++
		if !bytes.Equal(out, in) {
			corrupted++
		}
	}
	if delivered == 0 {
		t.Fatal("flap chain never delivered")
	}
	if corrupted != delivered {
		t.Errorf("corrupt stage saw %d of %d delivered packets", corrupted, delivered)
	}
}

func TestLinkFlapTapValidation(t *testing.T) {
	if _, err := NewLinkFlapTap(0, 3, 1); err == nil {
		t.Error("maxUp=0 accepted")
	}
	if _, err := NewLinkFlapTap(3, 0, 1); err == nil {
		t.Error("maxDown=0 accepted")
	}
}
