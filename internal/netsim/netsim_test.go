package netsim

import (
	"math"
	"testing"
	"time"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30*time.Microsecond, func() { order = append(order, 3) })
	s.At(10*time.Microsecond, func() { order = append(order, 1) })
	s.At(20*time.Microsecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30*time.Microsecond {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSimTieBreakFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events out of FIFO order: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestSimPastEventClamps(t *testing.T) {
	s := NewSim()
	s.At(time.Second, func() {
		s.At(time.Millisecond, func() {
			if s.Now() < time.Second {
				t.Error("past-scheduled event ran before now")
			}
		})
	})
	s.Run()
}

func collect(dst *[][]byte) Handler {
	return HandlerFunc(func(_ *Network, _ *Node, _ int, data []byte) {
		*dst = append(*dst, data)
	})
}

func TestNetworkDelivery(t *testing.T) {
	n := NewNetwork()
	var got [][]byte
	n.AddNode("a", nil)
	n.AddNode("b", collect(&got))
	n.MustConnect("a", 1, "b", 1, 5*time.Microsecond, 0)
	if err := n.Send(n.Node("a"), 1, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("got %v", got)
	}
	if n.Sim.Now() != 5*time.Microsecond {
		t.Errorf("delivery time %v, want 5µs", n.Sim.Now())
	}
}

func TestNetworkSendCopiesData(t *testing.T) {
	n := NewNetwork()
	var got [][]byte
	n.AddNode("a", nil)
	n.AddNode("b", collect(&got))
	n.MustConnect("a", 1, "b", 1, 0, 0)
	buf := []byte{1, 2, 3}
	if err := n.Send(n.Node("a"), 1, buf, 0); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender reuses its buffer
	n.Sim.Run()
	if got[0][0] != 1 {
		t.Error("in-flight packet aliases the sender's buffer")
	}
}

func TestNetworkSerializationAndQueueing(t *testing.T) {
	n := NewNetwork()
	var arrivals []time.Duration
	n.AddNode("a", nil)
	n.AddNode("b", HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {
		arrivals = append(arrivals, n.Sim.Now())
	}))
	// 8 Kbit/s: a 1000-byte packet takes 1 s to serialize.
	n.MustConnect("a", 1, "b", 1, 0, 8000)
	pkt := make([]byte, 1000)
	if err := n.Send(n.Node("a"), 1, pkt, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(n.Node("a"), 1, pkt, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != time.Second {
		t.Errorf("first arrival %v, want 1s", arrivals[0])
	}
	if arrivals[1] != 2*time.Second {
		t.Errorf("second arrival %v, want 2s (FIFO queueing)", arrivals[1])
	}
}

func TestNetworkTapRewriteAndDrop(t *testing.T) {
	n := NewNetwork()
	var got [][]byte
	n.AddNode("a", nil)
	n.AddNode("b", collect(&got))
	l := n.MustConnect("a", 1, "b", 1, 0, 0)

	// MitM rewriting the first byte on the way into b.
	if err := l.SetTap("b", func(d []byte) []byte {
		d[0] = 0xEE
		return d
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(n.Node("a"), 1, []byte{1, 2}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if got[0][0] != 0xEE {
		t.Error("tap rewrite not observed")
	}

	// Dropping tap.
	if err := l.SetTap("b", func(d []byte) []byte { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(n.Node("a"), 1, []byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(got) != 1 {
		t.Error("dropped packet was delivered")
	}

	if err := l.SetTap("nosuch", nil); err == nil {
		t.Error("expected error for unknown tap node")
	}
}

func TestNetworkTapDirectionality(t *testing.T) {
	n := NewNetwork()
	var atA, atB [][]byte
	n.AddNode("a", collect(&atA))
	n.AddNode("b", collect(&atB))
	l := n.MustConnect("a", 1, "b", 1, 0, 0)
	if err := l.SetTap("b", func(d []byte) []byte { d[0] = 0xFF; return d }); err != nil {
		t.Fatal(err)
	}
	// b -> a direction must be untouched.
	if err := n.Send(n.Node("b"), 1, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if atA[0][0] != 1 {
		t.Error("tap toward b affected the b->a direction")
	}
}

func TestNetworkUtilization(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", nil)
	n.AddNode("b", nil)
	l := n.MustConnect("a", 1, "b", 1, 0, 1e6) // 1 Mbit/s
	// Push ~0.5 Mbit/s for a while: 125 bytes every 2 ms.
	for i := 0; i < 50; i++ {
		i := i
		n.Sim.At(time.Duration(i)*2*time.Millisecond, func() {
			_ = n.Send(n.Node("a"), 1, make([]byte, 125), 0)
			_ = i
		})
	}
	n.Sim.Run()
	u, err := l.Utilization("a")
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.2 || u > 0.9 {
		t.Errorf("utilization = %.3f, want around 0.5", u)
	}
	ub, err := l.Utilization("b")
	if err != nil {
		t.Fatal(err)
	}
	if ub != 0 {
		t.Errorf("reverse direction utilization = %f, want 0", ub)
	}
	bytes, pkts, err := l.TxStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 50*125 || pkts != 50 {
		t.Errorf("txstats = %d bytes %d pkts", bytes, pkts)
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", nil)
	if _, err := n.Connect("a", 1, "ghost", 1, 0, 0); err == nil {
		t.Error("expected unknown-node error")
	}
	n.AddNode("b", nil)
	if _, err := n.Connect("a", 1, "b", 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("a", 1, "b", 2, 0, 0); err == nil {
		t.Error("expected port-in-use error")
	}
	if err := n.Send(n.Node("a"), 99, []byte{1}, 0); err == nil {
		t.Error("expected unconnected-port error")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate node must panic")
		}
	}()
	n.AddNode("a", nil)
}

func TestLinkBetween(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", nil)
	n.AddNode("b", nil)
	n.AddNode("c", nil)
	n.MustConnect("a", 1, "b", 1, 0, 0)
	if n.LinkBetween("a", "b") == nil || n.LinkBetween("b", "a") == nil {
		t.Error("LinkBetween failed for connected pair")
	}
	if n.LinkBetween("a", "c") != nil {
		t.Error("LinkBetween found a phantom link")
	}
}

func TestLossTapDeterministicRate(t *testing.T) {
	tap := LossTap(0.3, 42)
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if tap([]byte{1}) == nil {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("drop fraction %.3f, want ~0.30", frac)
	}
	// Same seed, same stream.
	a, b := LossTap(0.5, 7), LossTap(0.5, 7)
	for i := 0; i < 100; i++ {
		ra, rb := a([]byte{1}), b([]byte{1})
		if (ra == nil) != (rb == nil) {
			t.Fatal("loss streams diverge for identical seeds")
		}
	}
	if never := LossTap(0, 1); never([]byte{1}) == nil {
		t.Error("rate 0 dropped a packet")
	}
	if always := LossTap(1, 1); always([]byte{1}) != nil {
		t.Error("rate 1 passed a packet")
	}
}

func TestCorruptTapFlipsOneBit(t *testing.T) {
	tap := CorruptTap(1, 9)
	orig := []byte{0, 0, 0, 0}
	data := append([]byte(nil), orig...)
	out := tap(data)
	diffBits := 0
	for i := range out {
		x := out[i] ^ orig[i]
		for x != 0 {
			diffBits += int(x & 1)
			x >>= 1
		}
	}
	if diffBits != 1 {
		t.Fatalf("corrupted %d bits, want exactly 1", diffBits)
	}
	// Every 3rd packet only.
	tap3 := CorruptTap(3, 9)
	touched := 0
	for i := 0; i < 9; i++ {
		if out := tap3([]byte{0}); out[0] != 0 {
			touched++
		}
	}
	if touched != 3 {
		t.Errorf("touched %d of 9, want 3", touched)
	}
}

// A corrupting tap must never mutate the caller's buffer: a sender that
// retransmits the same bytes (the controller's KMP retry path) would
// otherwise resend the corrupted copy forever.
func TestCorruptTapDoesNotMutateCaller(t *testing.T) {
	tap := CorruptTap(1, 9)
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	data := append([]byte(nil), orig...)
	out := tap(data)
	if string(data) != string(orig) {
		t.Fatalf("caller's buffer mutated: %x -> %x", orig, data)
	}
	if string(out) == string(orig) {
		t.Fatal("returned packet was not corrupted")
	}
	// A retransmission of the same (pristine) buffer sends pristine bytes.
	again := append([]byte(nil), orig...)
	tap(again)
	if string(again) != string(orig) {
		t.Fatalf("retransmitted buffer mutated: %x -> %x", orig, again)
	}
}

func TestFaultTapValidation(t *testing.T) {
	bad := []float64{math.NaN(), -0.1, 1.1, math.Inf(1), math.Inf(-1)}
	for _, rate := range bad {
		if _, err := NewLossTap(rate, 1); err == nil {
			t.Errorf("NewLossTap(%v) accepted an invalid rate", rate)
		}
	}
	for _, rate := range []float64{0, 0.5, 1} {
		if _, err := NewLossTap(rate, 1); err != nil {
			t.Errorf("NewLossTap(%v): %v", rate, err)
		}
	}
	for _, n := range []int{0, -1} {
		if _, err := NewCorruptTap(n, 1); err == nil {
			t.Errorf("NewCorruptTap(%d) accepted an invalid period", n)
		}
	}
	if _, err := NewCorruptTap(1, 1); err != nil {
		t.Errorf("NewCorruptTap(1): %v", err)
	}
	// The panicking constructors reject invalid configs loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("LossTap(NaN) did not panic")
			}
		}()
		LossTap(math.NaN(), 1)
	}()
}

func TestSimAdvance(t *testing.T) {
	s := NewSim()
	fired := false
	s.After(5*time.Microsecond, func() { fired = true })
	s.Advance(3 * time.Microsecond)
	if fired || s.Now() != 3*time.Microsecond {
		t.Fatalf("Advance(3us): fired=%v now=%v", fired, s.Now())
	}
	s.Advance(3 * time.Microsecond)
	if !fired || s.Now() != 6*time.Microsecond {
		t.Fatalf("Advance past event: fired=%v now=%v", fired, s.Now())
	}
}

func TestChainTaps(t *testing.T) {
	seen := 0
	counter := func(d []byte) []byte { seen++; return d }
	drop := func(d []byte) []byte { return nil }
	chained := ChainTaps(counter, nil, drop, counter)
	if chained([]byte{1}) != nil {
		t.Fatal("drop in chain should short-circuit")
	}
	if seen != 1 {
		t.Fatalf("taps after a drop ran: seen=%d", seen)
	}
}

func TestLossyLinkDelivery(t *testing.T) {
	n := NewNetwork()
	var got int
	n.AddNode("a", nil)
	n.AddNode("b", HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) { got++ }))
	l := n.MustConnect("a", 1, "b", 1, 0, 0)
	if err := l.SetTap("b", LossTap(0.5, 99)); err != nil {
		t.Fatal(err)
	}
	const sent = 2000
	for i := 0; i < sent; i++ {
		if err := n.Send(n.Node("a"), 1, []byte{1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Sim.Run()
	if got < sent*4/10 || got > sent*6/10 {
		t.Errorf("delivered %d of %d over a 50%% lossy link", got, sent)
	}
}

// TestPartitionAndHeal splits a four-node line a-b-c-d at the {a,b}
// boundary: only the b-c link is cut, traffic inside each side still
// flows, Partition is idempotent for already-down links, and Heal
// restores connectivity.
func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	var atC, atB [][]byte
	n.AddNode("a", nil)
	n.AddNode("b", collect(&atB))
	n.AddNode("c", collect(&atC))
	n.AddNode("d", nil)
	n.MustConnect("a", 1, "b", 1, time.Microsecond, 0)
	n.MustConnect("b", 2, "c", 1, time.Microsecond, 0)
	n.MustConnect("c", 2, "d", 1, time.Microsecond, 0)

	cut := n.Partition("a", "b")
	if len(cut) != 1 {
		t.Fatalf("partition cut %d links, want 1 (b-c)", len(cut))
	}
	if x, y := cut[0].Ends(); !(x == "b" && y == "c") && !(x == "c" && y == "b") {
		t.Fatalf("partition cut %s-%s, want b-c", x, y)
	}
	// Overlapping partition must not claim the already-down link again.
	if again := n.Partition("a", "b"); len(again) != 0 {
		t.Fatalf("re-partition re-cut %d links", len(again))
	}
	if err := n.Send(n.Node("b"), 2, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(n.Node("a"), 1, []byte{2}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(atC) != 0 {
		t.Error("packet crossed a partitioned link")
	}
	if len(atB) != 1 {
		t.Errorf("intra-group packet lost: b got %d", len(atB))
	}

	if healed := n.Heal(); healed != 1 {
		t.Fatalf("healed %d links, want 1", healed)
	}
	if err := n.Send(n.Node("b"), 2, []byte{3}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(atC) != 1 {
		t.Error("healed link did not deliver")
	}
}

// TestSetDownCutsInFlightPackets models a fiber cut: a packet already in
// flight when the link goes down is lost, and user taps stay installed
// across the down/up cycle.
func TestSetDownCutsInFlightPackets(t *testing.T) {
	n := NewNetwork()
	var got [][]byte
	n.AddNode("a", nil)
	n.AddNode("b", collect(&got))
	l := n.MustConnect("a", 1, "b", 1, 10*time.Microsecond, 0)
	taps := 0
	if err := l.SetTap("b", func(d []byte) []byte { taps++; return d }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(n.Node("a"), 1, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.At(5*time.Microsecond, func() { l.SetDown(true) })
	n.Sim.Run()
	if len(got) != 0 || taps != 0 {
		t.Fatalf("in-flight packet survived the cut (delivered=%d taps=%d)", len(got), taps)
	}
	if !l.Down() {
		t.Error("Down() = false after SetDown(true)")
	}
	l.SetDown(false)
	if err := n.Send(n.Node("a"), 1, []byte{2}, 0); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if len(got) != 1 || taps != 1 {
		t.Errorf("restored link: delivered=%d taps=%d, want 1/1", len(got), taps)
	}
}
