package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSend exercises the parallel-safe scheduling surface: many
// goroutines (standing in for the switch's ingress workers) call Send and
// After concurrently while the main goroutine drives the event loop and
// reads link stats. Run under -race (make check does) this pins the locking
// discipline in Sim and Link.
func TestConcurrentSend(t *testing.T) {
	n := NewNetwork()
	var delivered atomic.Uint64
	n.AddNode("a", nil)
	n.AddNode("b", HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {
		delivered.Add(1)
	}))
	l := n.MustConnect("a", 0, "b", 0, 10*time.Microsecond, 1e9)
	src := n.Node("a")

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			buf := []byte{byte(w), 0, 0}
			for i := 0; i < perWorker; i++ {
				buf[1], buf[2] = byte(i>>8), byte(i)
				if err := n.Send(src, 0, buf, time.Duration(i)*time.Nanosecond); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				n.Sim.After(time.Microsecond, func() {})
				_ = n.Sim.Now()
				if _, _, err := l.TxStats("a"); err != nil {
					t.Errorf("txstats: %v", err)
					return
				}
				if _, err := l.Utilization("a"); err != nil {
					t.Errorf("utilization: %v", err)
					return
				}
			}
		}(w)
	}
	close(start)

	// Drive the loop while senders are still scheduling: drain repeatedly
	// until the senders are done and the queue is empty.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	for {
		n.Sim.Run()
		select {
		case <-doneCh:
		default:
			continue
		}
		n.Sim.Run() // drain anything scheduled after the last drain
		break
	}

	if got, want := delivered.Load(), uint64(workers*perWorker); got != want {
		t.Fatalf("delivered %d packets, want %d", got, want)
	}
	bytes, pkts, err := l.TxStats("a")
	if err != nil {
		t.Fatalf("txstats: %v", err)
	}
	if pkts != uint64(workers*perWorker) || bytes != 3*pkts {
		t.Fatalf("txstats = %d bytes / %d pkts, want %d / %d",
			bytes, pkts, 3*uint64(workers*perWorker), workers*perWorker)
	}
}

// TestConcurrentSetDown races administrative link cuts against senders.
func TestConcurrentSetDown(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", nil)
	n.AddNode("b", HandlerFunc(func(_ *Network, _ *Node, _ int, _ []byte) {}))
	l := n.MustConnect("a", 0, "b", 0, time.Microsecond, 0)
	src := n.Node("a")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = n.Send(src, 0, []byte{1}, 0)
				l.SetDown(i%2 == 0)
				_ = l.Down()
			}
		}()
	}
	wg.Wait()
	l.SetDown(false)
	n.Sim.Run()
}
