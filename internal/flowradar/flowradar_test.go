package flowradar

import (
	"testing"

	"p4auth/internal/crypto"
)

// load records a deterministic workload: flows 1..n with flow f sending
// (f%13)+1 packets. Returns the ground truth.
func load(t *testing.T, s *System, n int) map[uint32]uint32 {
	t.Helper()
	truth := make(map[uint32]uint32, n)
	for f := uint32(1); f <= uint32(n); f++ {
		pkts := f%13 + 1
		truth[f] = pkts
		for i := uint32(0); i < pkts; i++ {
			if err := s.Packet(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	return truth
}

func TestDecodeRecoversExactCounts(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	truth := load(t, s, 200)
	decoded, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(truth) {
		t.Fatalf("decoded %d flows, want %d", len(decoded), len(truth))
	}
	for f, want := range truth {
		if decoded[f] != want {
			t.Errorf("flow %d: decoded %d, want %d", f, decoded[f], want)
		}
	}
	if s.TamperedReads != 0 {
		t.Errorf("clean decode flagged %d reads", s.TamperedReads)
	}
}

func TestInterleavedArrivalsStillDecode(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	// Packets interleave across flows (first-packet detection must be
	// order-independent).
	rng := crypto.NewSeededRand(5)
	truth := make(map[uint32]uint32)
	for i := 0; i < 800; i++ {
		f := uint32(rng.Uint64()%100) + 1
		truth[f]++
		if err := s.Packet(f); err != nil {
			t.Fatal(err)
		}
	}
	decoded, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range truth {
		if decoded[f] != want {
			t.Errorf("flow %d: decoded %d, want %d", f, decoded[f], want)
		}
	}
}

func TestExportDeflaterPoisonsDecodeWithoutP4Auth(t *testing.T) {
	s, err := New(DefaultParams(false))
	if err != nil {
		t.Fatal(err)
	}
	truth := load(t, s, 150)
	if err := s.InstallExportDeflater(); err != nil {
		t.Fatal(err)
	}
	decoded, err := s.Decode()
	// Either the peel fails outright (corrupted counts go inconsistent) or
	// the counts are wrong — both are poisoned analyses.
	if err == nil {
		wrong := 0
		for f, want := range truth {
			if decoded[f] != want {
				wrong++
			}
		}
		if wrong < len(truth)/2 {
			t.Fatalf("only %d/%d flows mis-decoded; attack ineffective", wrong, len(truth))
		}
	}
	if s.TamperedReads != 0 {
		t.Error("unprotected system claimed detection")
	}
}

func TestP4AuthFallsBackToDriverExport(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	truth := load(t, s, 150)
	if err := s.InstallExportDeflater(); err != nil {
		t.Fatal(err)
	}
	decoded, err := s.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if s.TamperedReads == 0 {
		t.Fatal("tampered export not detected")
	}
	for f, want := range truth {
		if decoded[f] != want {
			t.Errorf("flow %d: decoded %d, want %d", f, decoded[f], want)
		}
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}

func TestOverloadReportsIncompleteDecode(t *testing.T) {
	p := DefaultParams(true)
	p.Cells = 64 // far too small for 300 flows
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for f := uint32(1); f <= 300; f++ {
		if err := s.Packet(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Decode(); err == nil {
		t.Fatal("overloaded table should fail to fully decode")
	}
}
