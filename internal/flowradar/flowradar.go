// Package flowradar is a full-pipeline miniature of FlowRadar (Li et al.,
// NSDI 2016), the encoded-flowset measurement system of the paper's
// Table I. Each packet updates an invertible-Bloom-lookup-style counting
// table held in registers — per cell: a flow count, an XOR fold of the
// flow identifiers, and a packet count — plus a test-and-set flow filter
// that makes flow-level fields update only on a flow's first packet. The
// controller periodically exports the cells over C-DP and decodes the full
// per-flow packet counts by peeling; an adversary rewriting the export
// "poisons the loss analysis" (Table I), and P4Auth detects it.
package flowradar

import (
	"errors"
	"fmt"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// PTypeFlow tags measured packets.
const PTypeFlow = 0xFA

// Register names.
const (
	RegFlowXOR = "fr_flowxor"
	RegFlowCnt = "fr_flowcnt"
	RegPktCnt  = "fr_pktcnt"
)

const filterName = "fr_seen"

// Params configures the encoded flowset.
type Params struct {
	// Cells is the counting-table size (power of two).
	Cells int
	// CellHashes is how many cells each flow maps to.
	CellHashes int
	// FilterHashes/FilterBits size the test-and-set flow filter.
	FilterHashes int
	FilterBits   int
	Secure       bool
	// Name identifies the switch at its controller; empty means the
	// historical "radar". Fleet deployments run one instance per pod and
	// need distinct names within a shared controller namespace.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (p Params) name() string {
	if p.Name == "" {
		return "radar"
	}
	return p.Name
}

// DefaultParams decodes a few hundred flows comfortably.
func DefaultParams(secure bool) Params {
	return Params{Cells: 1024, CellHashes: 3, FilterHashes: 3, FilterBits: 8192, Secure: secure}
}

// System is a running FlowRadar deployment.
type System struct {
	Params Params
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg core.Config

	prf crypto.KeyedCRC32
	// TamperedReads counts rejected export reads.
	TamperedReads int
}

var flowDef = &pisa.HeaderDef{Name: "frf", Fields: []pisa.FieldDef{
	{Name: "flow", Width: 32},
}}

func cellSeed(h int) uint64   { return 0xF10D_0000 + uint64(h)*0x9E37 }
func filterSeed(h int) uint64 { return 0x5EEA_0000 + uint64(h)*0x61C9 }

func buildProgram(p Params) (*pisa.Program, core.Config, error) {
	if p.Cells&(p.Cells-1) != 0 || p.FilterBits&(p.FilterBits-1) != 0 {
		return nil, core.Config{}, fmt.Errorf("flowradar: cells and filter bits must be powers of two")
	}
	prog := &pisa.Program{
		Name:    "flowradar",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), flowDef},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeFlow: "fr_flow"}},
			{Name: "fr_flow", Extract: "frf"},
		},
		DeparseOrder: []string{core.HdrPType, "frf"},
	}
	m := func(f string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, f) }
	flow := pisa.R(pisa.F("frf", "flow"))

	// Filter rows (test-and-set via RMW) and counting-table registers.
	var meta []pisa.FieldDef
	for h := 0; h < p.FilterHashes; h++ {
		prog.Registers = append(prog.Registers, &pisa.RegisterDef{
			Name: fmt.Sprintf("%s_h%d", filterName, h), Width: 1, Entries: p.FilterBits,
		})
		meta = append(meta,
			pisa.FieldDef{Name: fmt.Sprintf("fr_fidx%d", h), Width: 32},
			pisa.FieldDef{Name: fmt.Sprintf("fr_fold%d", h), Width: 8},
		)
	}
	for _, reg := range []struct {
		name  string
		width int
	}{{RegFlowXOR, 32}, {RegFlowCnt, 32}, {RegPktCnt, 32}} {
		prog.Registers = append(prog.Registers, &pisa.RegisterDef{
			Name: reg.name, Width: reg.width, Entries: p.Cells,
		})
	}
	for h := 0; h < p.CellHashes; h++ {
		meta = append(meta, pisa.FieldDef{Name: fmt.Sprintf("fr_cidx%d", h), Width: 32})
	}
	meta = append(meta, pisa.FieldDef{Name: "fr_new", Width: 8}, pisa.FieldDef{Name: "fr_scr", Width: 32})
	prog.Metadata = append(prog.Metadata, meta...)

	var ops []pisa.Op
	// Flow filter: test-and-set all rows in single accesses; the flow is
	// new iff any row bit was previously clear.
	ops = append(ops, pisa.Set(m("fr_new"), pisa.C(0)))
	for h := 0; h < p.FilterHashes; h++ {
		idx := m(fmt.Sprintf("fr_fidx%d", h))
		ops = append(ops,
			pisa.KeyedHash(idx, pisa.HashCRC32, pisa.C(filterSeed(h)), flow),
			pisa.And(idx, pisa.R(idx), pisa.C(uint64(p.FilterBits-1))),
			pisa.RegRMW(m(fmt.Sprintf("fr_fold%d", h)), fmt.Sprintf("%s_h%d", filterName, h),
				pisa.R(idx), pisa.RMWWrite, pisa.C(1)),
			pisa.If(pisa.Eq(pisa.R(m(fmt.Sprintf("fr_fold%d", h))), pisa.C(0)), []pisa.Op{
				pisa.Set(m("fr_new"), pisa.C(1)),
			}),
		)
	}
	// Counting table: cell indices, then per-cell updates. The paper's
	// BMv2-style layout reads/writes each register once.
	for h := 0; h < p.CellHashes; h++ {
		idx := m(fmt.Sprintf("fr_cidx%d", h))
		ops = append(ops,
			pisa.KeyedHash(idx, pisa.HashCRC32, pisa.C(cellSeed(h)), flow),
			pisa.And(idx, pisa.R(idx), pisa.C(uint64(p.Cells-1))),
		)
	}
	// Flow-level fields update only for new flows. One register per cell
	// array would be touched CellHashes times per packet, so each hash
	// position gets its own bank on hardware; the BMv2 target this runs on
	// (as in the paper) permits the shared layout.
	for h := 0; h < p.CellHashes; h++ {
		idx := pisa.R(m(fmt.Sprintf("fr_cidx%d", h)))
		ops = append(ops,
			pisa.If(pisa.Eq(pisa.R(m("fr_new")), pisa.C(1)), []pisa.Op{
				pisa.RegRMW(m("fr_scr"), RegFlowXOR, idx, pisa.RMWXor, flow),
				pisa.RegRMW(m("fr_scr"), RegFlowCnt, idx, pisa.RMWAdd, pisa.C(1)),
			}),
			pisa.RegRMW(m("fr_scr"), RegPktCnt, idx, pisa.RMWAdd, pisa.C(1)),
		)
	}
	ops = append(ops, pisa.Forward(pisa.C(2)))
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("frf"), ops)}

	cfg := core.DefaultConfig(4, core.DigestHalfSipHash)
	cfg.Insecure = !p.Secure
	if err := core.AddToProgram(prog, cfg, core.Integration{
		Exposed: []string{RegFlowXOR, RegFlowCnt, RegPktCnt},
	}); err != nil {
		return nil, cfg, err
	}
	return prog, cfg, nil
}

// New deploys the measurement switch (BMv2 profile: the shared cell
// layout needs multiple accesses per register array).
func New(p Params) (*System, error) {
	prog, cfg, err := buildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile(), pisa.WithRandom(crypto.NewSeededRand(0xF1A+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	if err := core.InstallRegMap(sw, host.Info, []string{RegFlowXOR, RegFlowCnt, RegPktCnt}); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0xF1B+p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &System{Params: p, Host: host, Ctrl: ctrl, Cfg: cfg, prf: crypto.NewKeyedCRC32()}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Packet records one packet of a flow.
func (s *System) Packet(flow uint32) error {
	body, err := pisa.PackHeader(flowDef, []uint64{uint64(flow)})
	if err != nil {
		return err
	}
	pkt := append([]byte{PTypeFlow}, body...)
	_, err = s.Host.NetworkPacket(1, pkt)
	return err
}

func (s *System) cellIndexes(flow uint32) []int {
	out := make([]int, s.Params.CellHashes)
	b := []byte{byte(flow >> 24), byte(flow >> 16), byte(flow >> 8), byte(flow)}
	for h := 0; h < s.Params.CellHashes; h++ {
		out[h] = int(s.prf.Sum32(cellSeed(h), b)) & (s.Params.Cells - 1)
	}
	return out
}

type cell struct {
	flowXOR uint32
	flowCnt uint32
	pktCnt  uint32
}

// export reads all cells over C-DP (the attacked report path). On tamper
// detection it returns ErrTampered wrapped.
func (s *System) export() ([]cell, error) {
	cells := make([]cell, s.Params.Cells)
	read := func(name string, i uint32) (uint64, error) {
		if s.Params.Secure {
			v, _, err := s.Ctrl.ReadRegister(s.Params.name(), name, i)
			return v, err
		}
		v, _, err := s.Ctrl.ReadRegisterInsecure(s.Params.name(), name, i)
		return v, err
	}
	for i := 0; i < s.Params.Cells; i++ {
		fx, err := read(RegFlowXOR, uint32(i))
		if err != nil {
			return nil, err
		}
		fc, err := read(RegFlowCnt, uint32(i))
		if err != nil {
			return nil, err
		}
		pc, err := read(RegPktCnt, uint32(i))
		if err != nil {
			return nil, err
		}
		cells[i] = cell{uint32(fx), uint32(fc), uint32(pc)}
	}
	return cells, nil
}

// exportDriver reads cells through the quarantined driver path.
func (s *System) exportDriver() ([]cell, error) {
	cells := make([]cell, s.Params.Cells)
	for i := 0; i < s.Params.Cells; i++ {
		fx, err := s.Host.SW.RegisterRead(RegFlowXOR, i)
		if err != nil {
			return nil, err
		}
		fc, err := s.Host.SW.RegisterRead(RegFlowCnt, i)
		if err != nil {
			return nil, err
		}
		pc, err := s.Host.SW.RegisterRead(RegPktCnt, i)
		if err != nil {
			return nil, err
		}
		cells[i] = cell{uint32(fx), uint32(fc), uint32(pc)}
	}
	return cells, nil
}

// Decode exports the encoded flowset and peels it into per-flow packet
// counts (FlowRadar SingleDecode). On tamper detection with P4Auth it
// falls back to the quarantined driver export.
func (s *System) Decode() (map[uint32]uint32, error) {
	cells, err := s.export()
	if err != nil {
		if !errors.Is(err, controller.ErrTampered) {
			return nil, err
		}
		s.TamperedReads++
		if cells, err = s.exportDriver(); err != nil {
			return nil, err
		}
	}
	return s.peel(cells)
}

func (s *System) peel(cells []cell) (map[uint32]uint32, error) {
	flows := make(map[uint32]uint32)
	for progress := true; progress; {
		progress = false
		for i := range cells {
			if cells[i].flowCnt != 1 {
				continue
			}
			flow := cells[i].flowXOR
			pkts := cells[i].pktCnt
			// A pure cell: its packet count belongs entirely to this flow.
			flows[flow] = pkts
			for _, j := range s.cellIndexes(flow) {
				cells[j].flowXOR ^= flow
				cells[j].flowCnt--
				cells[j].pktCnt -= pkts
			}
			progress = true
		}
	}
	for i := range cells {
		if cells[i].flowCnt != 0 {
			return flows, fmt.Errorf("flowradar: decode incomplete (%d residual cells) — table overloaded or export corrupted", residual(cells))
		}
	}
	return flows, nil
}

func residual(cells []cell) int {
	n := 0
	for i := range cells {
		if cells[i].flowCnt != 0 {
			n++
		}
	}
	return n
}

// InstallExportDeflater installs the paper's adversary: exported packet
// counts are scaled down, hiding loss from the downstream analysis.
func (s *System) InstallExportDeflater() error {
	ri, err := s.Host.Info.RegisterByName(RegPktCnt)
	if err != nil {
		return err
	}
	id := ri.ID
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgAck || m.Reg.RegID != id {
				return data
			}
			m.Reg.Value /= 2
			out, eerr := m.Encode()
			if eerr != nil {
				return data
			}
			return out
		},
	})
}
