// Package p4auth is a from-scratch Go reproduction of "Securing
// In-Network Traffic Control Systems with P4Auth" (DSN 2025): a key-based
// protection mechanism that authenticates and integrity-protects the
// controller-to-data-plane (C-DP) and data-plane-to-data-plane (DP-DP)
// messages that update or report programmable-switch state, with all
// checks and the key-management cryptography running inside a modeled
// PISA pipeline under Tofino-class constraints.
//
// The facade re-exports the main entry points; the implementation lives
// under internal/:
//
//   - internal/pisa — the PISA switch model (pipeline, tables, registers,
//     hash units, compiler with Table II-style resource accounting)
//   - internal/crypto — HalfSipHash, keyed CRC32, modified Diffie-Hellman,
//     the Extract-and-Expand KDF
//   - internal/core — the P4Auth protocol and its generated data plane
//   - internal/switchos — the untrusted switch software stack (the attack
//     surface)
//   - internal/controller — the controller: authenticated register I/O and
//     the key-management protocol
//   - internal/netsim, internal/hula, internal/routescout,
//     internal/systems, internal/attacker, internal/trace — the evaluation
//     substrate
//   - internal/bench — regenerates every table and figure of §IX
//
// Quick start (see examples/quickstart for the runnable version):
//
//	sw, _ := deploy.Build(deploy.SwitchSpec{Name: "s1", Ports: 4,
//	    Registers: []*pisa.RegisterDef{{Name: "lat", Width: 32, Entries: 8}}})
//	ctrl := controller.New(crypto.NewSeededRand(1))
//	ctrl.Register("s1", sw.Host, sw.Cfg, 0)
//	ctrl.LocalKeyInit("s1")                     // EAK + ADHKD, §VI
//	ctrl.WriteRegister("s1", "lat", 0, 42)      // authenticated, §V
package p4auth

import (
	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// Re-exported constructors and types for library consumers.

// NewController returns a P4Auth controller using the given randomness
// source for key-exchange secrets.
func NewController(rng crypto.RandomSource) *controller.Controller {
	return controller.New(rng)
}

// BuildSwitch assembles a ready-to-run P4Auth switch.
func BuildSwitch(spec deploy.SwitchSpec) (*deploy.Switch, error) {
	return deploy.Build(spec)
}

// DefaultConfig returns a deployable P4Auth configuration.
func DefaultConfig(ports int, kind core.DigestKind) core.Config {
	return core.DefaultConfig(ports, kind)
}

// Convenience aliases for the most commonly used types.
type (
	// Config is the per-deployment P4Auth parameter set.
	Config = core.Config
	// Controller manages switches: authenticated register I/O and KMP.
	Controller = controller.Controller
	// Switch is a deployed switch (software stack plus data plane).
	Switch = deploy.Switch
	// SwitchSpec describes a switch to build.
	SwitchSpec = deploy.SwitchSpec
	// Message is a P4Auth wire message.
	Message = core.Message
	// KeyStore is the two-version key table.
	KeyStore = core.KeyStore
	// Profile is a data-plane target profile.
	Profile = pisa.Profile
	// RegisterDef declares a data-plane register array.
	RegisterDef = pisa.RegisterDef
	// Hooks are switch-stack interposition points (the attack surface).
	Hooks = switchos.Hooks
)

// Digest algorithm kinds.
const (
	DigestHalfSipHash = core.DigestHalfSipHash
	DigestCRC32       = core.DigestCRC32
)

// Target profiles.
var (
	// TofinoProfile models the hardware target.
	TofinoProfile = pisa.TofinoProfile
	// BMv2Profile models the software reference switch.
	BMv2Profile = pisa.BMv2Profile
)

// ErrTampered is returned when a message fails authentication.
var ErrTampered = controller.ErrTampered
