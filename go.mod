module p4auth

go 1.22
