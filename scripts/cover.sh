#!/bin/sh
# Coverage floor for the trust-boundary packages: the codecs and key
# machinery (internal/core), the primitives every key derives from
# (internal/crypto), the observability layer the post-mortems depend on
# (internal/obs), and the fleet scenario harness (internal/fleet) whose
# matrix the protection claims are read off of. A drop below the floor
# means new code shipped without tests in exactly the places where
# silent breakage is unacceptable.
set -eu

cd "$(dirname "$0")/.."

FLOOR="${COVER_FLOOR:-85}"
fail=0
for pkg in ./internal/core/ ./internal/crypto/ ./internal/obs/ ./internal/fleet/; do
    line=$(go test -cover "$pkg" | tail -1)
    echo "$line"
    pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "FAIL: no coverage reported for $pkg"
        fail=1
        continue
    fi
    if [ "$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}')" != 1 ]; then
        echo "FAIL: $pkg coverage $pct% is below the $FLOOR% floor"
        fail=1
    fi
done
exit $fail
