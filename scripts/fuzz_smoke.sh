#!/bin/sh
# Fuzz smoke: run each codec fuzz target briefly (FUZZTIME per target,
# default 10s) on top of its checked-in seed corpus. This is not the
# long campaign — it catches regressions where a codec change breaks the
# round-trip property on inputs one generation of mutation away from the
# seeds. New crashers land in the package's testdata/fuzz/ and become
# permanent regression inputs. FuzzDecodeLease's in-test seeds include
# the codec edge cases (max-epoch grants, maximum-length holders, torn
# and truncated records) alongside its corpus.
set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
for entry in \
    ./internal/core/:FuzzDecodeMessage \
    ./internal/core/:FuzzMessageBufDecode \
    ./internal/core/:FuzzDecodeJournalEntry \
    ./internal/core/:FuzzDecodeJournalBatch \
    ./internal/core/:FuzzDecodeSnapshot \
    ./internal/core/:FuzzDecodeDeviceSnapshot \
    ./internal/statestore/:FuzzDecodeLease; do
    pkg="${entry%%:*}"
    target="${entry#*:}"
    echo "-- $pkg $target ($FUZZTIME)"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
done
