#!/bin/sh
# Full verification gate: build, vet, race-enabled tests. Mirrors
# `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
