#!/bin/sh
# Full verification gate: build, vet, race-enabled tests. Mirrors
# `make check` for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

# The deterministic chaos smoke runs with fixed seeds (see
# internal/netsim/chaos): controller kills and switch crashes injected
# mid-rollover, mid-register-write, and mid-port-key-init, with the
# crash-safety invariants checked after every recovery. -count=1 defeats
# the test cache so the gate always exercises it.
echo "== chaos short suite (fixed seeds)"
go test -race -count=1 -run 'TestChaosShort|TestChaosDeterminism' ./internal/netsim/chaos/

# Fabric chaos: seeded schedules of link flaps, two-way partitions, and
# one-sided port-key rollovers against the self-healing DP-DP fabric.
# Every run must reconverge to all-links-Healthy with paired port keys,
# zero forged feedback applied, degraded routing off quarantined links,
# and an exactly reconciled link_state audit trail — deterministic
# across seeds.
echo "== fabric chaos gate (flaps, partitions, one-sided rollovers)"
go test -race -count=1 -run 'TestFabricShort|TestFabricDeterminism' ./internal/netsim/chaos/

# Concurrency stress: pipelined writers vs concurrent rollovers under
# fault taps, and the sharded-switch concurrency suite. -count=1 so the
# race detector sees fresh interleavings on every gate.
echo "== concurrency stress (-race, pipelined transport + sharded switch)"
go test -race -count=1 ./internal/controller/ ./internal/pisa/

# Coverage floor for the trust-boundary packages (core, crypto, obs):
# new code in the codecs, primitives, or observability layer must come
# with tests.
echo "== coverage floor (core, crypto, obs >= 85%)"
./scripts/cover.sh

# Fuzz smoke: 10s of mutation per codec fuzz target over the checked-in
# seed corpora. A crasher found here lands in testdata/fuzz and becomes
# a permanent regression input.
echo "== fuzz smoke (wire + persistence codecs)"
./scripts/fuzz_smoke.sh

# Bench smoke: the zero-allocation hot path must still complete through
# the real benchmark harness (alloc budgets are gated by the tests above).
echo "== bench smoke (AuthenticatedWrite)"
go test -bench=BenchmarkAuthenticatedWrite -benchtime=10x -run '^$' -short .

echo "== OK"
