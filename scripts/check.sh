#!/bin/sh
# Full verification gate: build, vet, race-enabled tests, then the
# independent chaos/stress/coverage/fuzz/bench gates concurrently.
# Mirrors `make check` for environments without make.
#
# The serial prefix (build, vet, race) establishes a compiling,
# race-clean tree; everything after it only re-runs subsets with fixed
# seeds or fresh interleavings, so those gates share no state and run in
# parallel. Each gate's output is line-prefixed with its name; the
# script fails if any gate fails, after letting all of them finish.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

# Gate catalogue (name + command), run concurrently below:
#
#   chaos         deterministic crash/recovery smoke with fixed seeds
#                 (controller kills and switch crashes mid-rollover,
#                 mid-register-write, mid-port-key-init)
#   fabric-chaos  seeded link flaps, partitions, one-sided rollovers
#                 against the self-healing DP-DP fabric
#   ha-chaos      controller-kill-under-sharded-load and split-brain
#                 against the lease-fenced active/standby pair: zero
#                 forged or stale-fenced writes applied, bounded
#                 failover, reconciled audit, bit-identical traces
#   group-chaos   rolling kills across 3-5 ranked replicas, store
#                 outages against the bounded-staleness fence, and
#                 multi-way lease acquisition races: same invariants as
#                 ha-chaos plus at most one fenced-active per instant
#                 and fail-safe fencing when the grace runs out
#   matrix-chaos  the app × fault × protection survival matrix at k=4
#                 with the default seed: zero forged operations applied
#                 in every protected cell, measurable corruption in
#                 every unprotected attacked cell, trace bit-identical
#                 to the checked-in golden, determinism reruns
#   hierarchy-chaos  the two-tier control plane (per-pod shard groups +
#                 global key broker) under forged/torn broker frames,
#                 WAN latency spikes, an asymmetric partition, and a
#                 global-tier kill + election: zero forged operations
#                 applied, no cross-pod key without a fenced grant,
#                 graceful degradation on cached keys, bounded
#                 re-convergence, bit-identical traces per seed
#   stress        pipelined writers vs concurrent rollovers under fault
#                 taps, the sharded-switch suite, the sharded netsim
#                 engine, and the HA failover stress (-count=1 for
#                 fresh interleavings)
#   pisa-race     the parallel data plane (worker pool, sharded
#                 counters, batch ingress) under the race detector with
#                 fresh interleavings
#   cover         >= 85% coverage floor on core, crypto, obs
#   fuzz-smoke    10s of mutation per codec fuzz target over the
#                 checked-in seed corpora
#   bench-smoke   the zero-allocation hot path through the real
#                 benchmark harness
echo "== concurrent gates (chaos, fabric-chaos, ha-chaos, group-chaos, matrix-chaos, hierarchy-chaos, stress, pisa-race, cover, fuzz-smoke, bench-smoke)"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# run NAME CMD...: run a gate in the background, prefixing every output
# line with [NAME] and recording its exit status in $tmp/NAME.status.
run() {
    name="$1"
    shift
    {
        if "$@" 2>&1; then
            echo 0 >"$tmp/$name.status"
        else
            echo 1 >"$tmp/$name.status"
        fi
    } | sed "s/^/[$name] /" &
}

run chaos        go test -race -count=1 -run 'TestChaosShort|TestChaosDeterminism' ./internal/netsim/chaos/
run fabric-chaos go test -race -count=1 -run 'TestFabricShort|TestFabricDeterminism' ./internal/netsim/chaos/
run ha-chaos     go test -race -count=1 -run 'TestHAShort|TestHADeterminism' ./internal/netsim/chaos/
run group-chaos  go test -race -count=1 -run 'TestGroupShort|TestGroupDeterminism' ./internal/netsim/chaos/
run matrix-chaos go test -race -count=1 -run 'TestMatrixChaos|TestMatrixDeterminism' ./internal/fleet/
run hierarchy-chaos go test -race -count=1 -run 'TestHierarchyChaos|TestHierarchyDeterminism' ./internal/hierarchy/
run stress       go test -race -count=1 ./internal/controller/ ./internal/pisa/ ./internal/ha/ ./internal/netsim/
run pisa-race    go test -race -count=1 ./internal/pisa/...
run cover        ./scripts/cover.sh
run fuzz-smoke   ./scripts/fuzz_smoke.sh
run bench-smoke  go test -bench=BenchmarkAuthenticatedWrite -benchtime=10x -run '^$' -short .

wait

failed=0
for name in chaos fabric-chaos ha-chaos group-chaos matrix-chaos hierarchy-chaos stress pisa-race cover fuzz-smoke bench-smoke; do
    status="$(cat "$tmp/$name.status" 2>/dev/null || echo 1)"
    if [ "$status" != 0 ]; then
        echo "== FAILED: $name"
        failed=1
    fi
done
if [ "$failed" != 0 ]; then
    exit 1
fi

echo "== OK"
