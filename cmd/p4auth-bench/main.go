// Command p4auth-bench regenerates the paper's evaluation artifacts: every
// table and figure of §IX plus the §XI digest-width ablation.
//
// Usage:
//
//	p4auth-bench                  # run everything, in paper order
//	p4auth-bench -exp fig17       # one experiment
//	p4auth-bench -exp fig16,fig21 # a subset
//	p4auth-bench -list            # list experiment ids
//	p4auth-bench -save FILE       # write machine-readable BENCH json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"p4auth/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	save := flag.String("save", "", "write micro-bench + pipelined-throughput JSON to this file and exit")
	matrix := flag.String("matrix", "", "write the fleet survival-matrix + shard-throughput JSON to this file and exit")
	hier := flag.String("hierarchy", "", "write the hierarchical control-plane JSON (cross-pod establishment + pod writes) to this file and exit")
	flag.Parse()

	if *hier != "" {
		bj, err := bench.SaveHierarchyJSON(*hier, time.Now().UTC().Format("2006-01-02"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range bj.Hierarchy {
			fmt.Printf("hier pods=%d links=%-2d spike=%-5v %6.2f ms/link %7.1f ms total %10.0f writes/s\n",
				r.Pods, r.CrossLinks, r.WANSpike, r.EstablishMsPerLink, r.EstablishMsTotal, r.WritesPerSec)
		}
		fmt.Printf("wrote %s\n", *hier)
		return
	}

	if *matrix != "" {
		bj, err := bench.SaveMatrixJSON(*matrix, time.Now().UTC().Format("2006-01-02"), bench.DefaultMatrixOpts())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := bj.Matrix
		fmt.Printf("matrix k=%d seed=%#x: %d/%d cells survived\n", m.K, m.Seed, m.Survived, m.Total)
		for _, r := range m.Tput {
			fmt.Printf("tput %-10s k=%d shards=%d %10.0f ops/s %9.1f ms wall %6.2fx score %.2f\n",
				r.App, r.K, r.Shards, r.OpsPerSec, r.WallMs, r.Speedup, r.Score)
		}
		fmt.Printf("wrote %s\n", *matrix)
		return
	}

	if *save != "" {
		bj, err := bench.SaveBenchJSON(*save, time.Now().UTC().Format("2006-01-02"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if e := bj.Env; e != nil {
			fmt.Printf("env    GOMAXPROCS=%d NumCPU=%d %s\n", e.GoMaxProcs, e.NumCPU, e.GoVersion)
		}
		for _, m := range bj.Micro {
			fmt.Printf("%-24s %12.1f ns/op %8d B/op %6d allocs/op\n",
				m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		}
		for _, r := range bj.Fig19Pipe {
			fmt.Printf("fig19p window %-3d %12.0f req/s %8.2fx\n", r.Window, r.Tput, r.Speedup)
		}
		for _, r := range bj.Parallel {
			fmt.Printf("fig19par w%-2d window %-3d %12.0f probes/s %8.2fx lanes %6.1fx vs serial\n",
				r.Workers, r.Window, r.Tput, r.SpeedupVsW1, r.SpeedupVsFig19Serial)
		}
		if f := bj.Fleet; f != nil {
			fmt.Printf("fleet  %d switches w%-3d %12.0f writes/s (serial %.0f/s) failover %.1fms epoch %d\n",
				f.Switches, f.Window, f.WritesPerSec, f.SerialPerSec, f.FailoverMs, f.FailoverEpoch)
		}
		for _, g := range bj.Group {
			fmt.Printf("group  n=%d %d switches: rolling-kill failover %.1fms chained %d waitouts %d epoch %d\n",
				g.Replicas, g.Switches, g.FailoverMs, g.Chained, g.WaitOuts, g.Epoch)
		}
		fmt.Printf("wrote %s\n", *save)
		return
	}

	runners := bench.All()
	if *list {
		for _, r := range runners {
			fmt.Println(r.ID)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	failed := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		ran++
		rep, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(rep)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q (try -list)\n", *expFlag)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
