// Command p4auth-bench regenerates the paper's evaluation artifacts: every
// table and figure of §IX plus the §XI digest-width ablation.
//
// Usage:
//
//	p4auth-bench                  # run everything, in paper order
//	p4auth-bench -exp fig17       # one experiment
//	p4auth-bench -exp fig16,fig21 # a subset
//	p4auth-bench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p4auth/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	runners := bench.All()
	if *list {
		for _, r := range runners {
			fmt.Println(r.ID)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	failed := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		ran++
		rep, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(rep)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q (try -list)\n", *expFlag)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
