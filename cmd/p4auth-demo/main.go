// Command p4auth-demo narrates the paper's two headline attack/defence
// scenarios end to end:
//
//	p4auth-demo -scenario routescout   # Fig. 2/16: control-plane MitM
//	p4auth-demo -scenario hula         # Fig. 3/17: on-link MitM
//	p4auth-demo -scenario replay       # §VIII: replayed writeReq
//	p4auth-demo                        # all three
package main

import (
	"flag"
	"fmt"
	"os"

	"p4auth/internal/bench"
	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

func main() {
	scenario := flag.String("scenario", "", "routescout | hula | replay (default: all)")
	flag.Parse()

	demos := map[string]func() error{
		"routescout": demoRouteScout,
		"hula":       demoHula,
		"replay":     demoReplay,
	}
	order := []string{"routescout", "hula", "replay"}
	if *scenario != "" {
		fn, ok := demos[*scenario]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
			os.Exit(2)
		}
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := demos[name](); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func demoRouteScout() error {
	fmt.Println("== RouteScout under a control-plane MitM (paper Fig. 2 / Fig. 16) ==")
	fmt.Println("An attacker at the switch OS inflates path 1's reported latency so the")
	fmt.Println("controller diverts traffic to the genuinely slower path 2.")
	rep, err := bench.Fig16(bench.DefaultFig16Opts())
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func demoHula() error {
	fmt.Println("== HULA under an on-link MitM (paper Fig. 3 / Fig. 17) ==")
	fmt.Println("An attacker on the S4-S1 link forges probeUtil so S1 believes the path")
	fmt.Println("via S4 is idle. With P4Auth each probe replica is signed with its")
	fmt.Println("egress-port key in the egress pipeline and verified at S1's ingress.")
	rep, err := bench.Fig17(bench.DefaultFig17Opts())
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func demoReplay() error {
	fmt.Println("== Replay defence (paper §VIII) ==")
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:  "edge",
		Ports: 4,
		Registers: []*pisa.RegisterDef{
			{Name: "split", Width: 32, Entries: 1},
		},
	})
	if err != nil {
		return err
	}
	c := controller.New(crypto.NewSeededRand(0xDE40))
	if err := c.Register("edge", sw.Host, sw.Cfg, 0); err != nil {
		return err
	}
	if _, err := c.LocalKeyInit("edge"); err != nil {
		return err
	}
	fmt.Println("controller: established K_local via EAK + ADHKD")

	if _, err := c.WriteRegister("edge", "split", 0, 128); err != nil {
		return err
	}
	fmt.Println("controller: wrote split=128 (authenticated writeReq)")

	// The attacker records the valid message and replays it after the
	// operator changes the split.
	recorded := recordWrite(sw, c)
	if _, err := c.WriteRegister("edge", "split", 0, 200); err != nil {
		return err
	}
	fmt.Println("controller: wrote split=200")

	res, err := sw.Host.PacketOut(recorded)
	if err != nil {
		return err
	}
	for _, pin := range res.PacketIns {
		if m, err := core.DecodeMessage(pin); err == nil && m.HdrType == core.HdrAlert {
			fmt.Printf("data plane: replay detected -> alert (reason %d)\n", m.MsgType)
		}
	}
	v, _ := sw.Host.SW.RegisterRead("split", 0)
	fmt.Printf("data plane: split register = %d (replayed 128 was rejected)\n", v)
	return nil
}

// recordWrite captures the wire bytes of an authenticated writeReq via a
// passive interposer at the switch stack — what the paper's adversary
// records before replaying.
func recordWrite(sw *deploy.Switch, c *controller.Controller) []byte {
	var captured []byte
	_ = sw.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			captured = append([]byte(nil), data...)
			return data
		},
	})
	_, _ = c.WriteRegister("edge", "split", 0, 128)
	_ = sw.Host.Install(switchos.BoundaryAgentSDK, nil)
	return captured
}
