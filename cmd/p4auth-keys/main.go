// Command p4auth-keys inspects the key-management protocol on a small
// fabric: it builds m switches with n links, runs fleet-wide key
// initialization and a rollover, and prints per-operation timings and
// message counts (the data behind Fig. 20 and Table III).
//
// Usage:
//
//	p4auth-keys                 # 4 switches in a ring
//	p4auth-keys -m 25 -n 50     # the paper's per-controller domain
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

func main() {
	m := flag.Int("m", 4, "switches")
	n := flag.Int("n", 4, "links")
	flag.Parse()
	if err := run(*m, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(m, n int) error {
	c := controller.New(crypto.NewSeededRand(uint64(time.Now().UnixNano())))
	var names []string
	nextPort := make([]int, m)
	for i := 0; i < m; i++ {
		name := fmt.Sprintf("sw%02d", i)
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 8,
			Registers: []*pisa.RegisterDef{
				{Name: "state", Width: 64, Entries: 16},
			},
			RandSeed: uint64(0xA110 + i),
		})
		if err != nil {
			return err
		}
		if err := c.Register(name, sw.Host, sw.Cfg, 200*time.Microsecond); err != nil {
			return err
		}
		names = append(names, name)
		nextPort[i] = 1
	}
	added := 0
	for stride := 1; added < n && stride < m; stride++ {
		for i := 0; i < m && added < n; i++ {
			j := (i + stride) % m
			if nextPort[i] > 8 || nextPort[j] > 8 {
				continue
			}
			if err := c.ConnectSwitches(names[i], nextPort[i], names[j], nextPort[j], 20*time.Microsecond); err != nil {
				return err
			}
			nextPort[i]++
			nextPort[j]++
			added++
		}
	}
	if added != n {
		return fmt.Errorf("placed %d of %d links (8 ports per switch)", added, n)
	}

	fmt.Printf("fabric: %d switches, %d links\n\n", m, n)

	init, err := c.InitAllKeys()
	if err != nil {
		return err
	}
	fmt.Printf("key initialization: %4d messages  %6d bytes  serial %v  (formula 4m+5n = %d)\n",
		init.Messages, init.Bytes, init.RTT, 4*m+5*n)

	upd, err := c.UpdateAllKeys()
	if err != nil {
		return err
	}
	fmt.Printf("key rollover:       %4d messages  %6d bytes  serial %v  (formula 2m+3n = %d)\n",
		upd.Messages, upd.Bytes, upd.RTT, 2*m+3*n)

	// Spot check: one authenticated write per switch under the new keys.
	for _, name := range names {
		if _, err := c.WriteRegister(name, "state", 0, 0xA11F1E1D); err != nil {
			return fmt.Errorf("%s: post-rollover write failed: %w", name, err)
		}
	}
	fmt.Printf("\npost-rollover authenticated writes: %d/%d ok\n", len(names), len(names))
	return nil
}
