package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p4auth/internal/statestore"
)

// The ha subcommand's reference run must walk the whole failover story:
// bootstrap grant, standby fenced out, pre-expiry takeover refused,
// warm promotion at epoch 2, and a reconciled audit trail.
func TestRunHAReference(t *testing.T) {
	var sb strings.Builder
	if err := runHA(nil, &sb); err != nil {
		t.Fatalf("runHA: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"lease holder=ctl-a epoch=1",
		"standby write refused: never-active",
		"pre-expiry takeover refused: lease held",
		"lease holder=ctl-b epoch=2",
		"4/4 switches warm",
		"deposed active fence cause: deposed",
		"state survived: s00 lat[1]=77",
		"counter  ha.failovers                        2",
		"failover actor=ctl-a cause=bootstrap",
		"failover actor=ctl-b cause=standby-promoted",
		"fenced_write actor=ctl-b cause=never-active",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ha output missing %q", want)
		}
	}
}

// Two runs must print byte-identical output: the reference run is
// seeded and driven on a virtual clock.
func TestRunHADeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runHA(nil, &a); err != nil {
		t.Fatal(err)
	}
	if err := runHA(nil, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("ha reference run is not deterministic")
	}
}

// With a file argument the subcommand decodes a persisted PALS record
// and rejects corrupt ones.
func TestRunHADecodeFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "lease")
	l := &statestore.Lease{Holder: "ctl-x", Epoch: 7, GrantedNs: 100, TTLNs: 50}
	if err := os.WriteFile(good, l.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runHA([]string{good}, &sb); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(sb.String(), "lease holder=ctl-x epoch=7") {
		t.Errorf("decode output = %q", sb.String())
	}

	bad := filepath.Join(dir, "torn")
	if err := os.WriteFile(bad, l.Encode()[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runHA([]string{bad}, &sb); err == nil {
		t.Error("torn lease record decoded without error")
	}
}
