package main

import (
	"strings"
	"testing"
)

// The links subcommand's reference run must show the full self-healing
// cycle for the sabotaged link — skew detection, quarantine, repair, and
// reinstatement — and an all-healthy final table.
func TestRunLinks(t *testing.T) {
	var sb strings.Builder
	if err := runLinks(&sb); err != nil {
		t.Fatalf("runLinks: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"== link health ==",
		"s1:1<->s2:1",
		"== transition trail ==",
		"cause=key-skew",
		"cause=hold-down-expired",
		"cause=probation-passed",
		"repairs_ok=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("links output missing %q", want)
		}
	}
	// Every row of the final health table must be Healthy: the run ends
	// well past the repair and probation of the sabotaged link.
	inTable := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "== link health =="):
			inTable = true
		case strings.HasPrefix(line, "=="), line == "":
			inTable = false
		case inTable && strings.Contains(line, "<->"):
			if !strings.Contains(line, "healthy") {
				t.Errorf("link not healthy at end of reference run: %s", line)
			}
		}
	}
}

// Two runs must print byte-identical output: the run is seeded and all
// timing is virtual.
func TestRunLinksDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runLinks(&a); err != nil {
		t.Fatal(err)
	}
	if err := runLinks(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("links reference run is not deterministic")
	}
}
