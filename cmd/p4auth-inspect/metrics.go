package main

import (
	"fmt"
	"io"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

// runMetrics implements the `metrics` subcommand: stand up a seeded
// two-switch fabric, drive it through the representative control-plane
// traffic (key establishment, serial and windowed register writes, a key
// rollover, a tampered request, a replayed one), and print the resulting
// metrics registry and audit trail. The run is deterministic, so the
// output doubles as a quick reference for the instrument names the
// controller, agents, and data planes export.
func runMetrics(w io.Writer) error {
	names := []string{"s1", "s2"}
	sws := map[string]*deploy.Switch{}
	for _, n := range names {
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  n,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			return err
		}
		sws[n] = s
	}
	c := controller.New(crypto.NewSeededRand(0x0B5E))
	c.SetRetryPolicy(controller.ResilientRetryPolicy())
	for _, n := range names {
		if err := c.Register(n, sws[n].Host, sws[n].Cfg, 50*time.Microsecond); err != nil {
			return err
		}
	}
	if err := c.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
		return err
	}
	if _, err := c.InitAllKeys(); err != nil {
		return err
	}
	for _, n := range names {
		for idx := uint32(0); idx < 3; idx++ {
			if _, err := c.WriteRegister(n, "lat", idx, uint64(100+idx)); err != nil {
				return err
			}
			if _, _, err := c.ReadRegister(n, "lat", idx); err != nil {
				return err
			}
		}
	}
	writes := make([]controller.RegWrite, 4)
	for i := range writes {
		writes[i] = controller.RegWrite{Register: "lat", Index: uint32(i), Value: uint64(200 + i)}
	}
	if _, err := c.WriteRegisterBatch("s1", 4, writes); err != nil {
		return err
	}
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		return err
	}

	// A man-in-the-middle flips a bit in one request: the switch alerts
	// BadDigest, the retransmission (clean — the tap disarms itself)
	// lands. One alert, zero dropped writes.
	tampered := false
	if err := c.SetControlTaps("s1", func(b []byte) []byte {
		if !tampered && len(b) > 0 {
			tampered = true
			mangled := append([]byte(nil), b...)
			mangled[len(mangled)-1] ^= 0x01
			return mangled
		}
		return b
	}, nil); err != nil {
		return err
	}
	if _, err := c.WriteRegister("s1", "lat", 5, 0xABCD); err != nil {
		return err
	}
	if err := c.SetControlTaps("s1", nil, nil); err != nil {
		return err
	}

	o := c.Observer()
	fmt.Fprintln(w, "== metrics ==")
	fmt.Fprint(w, o.Metrics.Snapshot().Dump())
	fmt.Fprintln(w, "\n== audit trail ==")
	fmt.Fprint(w, o.Audit.Dump())
	return nil
}
