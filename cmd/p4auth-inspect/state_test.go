package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/statestore"
)

func TestFormatStateKeySnapshotRoundTrip(t *testing.T) {
	s := &core.Snapshot{
		TakenNs: 42,
		SeqNext: 17,
		Slots: []core.SlotSnapshot{
			{V0: 0xAAAA, V1: 0xBBBB, Current: 1, Set: true},
			{Pending: 0xCCCC, HasPending: true},
		},
	}
	out, err := formatState("snapshot", s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"key snapshot", "seqNext=17", "slot  0 (local)", "ver=1", "pending="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatStateDeviceSnapshotRoundTrip(t *testing.T) {
	ds := &core.DeviceSnapshot{
		TakenNs: 7,
		Regs: map[string][]uint64{
			core.RegSeq: {0, 55, 0, 9},
			core.RegVer: {2, 0, 0, 0},
		},
	}
	out, err := formatState("snapshot", ds.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"device snapshot", core.RegSeq, "[1]=0x37", core.RegVer} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatStateJournalRoundTrip(t *testing.T) {
	e := core.JournalEntry{
		ID: 0xBEEF, Switch: "s1", Register: "lat", Index: 3,
		Value: 777, State: core.WriteIntent,
	}
	out, err := formatState("journal", e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"000000000000beef", "intent", "s1", "lat[3]", "0x309"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatStateRejectsGarbage(t *testing.T) {
	if _, err := formatState("snapshot", []byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot decoded")
	}
	if _, err := formatState("journal", []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage journal entry decoded")
	}
}

// TestRunStateOverFileStore points the subcommands at a statestore.File
// root, the way an operator would inspect a live deployment's state
// directory, and checks each subcommand surfaces its own artifacts.
func TestRunStateOverFileStore(t *testing.T) {
	dir := t.TempDir()
	st, err := statestore.NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := &core.Snapshot{SeqNext: 5, Slots: []core.SlotSnapshot{{V0: 1, Set: true}}}
	if err := st.Save("ctl/s1", snap.Encode()); err != nil {
		t.Fatal(err)
	}
	entry := core.JournalEntry{ID: 1, Switch: "s1", Register: "lat", Index: 0, Value: 9, State: core.WriteFailed}
	if err := st.Save("wal/s1/0000000000000001", entry.Encode()); err != nil {
		t.Fatal(err)
	}

	var snapOut, jOut strings.Builder
	if err := runState("snapshot", []string{dir}, &snapOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snapOut.String(), "key snapshot") ||
		!strings.Contains(snapOut.String(), filepath.Join("ctl", "s1")) {
		t.Fatalf("snapshot sweep output:\n%s", snapOut.String())
	}
	if err := runState("journal", []string{dir}, &jOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jOut.String(), "failed") || !strings.Contains(jOut.String(), "lat[0]") {
		t.Fatalf("journal sweep output:\n%s", jOut.String())
	}

	// A direct file argument that does not decode must error.
	bad := filepath.Join(dir, "garbage")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runState("journal", []string{bad}, &strings.Builder{}); err == nil {
		t.Fatal("garbage file accepted")
	}
}
