package main

import (
	"strings"
	"testing"
)

// The metrics subcommand's reference run must exercise every layer of
// the observability stack: controller counters and latency histograms,
// per-agent traffic counters, data-plane counter mirrors, and an audit
// trail where the injected tamper shows up with its cause.
func TestRunMetrics(t *testing.T) {
	var sb strings.Builder
	if err := runMetrics(&sb); err != nil {
		t.Fatalf("runMetrics: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"counter  ctl.write_ok",
		"counter  ctl.alert_bad_digest                         1",
		"counter  agent.s1.packet_outs",
		"counter  dp.s1.parse_error",
		"hist     ctl.write_ns",
		"digest_mismatch",
		"cause=request-mangled",
		"cause=local-update",
		"rollover_commit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// Two runs must print byte-identical output: the reference run is seeded
// and the registry dump is sorted.
func TestRunMetricsDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := runMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("metrics reference run is not deterministic")
	}
}
