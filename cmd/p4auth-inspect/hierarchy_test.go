package main

import (
	"strings"
	"testing"
)

// The hierarchy subcommand's reference run must walk both chaos
// scenarios end to end: the WAN-partition story (injection sweeps,
// degraded pod, heal + flush) and the global-kill story (dark window
// refusals, fenced election, restored rollovers), with zero violations.
func TestRunHierarchyReference(t *testing.T) {
	var sb strings.Builder
	if err := runHierarchy(&sb); err != nil {
		t.Fatalf("runHierarchy: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"scenario wanpartition",
		"12 cross links established",
		"forged frames injected, all dropped",
		"frames flipped, all rejected",
		"establish survived",
		"partition: asymmetric cut into wan-pod0",
		"deferred flushed",
		"scenario globalkill",
		"dark window: all 4 pods refused, zero keys issued",
		"serving at epoch 2",
		"violations=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hierarchy output missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Error("hierarchy reference run reported violations")
	}
}

// Two runs must print byte-identical output: the chaos harness is fully
// deterministic over (seed, scenario).
func TestRunHierarchyDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runHierarchy(&a); err != nil {
		t.Fatal(err)
	}
	if err := runHierarchy(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("hierarchy reference run is not deterministic")
	}
}
