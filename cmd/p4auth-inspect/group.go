package main

import (
	"fmt"
	"io"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// runGroup implements the `group` subcommand: a deterministic reference
// run of the N-replica controller group. A 3-replica group over a
// fault-injecting store walks through bootstrap, standby tailing, a
// store blip survived on the bounded-staleness fence, the active's
// death, rank-order election (waiting out the dead grant in full), and
// a second succession to the last rank — printing the lease record at
// each stage, the ha.* group instruments, and the election/degraded
// audit trail.
func runGroup(w io.Writer) error {
	const (
		replicas = 3
		fleet    = 4
		ttl      = 5 * time.Millisecond
		grace    = ttl / 4
		skew     = ttl / 16
	)
	sim := netsim.NewSim()
	st := statestore.NewFaultStore(statestore.NewMem(), sim, statestore.FaultConfig{Seed: 0x6E5C})
	ob := obs.NewObserver(0)
	var names []string
	sws := map[string]*deploy.Switch{}
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			return err
		}
		sws[name] = s
		names = append(names, name)
	}
	reps := make([]*ha.Replica, replicas)
	for i := range reps {
		c := controller.New(crypto.NewSeededRand(0x0C00 + uint64(i)))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		c.UseClock(sim)
		for _, n := range names {
			s := sws[n]
			if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
				return err
			}
		}
		r, err := ha.NewReplica(ha.ReplicaConfig{
			Name:       fmt.Sprintf("ctl-%d", i),
			Store:      st,
			Clock:      sim,
			TTL:        ttl,
			Controller: c,
			Observer:   ob,
			FenceGrace: grace,
			MaxSkew:    skew,
		})
		if err != nil {
			return err
		}
		reps[i] = r
	}
	grp, err := ha.NewGroup(sim, reps...)
	if err != nil {
		return err
	}

	showLease := func(stage string) error {
		raw, err := st.Load(statestore.LeaseKey)
		if err != nil {
			return err
		}
		l, err := statestore.DecodeLease(raw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s] %s\n", stage, l.Dump())
		return nil
	}
	warmCount := func(warm map[string]bool) int {
		n := 0
		for _, ok := range warm {
			if ok {
				n++
			}
		}
		return n
	}

	fmt.Fprintf(w, "== group election reference run (%d replicas, %d switches, ttl %v, grace %v, skew %v) ==\n",
		replicas, fleet, ttl, grace, skew)
	act, err := grp.Bootstrap()
	if err != nil {
		return err
	}
	if _, err := act.Controller().InitAllKeys(); err != nil {
		return err
	}
	if err := showLease("bootstrap"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := act.Controller().WriteRegister(n, "lat", 1, 77); err != nil {
			return err
		}
	}
	tailed, err := grp.TailStandbys()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[steady] active %s wrote %d switches, %d standbys tailed %d records\n",
		act.Name(), fleet, replicas-1, tailed)

	// Bounded-staleness fence: a store blip shorter than the grace must
	// not take signed reads down — the active serves on cached evidence
	// and announces the episode, then recovers when the store returns.
	if err := act.Renew(); err != nil {
		return err
	}
	blipFrom := sim.Now() + 50*time.Microsecond
	if err := st.ScheduleOutage(blipFrom, blipFrom+grace/2); err != nil {
		return err
	}
	sim.Advance(100 * time.Microsecond)
	if _, _, err := act.Controller().ReadRegister(names[0], "lat", 1); err != nil {
		return fmt.Errorf("read during store blip = %v, want served on cached grant", err)
	}
	fmt.Fprintf(w, "[blip] store dark, read served on cached evidence (degraded=%v)\n", act.InDegraded())
	sim.Advance(grace/2 + 100*time.Microsecond)
	if _, _, err := act.Controller().ReadRegister(names[0], "lat", 1); err != nil {
		return err
	}
	fmt.Fprintf(w, "[blip] store back, fence healthy again (degraded=%v)\n", act.InDegraded())

	// First succession: kill the active; election waits out the dead
	// grant in full (the TTL is the detection bound) and promotes the
	// next rank warm from tailed state.
	act.Controller().Kill()
	fmt.Fprintf(w, "[fault] active %s killed at t=%v\n", act.Name(), sim.Now())
	el, err := grp.Elect(ha.CauseElected)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[elect] %s active at t=%v, epoch %d, %d/%d switches warm, took %v\n",
		el.Winner.Name(), sim.Now(), el.Winner.Epoch(), warmCount(el.Warm), fleet, el.Duration)
	if err := showLease("elect"); err != nil {
		return err
	}

	// Second succession: the new active dies too; the last rank takes
	// over at the next epoch from the same tailed store state.
	el.Winner.Controller().Kill()
	fmt.Fprintf(w, "[fault] active %s killed at t=%v\n", el.Winner.Name(), sim.Now())
	el2, err := grp.Elect(ha.CauseElected)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[elect] %s active at t=%v, epoch %d, %d/%d switches warm, took %v\n",
		el2.Winner.Name(), sim.Now(), el2.Winner.Epoch(), warmCount(el2.Warm), fleet, el2.Duration)
	if err := showLease("elect"); err != nil {
		return err
	}
	v, _, err := el2.Winner.Controller().ReadRegister(names[0], "lat", 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[elect] state survived two successions: %s lat[1]=%d\n", names[0], v)

	fmt.Fprintln(w, "\n== group metrics ==")
	for _, name := range []string{
		"ha.elections", "ha.chained_promotions", "ha.election_waitouts",
		"ha.failovers", "ha.degraded_enters", "ha.degraded_admits",
		"ha.degraded_exits", "ha.degraded_exhausted",
	} {
		fmt.Fprintf(w, "counter  %-24s %12d\n", name, ob.Metrics.Counter(name).Load())
	}
	fmt.Fprintln(w, "\n== election audit trail ==")
	for _, e := range ob.Audit.Events() {
		if e.Type == obs.EvElection || e.Type == obs.EvDegraded {
			fmt.Fprintf(w, "#%d %s actor=%s cause=%s chained=%d epoch=%d\n",
				e.ID, e.Type, e.Actor, e.Cause, e.Seq, e.Value)
		}
	}
	return nil
}
