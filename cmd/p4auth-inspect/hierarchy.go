package main

import (
	"fmt"
	"io"

	"p4auth/internal/hierarchy"
)

// hierarchySeed fixes the reference run; the chaos harness is fully
// deterministic over (seed, scenario), so two invocations print
// byte-identical output.
const hierarchySeed = 7

// runHierarchy implements the `hierarchy` subcommand: a deterministic
// reference run of the two-tier control plane through both chaos
// scenarios. The WAN-partition run walks forged/torn broker-frame
// sweeps, a latency spike survived inside the retry budget, a pod cut
// off from the global broker serving intra-pod on cached cross-pod
// keys with rollovers deferred, and the post-heal flush and bounded
// reconvergence. The global-kill run walks the broker tier going dark
// (every pod refused, zero establishments), pods still serving, and a
// fenced election at the next epoch restoring cross-pod rollovers.
func runHierarchy(w io.Writer) error {
	for _, sc := range []hierarchy.ChaosScenario{
		hierarchy.ScenarioWANPartition, hierarchy.ScenarioGlobalKill,
	} {
		res, err := hierarchy.RunChaos(hierarchy.ChaosOptions{Seed: hierarchySeed, Scenario: sc})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== hierarchy chaos reference run: scenario %s (seed %d) ==\n", sc, hierarchySeed)
		for _, line := range res.Trace {
			fmt.Fprintln(w, line)
		}
		fmt.Fprintf(w, "-- result: establishes=%d grants=%d served=%d refusals=%d forged_dropped=%d torn_dropped=%d\n",
			res.Establishes, res.Grants, res.Served, res.Refusals, res.ForgedDropped, res.TornDropped)
		fmt.Fprintf(w, "-- result: deferred=%d flushed=%d reconverge=%v final_epoch=%d violations=%d\n",
			res.Deferred, res.Flushed, res.ReconvergeTime, res.FinalEpoch, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(w, "VIOLATION: %s\n", v)
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("hierarchy scenario %s: %d invariant violations", sc, len(res.Violations))
		}
		fmt.Fprintln(w)
	}
	return nil
}
