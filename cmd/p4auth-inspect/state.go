package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p4auth/internal/core"
)

// runState implements the `snapshot` and `journal` subcommands: decode
// persisted crash-safety artifacts (controller key snapshots, device
// register snapshots, write-ahead journal entries) and print them in the
// operator format. Arguments are blob files or directories (a
// statestore.File root lays keys out as plain files, so pointing the
// tool at the store directory inspects everything in it).
func runState(cmd string, paths []string, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: p4auth-inspect %s <file-or-dir>...", cmd)
	}
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.Walk(p, func(fp string, fi os.FileInfo, err error) error {
			if err != nil || fi.IsDir() || strings.HasPrefix(filepath.Base(fp), ".tmp-") {
				return err
			}
			files = append(files, fp)
			return nil
		})
		if err != nil {
			return err
		}
	}
	sort.Strings(files)
	shown := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		out, err := formatState(cmd, b)
		if err != nil {
			// Inside a directory sweep, files of the other kind are
			// expected; only a direct argument must decode.
			if len(paths) == 1 && files[0] == paths[0] {
				return fmt.Errorf("%s: %w", f, err)
			}
			continue
		}
		fmt.Fprintf(w, "== %s ==\n%s", f, out)
		shown++
	}
	if shown == 0 {
		return fmt.Errorf("no %s artifacts found in %s", cmd, strings.Join(paths, " "))
	}
	return nil
}

// formatState decodes one blob according to the subcommand.
func formatState(cmd string, b []byte) (string, error) {
	switch cmd {
	case "snapshot":
		// Key and device snapshots share the subcommand; the magic in
		// the blob decides which decoder applies.
		if s, err := core.DecodeSnapshot(b); err == nil {
			return s.Dump(), nil
		}
		ds, err := core.DecodeDeviceSnapshot(b)
		if err != nil {
			return "", err
		}
		return ds.Dump(), nil
	case "journal":
		e, err := core.DecodeJournalEntry(b)
		if err != nil {
			// Not a single-write record; try the group-commit format.
			be, berr := core.DecodeJournalBatch(b)
			if berr != nil {
				return "", err
			}
			return be.Dump() + "\n", nil
		}
		return e.Dump() + "\n", nil
	}
	return "", fmt.Errorf("unknown state subcommand %q", cmd)
}
