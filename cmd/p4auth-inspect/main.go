// Command p4auth-inspect compiles the repository's data-plane programs and
// prints their resource reports — the vendor-compiler view behind Table II
// and the §XI ablation.
//
// Usage:
//
//	p4auth-inspect                    # all programs, Tofino + BMv2
//	p4auth-inspect -target tofino
//	p4auth-inspect -words 8           # digest-width override (ablation)
//
// It also decodes the crash-safety artifacts the controller and switches
// persist (see PROTOCOL.md, "Crash recovery & persistence"):
//
//	p4auth-inspect snapshot <file-or-store-dir>...   # key/device snapshots
//	p4auth-inspect journal  <file-or-store-dir>...   # write-ahead entries
//
// And the security-observability layer: a deterministic reference run
// over a two-switch fabric that prints every exported metric and the
// audit trail of security events:
//
//	p4auth-inspect metrics
//
// And the self-healing fabric: a deterministic reference run over the
// Fig. 3 HULA topology where a one-sided port-key rollover is injected
// and the link supervisor detects, quarantines, repairs, and reinstates
// the link — printing each link's health state and the transition trail:
//
//	p4auth-inspect links
//
// And the HA controller pair: decode persisted PALS lease records, or
// run the deterministic failover reference (bootstrap, standby fencing,
// active death, lease expiry, warm promotion):
//
//	p4auth-inspect ha                      # reference failover run
//	p4auth-inspect ha <store-dir>/ha/lease # decode a lease record
//
// And the N-replica controller group: a deterministic reference run of
// rank-order election over a fault-injecting store — bootstrap, a store
// blip ridden out on the bounded-staleness fence, and two chained
// successions with the dead grants waited out in full:
//
//	p4auth-inspect group
//
// And the hierarchical control plane: deterministic chaos reference
// runs of the per-pod shard groups and the global key broker under the
// WAN-partition and global-kill scenarios, printing the event trace and
// the invariant summary of each:
//
//	p4auth-inspect hierarchy
package main

import (
	"flag"
	"fmt"
	"os"

	"p4auth/internal/core"
	"p4auth/internal/hula"
	"p4auth/internal/pisa"
)

func main() {
	if len(os.Args) > 1 && (os.Args[1] == "snapshot" || os.Args[1] == "journal") {
		if err := runState(os.Args[1], os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		if err := runMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "links" {
		if err := runLinks(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "hierarchy" {
		if err := runHierarchy(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "group" {
		if err := runGroup(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "ha" {
		if err := runHA(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	target := flag.String("target", "", "tofino | bmv2 (default: both)")
	words := flag.Int("words", 1, "digest width in 32-bit words")
	dump := flag.String("dump", "", "print a program's pseudo-P4 and exit: p4auth-shell | hula+p4auth | hula-baseline")
	flag.Parse()

	profiles := []pisa.Profile{pisa.TofinoProfile(), pisa.BMv2Profile()}
	if *target != "" {
		switch *target {
		case "tofino":
			profiles = profiles[:1]
		case "bmv2":
			profiles = profiles[1:]
		default:
			fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
			os.Exit(2)
		}
	}

	type prog struct {
		label string
		build func(profile pisa.Profile) (*pisa.Program, error)
	}
	progs := []prog{
		{"p4auth-shell", func(p pisa.Profile) (*pisa.Program, error) {
			kind := core.DigestCRC32
			if p.AllowExterns {
				kind = core.DigestHalfSipHash
			}
			cfg := core.DefaultConfig(16, kind)
			cfg.DigestWords = *words
			pr := &pisa.Program{
				Name:         "p4auth_shell",
				Headers:      []*pisa.HeaderDef{core.PTypeHeader()},
				Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: core.HdrPType}},
				DeparseOrder: []string{core.HdrPType},
				Registers:    []*pisa.RegisterDef{{Name: "state", Width: 64, Entries: 128}},
			}
			return pr, core.AddToProgram(pr, cfg, core.Integration{Exposed: []string{"state"}})
		}},
		{"hula+p4auth", func(p pisa.Profile) (*pisa.Program, error) {
			params := hula.DefaultParams(1, 8)
			params.Secure = true
			pr, _, err := hula.BuildProgram(params)
			return pr, err
		}},
		{"hula-baseline", func(p pisa.Profile) (*pisa.Program, error) {
			params := hula.DefaultParams(1, 8)
			params.Secure = false
			pr, _, err := hula.BuildProgram(params)
			return pr, err
		}},
	}

	if *dump != "" {
		for _, pg := range progs {
			if pg.label != *dump {
				continue
			}
			p, err := pg.build(profiles[len(profiles)-1])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(pisa.Dump(p))
			return
		}
		fmt.Fprintf(os.Stderr, "unknown program %q\n", *dump)
		os.Exit(2)
	}

	for _, pf := range profiles {
		fmt.Printf("== target %s (stages %d, PHV %d bits, hash %d bits, SRAM %d blocks, TCAM %d blocks) ==\n",
			pf.Name, pf.Stages, pf.PHVBits, pf.HashBits, pf.SRAMBlocks, pf.TCAMBlocks)
		for _, pg := range progs {
			p, err := pg.build(pf)
			if err != nil {
				fmt.Printf("  %-14s build error: %v\n", pg.label, err)
				continue
			}
			c, err := pisa.Compile(p, pf)
			if err != nil {
				fmt.Printf("  %-14s DOES NOT FIT: %v\n", pg.label, err)
				continue
			}
			pct := c.Usage.Percent(pf)
			fmt.Printf("  %-14s stages %3d (+%d egress), passes %d | TCAM %5.1f%%  SRAM %5.1f%%  hash %5.1f%%  PHV %5.1f%%  hash-calls %d\n",
				pg.label, c.Usage.Stages, c.Usage.EgressStages, c.Usage.Passes,
				pct.TCAM, pct.SRAM, pct.Hash, pct.PHV, c.Usage.HashCalls)
		}
		fmt.Println()
	}
}
