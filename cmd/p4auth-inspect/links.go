package main

import (
	"fmt"
	"io"
	"time"

	"p4auth/internal/fabric"
	"p4auth/internal/hula"
	"p4auth/internal/obs"
)

// runLinks implements the `links` subcommand: stand up the Fig. 3 HULA
// fabric under link-health supervision, interrupt a port-key update so
// one link suffers a one-sided rollover, and let the supervisor detect
// the skew, quarantine the link, repair the key pair under an epoch
// fence, and reinstate it after probation. The run is deterministic in
// virtual time; the output shows every link's final health state and the
// full transition trail with machine-matchable causes — a quick
// reference for what `fabric.Supervisor` exports.
func runLinks(w io.Writer) error {
	n, err := hula.NewFig3Network(true, 1e9, 5*time.Microsecond)
	if err != nil {
		return err
	}
	sup, err := n.NewSupervisor(fabric.Config{
		SuspectBad:        1,
		QuarantineStrikes: 1,
		SilenceWindows:    3,
		CleanWindows:      2,
		ProbationWindows:  2,
		HoldDown:          2 * time.Millisecond,
		RepairBackoff:     1 * time.Millisecond,
		RepairBackoffMax:  4 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	const dur = 20 * time.Millisecond
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	n.ScheduleSupervisor(sup, time.Millisecond, dur)

	// At 8ms a port-key update loses its DP-DP leg: s2 installs the new
	// pair, s1 never hears about it.
	var injectErr error
	n.Net.Sim.At(8*time.Millisecond, func() {
		if err := n.Ctrl.SetLinkTap("s1", 1, func([]byte) []byte { return nil }); err != nil {
			injectErr = err
			return
		}
		_, _ = n.Ctrl.PortKeyUpdate("s2", 1) // interrupted on purpose
		injectErr = n.Ctrl.SetLinkTap("s1", 1, nil)
	})
	n.Net.Sim.Run()
	if injectErr != nil {
		return injectErr
	}

	fmt.Fprintln(w, "== link health ==")
	fmt.Fprintf(w, "%-14s %-12s %-10s %-22s %5s %5s %8s %8s\n",
		"link", "state", "since", "last-cause", "epoch", "fails", "fb-ok", "fb-bad")
	for _, st := range sup.Snapshot() {
		cause := st.Cause
		if cause == "" {
			cause = "-"
		}
		fmt.Fprintf(w, "%-14s %-12s %-10v %-22s %5d %5d %8d %8d\n",
			st.Link, st.State, st.Since, cause, st.Epoch, st.RepairFails, st.OK, st.Bad)
	}

	fmt.Fprintln(w, "\n== transition trail ==")
	o := n.Ctrl.Observer()
	for _, e := range o.Audit.ByType(obs.EvLinkState) {
		from, to := fabric.TransitionPair(e.Value)
		fmt.Fprintf(w, "%-14s %-11s -> %-11s cause=%-22s epoch=%d\n",
			e.Actor, from, to, e.Cause, e.Seq)
	}
	fmt.Fprintf(w, "\ntransitions=%d repairs_ok=%d repairs_failed=%d\n",
		o.Metrics.Counter("fabric.transitions").Load(),
		o.Metrics.Counter("fabric.repairs_ok").Load(),
		o.Metrics.Counter("fabric.repairs_failed").Load())
	return nil
}
