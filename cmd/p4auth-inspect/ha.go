package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// runHA implements the `ha` subcommand. With file arguments it decodes
// persisted PALS lease records (point it at <store-dir>/ha/lease). With
// no arguments it runs the deterministic failover reference: a seeded
// active/standby pair over a small fleet walks through bootstrap,
// standby fencing, active death, lease expiry, and warm promotion —
// printing the lease record at each stage, the ha.* instruments, and
// the failover/fenced-write audit trail.
func runHA(paths []string, w io.Writer) error {
	if len(paths) > 0 {
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			l, err := statestore.DecodeLease(b)
			if err != nil {
				return fmt.Errorf("%s: %w", p, err)
			}
			fmt.Fprintf(w, "== %s ==\n%s\n", p, l.Dump())
		}
		return nil
	}

	const (
		fleet = 4
		ttl   = 5 * time.Millisecond
	)
	sim := netsim.NewSim()
	st := statestore.NewMem()
	ob := obs.NewObserver(0)
	var names []string
	sws := map[string]*deploy.Switch{}
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("s%02d", i)
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			return err
		}
		sws[name] = s
		names = append(names, name)
	}
	mk := func(replica string, seed uint64) (*ha.Replica, error) {
		c := controller.New(crypto.NewSeededRand(seed))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		c.UseClock(sim)
		for _, n := range names {
			s := sws[n]
			if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
				return nil, err
			}
		}
		return ha.NewReplica(ha.ReplicaConfig{
			Name: replica, Store: st, Clock: sim, TTL: ttl,
			Controller: c, Observer: ob,
		})
	}
	a, err := mk("ctl-a", 0x0A11)
	if err != nil {
		return err
	}
	b, err := mk("ctl-b", 0x0B11)
	if err != nil {
		return err
	}

	showLease := func(stage string) error {
		raw, err := st.Load(statestore.LeaseKey)
		if err != nil {
			return err
		}
		l, err := statestore.DecodeLease(raw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s] %s\n", stage, l.Dump())
		return nil
	}

	fmt.Fprintf(w, "== failover reference run (%d switches, ttl %v) ==\n", fleet, ttl)
	if _, err := a.Activate(ha.CauseBootstrap); err != nil {
		return err
	}
	if _, err := a.Controller().InitAllKeys(); err != nil {
		return err
	}
	if err := showLease("bootstrap"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := a.Controller().WriteRegister(n, "lat", 1, 77); err != nil {
			return err
		}
	}
	tailed, err := b.TailOnce()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[steady] active wrote %d switches, standby tailed %d records\n", fleet, tailed)
	if _, err := b.Controller().WriteRegister(names[0], "lat", 2, 1); errors.Is(err, controller.ErrFenced) {
		fmt.Fprintf(w, "[steady] standby write refused: %s\n", ha.FenceCause(err))
	} else {
		return fmt.Errorf("standby write = %v, want fence refusal", err)
	}

	a.Controller().Kill()
	fmt.Fprintf(w, "[fault] active killed at t=%v\n", sim.Now())
	if _, err := b.Activate(ha.CausePromoted); errors.Is(err, ha.ErrLeaseHeld) {
		fmt.Fprintf(w, "[fault] pre-expiry takeover refused: lease held\n")
	} else {
		return fmt.Errorf("pre-expiry takeover = %v, want ErrLeaseHeld", err)
	}
	sim.Advance(ttl + time.Millisecond)
	warm, _, err := b.Promote(ha.CausePromoted)
	if err != nil {
		return err
	}
	warmN := 0
	for _, ok := range warm {
		if ok {
			warmN++
		}
	}
	fmt.Fprintf(w, "[promote] standby active at t=%v, %d/%d switches warm\n", sim.Now(), warmN, fleet)
	if err := showLease("promote"); err != nil {
		return err
	}
	if cause := ha.FenceCause(a.Fence()); cause != "" {
		fmt.Fprintf(w, "[promote] deposed active fence cause: %s\n", cause)
	}
	v, _, err := b.Controller().ReadRegister(names[0], "lat", 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[promote] state survived: %s lat[1]=%d\n", names[0], v)

	fmt.Fprintln(w, "\n== ha metrics ==")
	for _, name := range []string{
		"ha.failovers", "ha.lease_acquire", "ha.lease_renew",
		"ha.fenced_writes", "ha.fenced_persists", "ha.tail_records",
	} {
		fmt.Fprintf(w, "counter  %-24s %12d\n", name, ob.Metrics.Counter(name).Load())
	}
	fmt.Fprintln(w, "\n== failover audit trail ==")
	for _, e := range ob.Audit.Events() {
		if e.Type == obs.EvFailover || e.Type == obs.EvFencedWrite {
			fmt.Fprintf(w, "#%d %s actor=%s cause=%s epoch=%d\n", e.ID, e.Type, e.Actor, e.Cause, e.Seq)
		}
	}
	return nil
}
