package main

import (
	"strings"
	"testing"
)

// The group subcommand's reference run must walk the whole N-replica
// story: bootstrap grant, a store blip survived degraded, two chained
// successions in rank order at epochs 2 and 3, and a reconciled
// election/degraded audit trail.
func TestRunGroupReference(t *testing.T) {
	var sb strings.Builder
	if err := runGroup(&sb); err != nil {
		t.Fatalf("runGroup: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"lease holder=ctl-0 epoch=1",
		"read served on cached evidence (degraded=true)",
		"fence healthy again (degraded=false)",
		"lease holder=ctl-1 epoch=2",
		"lease holder=ctl-2 epoch=3",
		"4/4 switches warm",
		"state survived two successions: s00 lat[1]=77",
		"election actor=ctl-1 cause=group-elected chained=0 epoch=2",
		"election actor=ctl-2 cause=group-elected chained=0 epoch=3",
		"degraded_fence actor=ctl-0 cause=degraded-enter",
		"degraded_fence actor=ctl-0 cause=degraded-exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("group output missing %q", want)
		}
	}
}

// Two runs must print byte-identical output: the reference run is
// seeded and driven on a virtual clock.
func TestRunGroupDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := runGroup(&a); err != nil {
		t.Fatal(err)
	}
	if err := runGroup(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("group reference run is not deterministic")
	}
}
