# Developer entry points. `make check` is the full gate the CI and the
# acceptance criteria run: build, vet, and the test suite with the race
# detector on.

GO ?= go

.PHONY: check build vet test race bench bench-save bench-smoke bench-parallel chaos fabric-chaos ha-chaos group-chaos matrix-chaos hierarchy-chaos stress pisa-race cover fuzz-smoke fleet-matrix bench-hierarchy

check: build vet race chaos fabric-chaos ha-chaos group-chaos matrix-chaos hierarchy-chaos stress pisa-race cover fuzz-smoke bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic chaos smoke with fixed seeds; -count=1 defeats the test
# cache so the crash/recovery invariants run on every gate.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosShort|TestChaosDeterminism' ./internal/netsim/chaos/

# Fabric chaos: seeded link flaps, two-way partitions, and one-sided
# port-key rollovers against the self-healing DP-DP fabric; every run
# must reconverge with paired keys and a reconciled audit trail.
fabric-chaos:
	$(GO) test -race -count=1 -run 'TestFabricShort|TestFabricDeterminism' ./internal/netsim/chaos/

# HA chaos: controller-kill-under-sharded-load and split-brain attempts
# against the lease-fenced active/standby pair. Every run must show zero
# forged or stale-fenced writes applied, a bounded failover, a
# reconciled failover/fenced-write audit trail, and bit-identical traces
# per seed.
ha-chaos:
	$(GO) test -race -count=1 -run 'TestHAShort|TestHADeterminism' ./internal/netsim/chaos/

# Group chaos: rolling kills across 3-5 ranked replicas (each successor
# dying mid-promotion), store-outage-mid-tenure against the
# bounded-staleness fence, and multi-way lease acquisition races. Every
# run must show zero forged or stale-fenced writes applied, at most one
# fenced-active per virtual instant, bounded failover, exact audit
# reconciliation, and bit-identical traces per seed.
group-chaos:
	$(GO) test -race -count=1 -run 'TestGroupShort|TestGroupDeterminism' ./internal/netsim/chaos/

# Matrix chaos: the full app × fault × protection survival matrix at
# k=4 under the default seed, plus per-seed determinism reruns. Every
# run must show zero forged operations applied in every protected cell,
# measurable corruption in every unprotected attacked cell, and a trace
# bit-identical to the checked-in golden.
matrix-chaos:
	$(GO) test -race -count=1 -run 'TestMatrixChaos|TestMatrixDeterminism' ./internal/fleet/

# Hierarchy chaos: the two-tier control plane (per-pod shard groups +
# WAN-partition-tolerant global key broker) under forged/torn broker
# frames, latency spikes, an asymmetric WAN partition, and a global-tier
# kill + election. Every run must show zero forged operations applied,
# no cross-pod key without a fenced global grant, graceful degradation
# on cached keys with deferred rollovers, bounded re-convergence after
# heal, exact audit reconciliation, and bit-identical traces per seed.
hierarchy-chaos:
	$(GO) test -race -count=1 -run 'TestHierarchyChaos|TestHierarchyDeterminism' ./internal/hierarchy/

# Concurrency stress: pipelined writers vs concurrent key rollovers under
# fault taps, the sharded-switch suite, the sharded netsim engine, and
# the HA replica suite (lease races, failover mid-rollover), with fresh
# interleavings.
stress:
	$(GO) test -race -count=1 ./internal/controller/ ./internal/pisa/ ./internal/ha/ ./internal/netsim/

# Parallel data-plane gate: the worker pool, sharded counters, and batch
# ingress path under the race detector, with fresh interleavings
# (-count=1). Covers worker-vs-serial equivalence, batch determinism,
# and concurrent control-plane mutation during batches.
pisa-race:
	$(GO) test -race -count=1 ./internal/pisa/...

# Coverage floor (>= 85%) for the trust-boundary packages: core codecs
# and key machinery, crypto primitives, and the observability layer.
cover:
	./scripts/cover.sh

# 10s of mutation per codec fuzz target on top of the checked-in seed
# corpora (internal/core/testdata/fuzz). FUZZTIME=30s make fuzz-smoke
# for a longer local campaign.
fuzz-smoke:
	./scripts/fuzz_smoke.sh

# Quick benchmark smoke for the gate: the hot path must run end to end
# through the benchmark harness.
bench-smoke:
	$(GO) test -bench=BenchmarkAuthenticatedWrite -benchtime=10x -run '^$$' -short .

# Full evaluation benchmarks (Table I/II/III, Fig. 16-20). Slow; the test
# targets above skip them via -short where applicable.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark artifact: micro-bench ns/op, B/op, allocs/op
# plus the serial-vs-pipelined Fig. 19 sweep, checked in as BENCH_<date>.json.
bench-save:
	$(GO) run ./cmd/p4auth-bench -save BENCH_$$(date -u +%Y-%m-%d).json

# Parallel ingress sweep (workers x window over authenticated DP-DP
# probes) printed as a report; the machine-readable rows land in the
# bench-save artifact.
bench-parallel:
	$(GO) run ./cmd/p4auth-bench -exp fig19par

# Fleet survival matrix artifact: the app × fault × protection matrix at
# k=4 plus k=8 fat-tree / RouteScout wall-clock throughput at 1, 4 and 8
# shards, checked in as BENCH_<date>-matrix.json.
fleet-matrix:
	$(GO) run ./cmd/p4auth-bench -matrix BENCH_$$(date -u +%Y-%m-%d)-matrix.json

# Hierarchical control-plane artifact: cross-pod key-establishment
# latency and aggregate pod write throughput at pods=4/8 with and
# without WAN latency injection, checked in as BENCH_<date>-hierarchy.json.
bench-hierarchy:
	$(GO) run ./cmd/p4auth-bench -hierarchy BENCH_$$(date -u +%Y-%m-%d)-hierarchy.json
