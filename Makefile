# Developer entry points. `make check` is the full gate the CI and the
# acceptance criteria run: build, vet, and the test suite with the race
# detector on.

GO ?= go

.PHONY: check build vet test race bench chaos

check: build vet race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic chaos smoke with fixed seeds; -count=1 defeats the test
# cache so the crash/recovery invariants run on every gate.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosShort|TestChaosDeterminism' ./internal/netsim/chaos/

# Full evaluation benchmarks (Table I/II/III, Fig. 16-20). Slow; the test
# targets above skip them via -short where applicable.
bench:
	$(GO) test -bench=. -benchmem ./...
