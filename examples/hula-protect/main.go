// hula-protect runs the paper's Fig. 3 scenario end to end: a HULA fabric
// with three S1->S5 paths, an on-link MitM forging probe utilization on
// the S4-S1 link, and P4Auth authenticating every probe hop by hop.
package main

import (
	"fmt"
	"log"
	"time"

	"p4auth/internal/hula"
)

func main() {
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"clean fabric", true, false},
		{"MitM, no protection", false, true},
		{"MitM + P4Auth", true, true},
	} {
		shares, alerts, err := run(arm.secure, arm.attacked)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s via S2 %5.1f%%  via S3 %5.1f%%  via S4 %5.1f%%  alerts %d\n",
			arm.label, 100*shares["s2"], 100*shares["s3"], 100*shares["s4"], alerts)
	}
}

func run(secure, attacked bool) (map[string]float64, int, error) {
	const dur = 80 * time.Millisecond
	n, err := hula.NewFig3Network(secure, 1e9, 5*time.Microsecond)
	if err != nil {
		return nil, 0, err
	}
	if attacked {
		l := n.Net.LinkBetween("s1", "s4")
		if err := l.SetTap("s1", hula.ForgeUtilTap(secure, 7)); err != nil {
			return nil, 0, err
		}
	}
	// Probes both directions, every 200 µs.
	n.ScheduleProbes("s5", 5, 200*time.Microsecond, dur)
	n.ScheduleProbes("s1", 1, 200*time.Microsecond, dur)
	// Bidirectional foreground flows plus per-path background load.
	var pkt uint64
	for at := 2 * time.Millisecond; at < dur; at += 20 * time.Microsecond {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			_ = n.SendData("s1", 5, flow, 1000)
			_ = n.SendData("s5", 1, 0x8000_0000|flow, 1000)
			for i, mid := range []string{"s2", "s3", "s4"} {
				_ = n.SendData(mid, 5, uint32(0x4000_0000+i), 600)
				_ = n.SendData(mid, 1, uint32(0x2000_0000+i), 600)
			}
		})
	}
	n.Net.Sim.Run()
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		return nil, 0, err
	}
	return shares, n.Switches["s1"].Alerts, nil
}
