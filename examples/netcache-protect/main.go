// netcache-protect runs the full-pipeline NetCache scenario: hot keys
// served from an in-switch cache, miss statistics counted in an
// in-pipeline count-min sketch, and the controller's promote/clear epochs
// driven over authenticated C-DP reads — the report path a compromised
// switch OS tampers with to evict the hot keys.
package main

import (
	"fmt"
	"log"

	"p4auth/internal/netcache"
)

const keySpace = 64

func zipf(s *netcache.System, n int) error {
	for i := 0; i < n; {
		for k := uint32(0); k < keySpace && i < n; k++ {
			reps := keySpace / (int(k) + 1)
			for r := 0; r < reps && i < n; r++ {
				if _, err := s.Query(k); err != nil {
					return err
				}
				i++
			}
		}
	}
	return nil
}

func run(secure, attacked bool) error {
	label := "no adversary"
	switch {
	case attacked && secure:
		label = "adversary + P4Auth"
	case attacked:
		label = "with adversary"
	}
	s, err := netcache.New(netcache.DefaultParams(secure))
	if err != nil {
		return err
	}
	candidates := make([]uint32, keySpace)
	for i := range candidates {
		candidates[i] = uint32(keySpace - 1 - i)
	}
	if err := zipf(s, 1500); err != nil {
		return err
	}
	if err := s.UpdateEpoch(candidates); err != nil {
		return err
	}
	if attacked {
		if err := s.InstallStatDeflater(3); err != nil {
			return err
		}
	}
	if err := zipf(s, 1500); err != nil {
		return err
	}
	if err := s.UpdateEpoch(candidates); err != nil {
		return err
	}
	if err := s.ResetCounters(); err != nil {
		return err
	}
	if err := zipf(s, 1500); err != nil {
		return err
	}
	rate, err := s.HitRate()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s hit rate %5.1f%%  skipped epochs %d  alerts %d\n",
		label, 100*rate, s.SkippedEpochs, len(s.Ctrl.Alerts()))
	return nil
}

func main() {
	fmt.Println("NetCache on the P4Auth substrate: Zipf queries over 64 keys, 8 cache slots.")
	fmt.Println()
	for _, arm := range []struct{ secure, attacked bool }{
		{true, false}, {false, true}, {true, true},
	} {
		if err := run(arm.secure, arm.attacked); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("The adversary deflates the sketch counters the controller reads, so hot")
	fmt.Println("keys look cold and get evicted. P4Auth detects the first tampered read,")
	fmt.Println("the epoch is skipped, and the previous cache contents keep serving.")
}
