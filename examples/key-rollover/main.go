// key-rollover exercises the key-management protocol across a small
// fabric: fleet-wide initialization, periodic rollover, a topology change
// (port comes up -> port key init), and in-flight message survival across
// a rollover thanks to two-version consistent updates.
package main

import (
	"fmt"
	"log"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

func main() {
	ctrl := controller.New(crypto.NewSeededRand(0x5011))
	var sws []*deploy.Switch
	for i := 1; i <= 3; i++ {
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:  fmt.Sprintf("s%d", i),
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "cfg", Width: 64, Entries: 4},
			},
			RandSeed: uint64(0x2011 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		sws = append(sws, sw)
		if err := ctrl.Register(sw.Host.Name, sw.Host, sw.Cfg, 50*time.Microsecond); err != nil {
			log.Fatal(err)
		}
	}
	// Initial topology: s1 <-> s2.
	if err := ctrl.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
		log.Fatal(err)
	}

	init, err := ctrl.InitAllKeys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet key init: %d messages, serial %v\n", init.Messages, init.RTT)

	// Topology change: the s1<->s3 link comes up; only that link needs a
	// port key (Fig. 14(c)).
	if err := ctrl.ConnectSwitches("s1", 2, "s3", 1, 5*time.Microsecond); err != nil {
		log.Fatal(err)
	}
	pk, err := ctrl.PortKeyInit("s1", 2, "s3", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new link s1:2<->s3:1 keyed: %d messages, RTT %v\n", pk.Messages, pk.RTT)
	k1, _ := sws[0].Host.SW.RegisterRead(core.RegKeysV1, 2)
	k3, _ := sws[2].Host.SW.RegisterRead(core.RegKeysV1, 1)
	fmt.Printf("  both data planes hold the same port key: %v (controller never sees it)\n", k1 == k3)

	// Periodic rollover: three rounds, with an authenticated write after
	// each proving the fleet stays operational.
	for round := 1; round <= 3; round++ {
		upd, err := ctrl.UpdateAllKeys()
		if err != nil {
			log.Fatalf("rollover %d: %v", round, err)
		}
		for _, sw := range sws {
			if _, err := ctrl.WriteRegister(sw.Host.Name, "cfg", 0, uint64(round)); err != nil {
				log.Fatalf("rollover %d: write on %s: %v", round, sw.Host.Name, err)
			}
		}
		ver, _ := sws[0].Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
		fmt.Printf("rollover %d: %d messages, serial %v, s1 local-key version now %d\n",
			round, upd.Messages, upd.RTT, ver)
	}

	fmt.Println("\nkeys rolled three times; every switch kept accepting authenticated")
	fmt.Println("writes because messages are tagged with the key version they were")
	fmt.Println("signed under (consistent updates, §VI-C).")
}
