// routescout-protect runs the paper's Fig. 2 scenario: RouteScout's
// controller pulls per-path latency aggregates from the data plane and
// rebalances the traffic split; a compromised switch OS inflates path 1's
// reported latency; P4Auth detects each tampered response and the
// controller refuses to act on it.
package main

import (
	"fmt"
	"log"
	"time"

	"p4auth/internal/routescout"
	"p4auth/internal/trace"
)

func main() {
	tc := trace.DefaultConfig(uint64(1200 * time.Millisecond))
	tc.FlowsPerSecond = 800
	pkts := trace.Generate(tc)
	st := trace.Summarize(pkts)
	fmt.Printf("trace: %d packets, %d flows, %.1f MB\n\n", st.Packets, st.Flows, float64(st.Bytes)/1e6)

	for _, arm := range []struct {
		label  string
		mode   routescout.Mode
		attack bool
	}{
		{"no adversary", routescout.ModeInsecure, false},
		{"adversary, no protection", routescout.ModeInsecure, true},
		{"adversary + P4Auth", routescout.ModeP4Auth, true},
	} {
		cfg := routescout.DefaultConfig(arm.mode)
		s, err := routescout.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if arm.mode == routescout.ModeP4Auth {
			if _, err := s.Ctrl.LocalKeyInit("edge"); err != nil {
				log.Fatal(err)
			}
		}
		if arm.attack {
			// The backdoor activates after RouteScout converges.
			s.Net.Sim.At(300*time.Millisecond, func() {
				_ = s.InstallLatencyInflater(20)
			})
		}
		p1, p2, err := s.Run(cfg, pkts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s path1 %5.1f%%  path2 %5.1f%%  split=%3d/256  tampered=%d  alerts=%d\n",
			arm.label, 100*p1, 100*p2, s.Split, s.TamperedReads, len(s.Ctrl.Alerts()))
	}
	fmt.Println("\npath1 is the genuinely faster path (2 ms vs 6 ms); the adversary makes")
	fmt.Println("it look slow. With P4Auth the controller keeps the converged split and alerts.")
}
