// Quickstart: deploy one P4Auth switch, establish keys, and perform
// authenticated register reads and writes — then watch a tampered message
// get caught.
package main

import (
	"errors"
	"fmt"
	"log"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

func main() {
	// 1. Build a switch: a host program shell plus the P4Auth data plane,
	//    compiled for the Tofino profile and booted with the seed key.
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:  "edge1",
		Ports: 8,
		Registers: []*pisa.RegisterDef{
			{Name: "path_latency", Width: 32, Entries: 16},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("switch compiled:", sw.Host.SW.Compiled().Program.Name)

	// 2. Attach a controller and run the key-management protocol: EAK
	//    derives K_auth from the pre-shared seed, ADHKD derives K_local.
	ctrl := controller.New(crypto.CryptoRand{})
	if err := ctrl.Register("edge1", sw.Host, sw.Cfg, 0); err != nil {
		log.Fatal(err)
	}
	res, err := ctrl.LocalKeyInit("edge1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local key established: %d messages, %d bytes, RTT %v\n",
		res.Messages, res.Bytes, res.RTT)

	// 3. Authenticated register access: every message carries an HMAC-style
	//    digest verified inside the switch pipeline.
	if _, err := ctrl.WriteRegister("edge1", "path_latency", 3, 1500); err != nil {
		log.Fatal(err)
	}
	v, lat, err := ctrl.ReadRegister("edge1", "path_latency", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read path_latency[3] = %d (RCT %v)\n", v, lat)

	// 4. Compromise the switch OS (the paper's LD_PRELOAD backdoor) and
	//    watch P4Auth catch the manipulation.
	_ = sw.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil {
				return data
			}
			m.Reg.Value = 1 // report a falsely low latency
			out, _ := m.Encode()
			return out
		},
	})
	_, _, err = ctrl.ReadRegister("edge1", "path_latency", 3)
	if errors.Is(err, controller.ErrTampered) {
		fmt.Println("tampered read detected:", err)
		fmt.Printf("alerts recorded: %d\n", len(ctrl.Alerts()))
	} else {
		log.Fatalf("expected tamper detection, got %v", err)
	}
}
